"""Benchmark E4 — Sweeney: uniqueness of (ZIP, birth date, sex).

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e04")
def test_e04_sweeney_uniqueness(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E4", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["unique_fraction_full_triple"] >= 0.9
