"""Benchmark E16 — Homer [26]: membership inference on aggregate genomic data.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e16")
def test_e16_genomic_membership(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E16", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["auc_wide_panel"] >= 0.95
