"""Ablation: sensitivity of PSO verdicts to the negligibility exponent.

DESIGN.md makes "negligible at finite n" operational as ``w <= n^-c`` with
default c = 2.  This bench sweeps c and shows the paper's qualitative
verdicts are stable: the k-anonymity and composition attacks win at every
reasonable cutoff, and the trivial attacker never does — i.e. the
experiments' conclusions are not an artifact of the chosen c.
"""

import pytest

from repro.anonymity import AgreementAnonymizer
from repro.core import (
    ConstantMechanism,
    KAnonymityMechanism,
    KAnonymityPSOAttacker,
    PSOGame,
    TrivialAttacker,
)
from repro.core.attackers import build_composition_suite
from repro.data.distributions import uniform_bits_distribution
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

N = 200
TRIALS = 25


def _evaluate():
    distribution = uniform_bits_distribution(128)
    table = Table(
        [
            "negligibility exponent c",
            "threshold n^-c",
            "k-anon attack",
            "composition attack",
            "trivial attacker",
        ],
        title=f"Ablation: verdicts vs the finite-n negligibility cutoff (n={N})",
    )
    stable = True
    for exponent in (1.5, 2.0, 3.0):
        # The composition suite sizes its bit probes to the cutoff in play.
        suite = build_composition_suite(N, negligible_exponent=exponent)
        kanon = PSOGame(
            distribution,
            N,
            KAnonymityMechanism(AgreementAnonymizer(4), label="agreement"),
            KAnonymityPSOAttacker("refine"),
            negligible_exponent=exponent,
        ).run(TRIALS, derive_rng(0, "ablation-c", "kanon", exponent))
        comp = PSOGame(
            distribution,
            N,
            suite.mechanism,
            suite.adversary,
            negligible_exponent=exponent,
        ).run(TRIALS, derive_rng(0, "ablation-c", "comp", exponent))
        trivial = PSOGame(
            distribution,
            N,
            ConstantMechanism(),
            TrivialAttacker("optimal"),
            negligible_exponent=exponent,
        ).run(TRIALS, derive_rng(0, "ablation-c", "trivial", exponent))
        table.add_row(
            [
                exponent,
                float(N) ** (-exponent),
                str(kanon.success),
                str(comp.success),
                str(trivial.success),
            ]
        )
        stable = stable and (
            kanon.success.estimate >= 0.2
            and comp.success.estimate >= 0.3
            and trivial.success.estimate == 0.0
        )
    return table, stable


@pytest.mark.benchmark(group="ablation")
def test_ablation_negligibility_exponent(benchmark):
    table, stable = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print()
    print(table.render())
    assert stable, "a verdict flipped under a reasonable negligibility cutoff"
