"""Ablation: anonymizer choice — utility vs singling-out vulnerability.

DESIGN.md's Theorem 2.10 discussion claims a causal chain: better utility
(tighter classes) -> lower class-predicate weight -> predicate singling
out.  This bench puts every anonymizer in the library on the same data and
reports both sides of the chain: utility metrics and the Cohen singleton
attack's success.
"""

import pytest

from repro.anonymity import (
    AgreementAnonymizer,
    DataflyAnonymizer,
    IncognitoAnonymizer,
    MondrianAnonymizer,
)
from repro.anonymity.metrics import discernibility_metric, generalization_precision
from repro.core import KAnonymityMechanism, KAnonymityPSOAttacker, PSOGame
from repro.data.distributions import ProductDistribution, uniform_bits_schema
from repro.data.domain import CategoricalDomain
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

K = 4
N = 200
TRIALS = 25


def _world():
    bits = uniform_bits_schema(64)
    schema = Schema(
        list(bits.attributes)
        + [Attribute("secret", CategoricalDomain(range(40)), AttributeKind.SENSITIVE)]
    )
    return ProductDistribution.uniform(schema)


def _evaluate():
    distribution = _world()
    sample = distribution.sample(N, derive_rng(0, "ablation-anon"))
    anonymizers = [
        ("agreement (sorted)", AgreementAnonymizer(K, strategy="sorted")),
        ("agreement (sequential)", AgreementAnonymizer(K, strategy="sequential")),
        ("mondrian", MondrianAnonymizer(K)),
        ("mondrian l-diverse", MondrianAnonymizer(K, l_diversity=(2, "secret"))),
        ("datafly", DataflyAnonymizer(K)),
    ]
    table = Table(
        ["anonymizer", "discernibility", "precision", "PSO success (auto attacker)"],
        title=f"Ablation: anonymizers at k={K}, n={N}",
    )
    rows = {}
    for label, anonymizer in anonymizers:
        release = anonymizer.anonymize(sample)
        game = PSOGame(
            distribution,
            N,
            KAnonymityMechanism(anonymizer, label=label),
            KAnonymityPSOAttacker("auto"),
        )
        result = game.run(TRIALS, derive_rng(0, "ablation-anon", label))
        table.add_row(
            [
                label,
                discernibility_metric(release),
                generalization_precision(release),
                str(result.success),
            ]
        )
        rows[label] = result.success.estimate
    return table, rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_anonymizers(benchmark):
    table, rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print()
    print(table.render())
    # The information-optimizing anonymizers that keep the sensitive column
    # raw must be broken; the sorted agreement variant (highest utility)
    # among them.
    assert rows["agreement (sorted)"] >= 0.8
