"""Benchmark E11 — Theorems 1.3/2.9: DP prevents PSO.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e11")
def test_e11_dp_pso(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E11", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["attack_success_dp_eps2"] <= 0.1
