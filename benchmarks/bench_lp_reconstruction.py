"""Benchmark: batched workload answering + sparse LP decoding.

Usage::

    PYTHONPATH=src python benchmarks/bench_lp_reconstruction.py
    PYTHONPATH=src python benchmarks/bench_lp_reconstruction.py --sizes 256 1024

**Workload answering.**  For each ``n`` we build the E2 workload
(``m = 8n`` random subset queries) and answer it twice with identically
seeded :class:`~repro.queries.mechanism.BoundedNoiseAnswerer` instances:
once through the legacy per-query ``answer`` loop, once through the
vectorized ``answer_workload`` path.  The two answer vectors are asserted
bit-identical (same RNG stream, same consumption order), so the speedup
column measures the engine, not a different computation.  At ``n = 1024``
the batched path is asserted to be at least 10x faster.

The workload's one-time CSR assembly is performed (and timed, see the
``assembly_seconds`` field) before the answering passes: it is a property
of the fixed workload, cached on the :class:`Workload` and shared with the
LP decode below, and the experiments amortize it across every (noise
level, repeat) answering pass — whereas no pre-assembly can help the
scalar ``answer`` loop, which must re-traverse a mask per query.

**LP decoding.**  The same workload's answers are decoded with the sparse
feasibility LP (CSR ``A_ub``, HiGHS interior point).  Small sizes use the
classical density-1/2 workload; large sizes (n > 256) use density
``64 / n`` — the sparse regime from "Linear Program Reconstruction in
Practice" where CSR assembly is genuinely small and the attack scales to
``n = 4096`` on one core.  We record agreement with the true data, the
constraint nnz, and the CSR bytes vs what a dense float64 ``[A; -A]``
stack would occupy.

Results are written to ``BENCH_reconstruction.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.queries.mechanism import BoundedNoiseAnswerer
from repro.queries.workload import Workload
from repro.reconstruction.lp_decode import DEFAULT_LP_SOLVER, reconstruct_from_answers
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

#: Sizes must include 1024: that is where the >= 10x answering speedup and
#: the sparse-LP scaling claims are asserted.
DEFAULT_SIZES = (256, 1024, 4096)

#: Per-query answering is asserted at least this many times slower than the
#: batched path at n = 1024 (the ISSUE acceptance bar).
MIN_SPEEDUP_AT_1024 = 10.0


def workload_density(n: int) -> float:
    """Density 1/2 classically; ~64 expected members per query at scale."""
    return 0.5 if n <= 256 else 64.0 / n


def bench_answering(n: int, seed: int) -> dict:
    """Time the per-query loop vs answer_workload on the same workload."""
    m = 8 * n
    density = workload_density(n)
    workload = Workload.random(n, m, density=density, rng=derive_rng(seed, "bench-w", n))
    data_rng = derive_rng(seed, "bench-data", n)
    data = data_rng.integers(0, 2, size=n)
    # Noise calibrated to the typical query magnitude sqrt(k) for expected
    # query size k = n * density (at density 1/2 this is the classical
    # c' * sqrt(n) up to a constant; at sparse densities it keeps the
    # attack in its success regime instead of drowning ~64-count answers
    # in sqrt(n)-scale noise).
    alpha = 0.5 * float(np.sqrt(n * density))

    def make_answerer() -> BoundedNoiseAnswerer:
        return BoundedNoiseAnswerer(data, alpha=alpha, rng=derive_rng(seed, "bench-a", n))

    # One-time workload assembly (cached CSR shared by every answering pass
    # and by the LP decode); timed separately from the answering passes.
    start = time.perf_counter()
    workload.matrix(sparse=True)
    assembly_elapsed = time.perf_counter() - start

    loop_answerer = make_answerer()
    queries = list(workload)
    start = time.perf_counter()
    loop_answers = np.array([loop_answerer.answer(query) for query in queries])
    loop_elapsed = time.perf_counter() - start

    batch_answerer = make_answerer()
    start = time.perf_counter()
    batch_answers = batch_answerer.answer_workload(workload)
    batch_elapsed = time.perf_counter() - start

    assert np.array_equal(loop_answers, batch_answers), (
        f"n={n}: batched answers diverged from the per-query loop"
    )
    assert loop_answerer.queries_answered == batch_answerer.queries_answered == m

    speedup = loop_elapsed / max(batch_elapsed, 1e-9)
    if n == 1024:
        assert speedup >= MIN_SPEEDUP_AT_1024, (
            f"n=1024 speedup {speedup:.1f}x below the {MIN_SPEEDUP_AT_1024}x bar"
        )
    return {
        "n": n,
        "m": m,
        "density": density,
        "alpha": alpha,
        "assembly_seconds": assembly_elapsed,
        "loop_seconds": loop_elapsed,
        "batched_seconds": batch_elapsed,
        "speedup": speedup,
        "bit_identical": True,
        "workload": workload,
        "answers": batch_answers,
        "data": data,
    }


def bench_lp(entry: dict, solver: str) -> dict:
    """Sparse-feasibility decode of the workload answered in bench_answering."""
    workload: Workload = entry["workload"]
    matrix = workload.matrix(sparse=True)
    m, n = matrix.shape
    # The LP stacks [A; -A]: CSR holds data+indices (12 B/nnz) + indptr.
    sparse_bytes = 2 * (matrix.data.nbytes + matrix.indices.nbytes) + matrix.indptr.nbytes
    dense_bytes = 2 * m * n * 8

    start = time.perf_counter()
    result = reconstruct_from_answers(
        workload, entry["answers"], alpha=entry["alpha"], solver=solver
    )
    elapsed = time.perf_counter() - start
    return {
        "n": n,
        "m": m,
        "solver": solver,
        "mode": result.mode,
        "lp_seconds": elapsed,
        "agreement": result.agreement_with(entry["data"]),
        "constraint_nnz": int(2 * matrix.nnz),
        "sparse_bytes": int(sparse_bytes),
        "dense_bytes": int(dense_bytes),
        "dense_to_sparse_ratio": dense_bytes / max(1, sparse_bytes),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES), help="dataset sizes n"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--solver", default=DEFAULT_LP_SOLVER, help="HiGHS algorithm for the LP"
    )
    parser.add_argument(
        "--skip-lp", action="store_true", help="only benchmark workload answering"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_reconstruction.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    answer_table = Table(
        ["n", "m", "density", "assemble (s)", "loop (s)", "batched (s)", "speedup", "bit-identical"],
        title="Workload answering: per-query loop vs answer_workload",
    )
    lp_table = Table(
        ["n", "m", "solver", "LP (s)", "agreement", "nnz", "dense/sparse bytes"],
        title=f"Sparse LP decoding (feasibility, {args.solver})",
    )

    answering_rows = []
    lp_rows = []
    for n in args.sizes:
        entry = bench_answering(n, args.seed)
        answering_rows.append(
            {k: v for k, v in entry.items() if k not in ("workload", "answers", "data")}
        )
        answer_table.add_row(
            [
                entry["n"],
                entry["m"],
                f"{entry['density']:.4f}",
                f"{entry['assembly_seconds']:.3f}",
                f"{entry['loop_seconds']:.3f}",
                f"{entry['batched_seconds']:.4f}",
                f"{entry['speedup']:.1f}x",
                "yes",
            ]
        )
        print(f"answering n={n}: {entry['speedup']:.1f}x", flush=True)
        if not args.skip_lp:
            lp_entry = bench_lp(entry, args.solver)
            lp_rows.append(lp_entry)
            lp_table.add_row(
                [
                    lp_entry["n"],
                    lp_entry["m"],
                    lp_entry["solver"],
                    f"{lp_entry['lp_seconds']:.1f}",
                    f"{lp_entry['agreement']:.3f}",
                    lp_entry["constraint_nnz"],
                    f"{lp_entry['dense_to_sparse_ratio']:.1f}x",
                ]
            )
            print(
                f"lp n={n}: {lp_entry['lp_seconds']:.1f}s agree={lp_entry['agreement']:.3f}",
                flush=True,
            )

    print()
    print(answer_table.render())
    if lp_rows:
        print()
        print(lp_table.render())

    payload = {
        "benchmark": "lp_reconstruction",
        "seed": args.seed,
        "solver": args.solver,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "answering": answering_rows,
        "lp": lp_rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
