"""Benchmark: batched workload answering + sparse LP decoding.

Usage::

    PYTHONPATH=src python benchmarks/bench_lp_reconstruction.py
    PYTHONPATH=src python benchmarks/bench_lp_reconstruction.py --sizes 256 1024

**Workload answering.**  For each ``n`` we build the E2 workload
(``m = 8n`` random subset queries) and answer it twice with identically
seeded :class:`~repro.queries.mechanism.BoundedNoiseAnswerer` instances:
once through the legacy per-query ``answer`` loop, once through the
vectorized ``answer_workload`` path.  The two answer vectors are asserted
bit-identical (same RNG stream, same consumption order), so the speedup
column measures the engine, not a different computation.  At ``n = 1024``
the batched path is asserted to be at least 10x faster.

The workload's one-time CSR assembly is performed (and timed, see the
``assembly_seconds`` field) before the answering passes: it is a property
of the fixed workload, cached on the :class:`Workload` and shared with the
LP decode below, and the experiments amortize it across every (noise
level, repeat) answering pass — whereas no pre-assembly can help the
scalar ``answer`` loop, which must re-traverse a mask per query.

**LP decoding.**  The same workload's answers are decoded with the sparse
feasibility LP (CSR ``A_ub``, HiGHS interior point).  Small sizes use the
classical density-1/2 workload; large sizes (n > 256) use density
``64 / n`` — the sparse regime from "Linear Program Reconstruction in
Practice" where CSR assembly is genuinely small and the attack scales to
``n = 4096`` on one core.  We record agreement with the true data, the
constraint nnz, and the CSR bytes vs what a dense float64 ``[A; -A]``
stack would occupy.

**First-order l2 decoding.**  Every (workload, answers) transcript is also
decoded with :func:`repro.reconstruction.l2_decode.l2_decode` — the KRS
projection fast path.  At ``n = 4096`` the l2 path is asserted at least
10x faster than the LP while preserving agreement 1.000.

**Sharded pipeline.**  A census-style multi-block population (32-person
blocks, block-diagonal workload, the E20 construction) runs through
:class:`~repro.reconstruction.sharding.ShardedReconstructor` end to end —
block discovery, batched l2 decoding, per-shard LP escalation — and the
records-per-second throughput is recorded.  The joined bits are asserted
identical across ``jobs=1`` and ``jobs=2``, and full runs guard the
throughput against the recorded baseline (one-sided, 10% tolerance, the
same policy as ``bench_service_throughput``).

Results are written to ``BENCH_reconstruction.json`` (see ``--output``);
``--smoke`` runs CI-sized inputs and skips the 4096-point and the guard.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.experiments.e20_sharded_reconstruction import BLOCK_SIZE, build_population
from repro.queries.mechanism import BoundedNoiseAnswerer
from repro.queries.workload import Workload
from repro.reconstruction.l2_decode import l2_decode
from repro.reconstruction.lp_decode import DEFAULT_LP_SOLVER, reconstruct_from_answers
from repro.reconstruction.sharding import BlockPartition, ShardedReconstructor
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

#: Sizes must include 1024: that is where the >= 10x answering speedup and
#: the sparse-LP scaling claims are asserted.
DEFAULT_SIZES = (256, 1024, 4096)

#: Smoke (CI) sizes: everything exercised, nothing slow.
SMOKE_SIZES = (256, 1024)

#: Per-query answering is asserted at least this many times slower than the
#: batched path at n = 1024 (the ISSUE acceptance bar).
MIN_SPEEDUP_AT_1024 = 10.0

#: The l2 fast path is asserted at least this many times faster than the
#: LP at n = 4096, at agreement 1.000 (the ISSUE acceptance bar).
MIN_L2_SPEEDUP_AT_4096 = 10.0

#: Sharded blocks: ~10^6 records full, CI-sized smoke.
SHARDED_BLOCKS = 31_250
SHARDED_BLOCKS_SMOKE = 320

#: The sharded pipeline must reconstruct at least this fraction correctly.
MIN_SHARDED_AGREEMENT = 0.95

#: Allowed records/second regression against the recorded baseline
#: (one-sided; the policy bench_service_throughput uses).
GUARD_TOLERANCE = 0.10


def workload_density(n: int) -> float:
    """Density 1/2 classically; ~64 expected members per query at scale."""
    return 0.5 if n <= 256 else 64.0 / n


def bench_answering(n: int, seed: int) -> dict:
    """Time the per-query loop vs answer_workload on the same workload."""
    m = 8 * n
    density = workload_density(n)
    workload = Workload.random(n, m, density=density, rng=derive_rng(seed, "bench-w", n))
    data_rng = derive_rng(seed, "bench-data", n)
    data = data_rng.integers(0, 2, size=n)
    # Noise calibrated to the typical query magnitude sqrt(k) for expected
    # query size k = n * density (at density 1/2 this is the classical
    # c' * sqrt(n) up to a constant; at sparse densities it keeps the
    # attack in its success regime instead of drowning ~64-count answers
    # in sqrt(n)-scale noise).
    alpha = 0.5 * float(np.sqrt(n * density))

    def make_answerer() -> BoundedNoiseAnswerer:
        return BoundedNoiseAnswerer(data, alpha=alpha, rng=derive_rng(seed, "bench-a", n))

    # One-time workload assembly (cached CSR shared by every answering pass
    # and by the LP decode); timed separately from the answering passes.
    start = time.perf_counter()
    workload.matrix(sparse=True)
    assembly_elapsed = time.perf_counter() - start

    loop_answerer = make_answerer()
    queries = list(workload)
    start = time.perf_counter()
    loop_answers = np.array([loop_answerer.answer(query) for query in queries])
    loop_elapsed = time.perf_counter() - start

    batch_answerer = make_answerer()
    start = time.perf_counter()
    batch_answers = batch_answerer.answer_workload(workload)
    batch_elapsed = time.perf_counter() - start

    assert np.array_equal(loop_answers, batch_answers), (
        f"n={n}: batched answers diverged from the per-query loop"
    )
    assert loop_answerer.queries_answered == batch_answerer.queries_answered == m

    speedup = loop_elapsed / max(batch_elapsed, 1e-9)
    if n == 1024:
        assert speedup >= MIN_SPEEDUP_AT_1024, (
            f"n=1024 speedup {speedup:.1f}x below the {MIN_SPEEDUP_AT_1024}x bar"
        )
    return {
        "n": n,
        "m": m,
        "density": density,
        "alpha": alpha,
        "assembly_seconds": assembly_elapsed,
        "loop_seconds": loop_elapsed,
        "batched_seconds": batch_elapsed,
        "speedup": speedup,
        "bit_identical": True,
        "workload": workload,
        "answers": batch_answers,
        "data": data,
    }


def bench_lp(entry: dict, solver: str) -> dict:
    """Sparse-feasibility decode of the workload answered in bench_answering."""
    workload: Workload = entry["workload"]
    matrix = workload.matrix(sparse=True)
    m, n = matrix.shape
    # The LP stacks [A; -A]: CSR holds data+indices (12 B/nnz) + indptr.
    sparse_bytes = 2 * (matrix.data.nbytes + matrix.indices.nbytes) + matrix.indptr.nbytes
    dense_bytes = 2 * m * n * 8

    start = time.perf_counter()
    result = reconstruct_from_answers(
        workload, entry["answers"], alpha=entry["alpha"], solver=solver
    )
    elapsed = time.perf_counter() - start
    return {
        "n": n,
        "m": m,
        "solver": solver,
        "mode": result.mode,
        "lp_seconds": elapsed,
        "agreement": result.agreement_with(entry["data"]),
        "constraint_nnz": int(2 * matrix.nnz),
        "sparse_bytes": int(sparse_bytes),
        "dense_bytes": int(dense_bytes),
        "dense_to_sparse_ratio": dense_bytes / max(1, sparse_bytes),
    }


def bench_l2(entry: dict, lp_entry: dict | None) -> dict:
    """First-order decode of the same transcript; speedup vs the LP."""
    workload: Workload = entry["workload"]
    start = time.perf_counter()
    result = l2_decode(workload, entry["answers"], entry["alpha"])
    elapsed = time.perf_counter() - start
    agreement = result.agreement_with(entry["data"])
    lp_seconds = lp_entry["lp_seconds"] if lp_entry else None
    speedup = lp_seconds / max(elapsed, 1e-9) if lp_seconds else None
    if entry["n"] == 4096 and lp_entry is not None:
        assert agreement == 1.0, (
            f"l2 at n=4096 lost agreement: {agreement:.4f} != 1.000"
        )
        assert speedup >= MIN_L2_SPEEDUP_AT_4096, (
            f"l2 speedup at n=4096 is {speedup:.1f}x, below the "
            f"{MIN_L2_SPEEDUP_AT_4096}x bar"
        )
    return {
        "n": entry["n"],
        "m": entry["m"],
        "l2_seconds": elapsed,
        "lp_seconds": lp_seconds,
        "speedup_vs_lp": speedup,
        "iterations": result.iterations,
        "certified": result.certified,
        "agreement": agreement,
        "lp_agreement": lp_entry["agreement"] if lp_entry else None,
    }


def bench_sharded(num_blocks: int, seed: int, jobs: int = 1) -> dict:
    """End-to-end sharded pipeline throughput on a multi-block population.

    Runs discovery + decode once for the timing, then re-runs the decode
    with ``jobs=2`` and asserts the joined bits identical — the pipeline's
    determinism contract, checked at the benchmarked scale.
    """
    workload, data, answers = build_population(
        num_blocks, derive_rng(seed, "bench-sharded", num_blocks)
    )
    reconstructor = ShardedReconstructor(alpha=1.0)

    start = time.perf_counter()
    partition = BlockPartition.from_workload(workload)
    discover_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    result = reconstructor.reconstruct(
        workload, answers, partition=partition, jobs=jobs, seed=seed
    )
    decode_elapsed = time.perf_counter() - start
    elapsed = discover_elapsed + decode_elapsed

    agreement = result.agreement_with(data)
    assert agreement >= MIN_SHARDED_AGREEMENT, (
        f"sharded agreement {agreement:.4f} below the "
        f"{MIN_SHARDED_AGREEMENT} bar"
    )
    forked = reconstructor.reconstruct(
        workload, answers, partition=partition, jobs=2, seed=seed
    )
    assert np.array_equal(result.reconstruction, forked.reconstruction), (
        "sharded reconstruction is not bit-identical across jobs settings"
    )
    return {
        "blocks": num_blocks,
        "block_size": BLOCK_SIZE,
        "records": workload.n,
        "queries": workload.m,
        "jobs": jobs,
        "discover_seconds": discover_elapsed,
        "decode_seconds": decode_elapsed,
        "records_per_second": workload.n / elapsed,
        "certified_fraction": result.certified / result.blocks,
        "escalated_shards": result.escalated,
        "agreement": agreement,
        "jobs_bit_identical": True,
    }


def _load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def guard_sharded_baseline(sharded: dict, output: Path) -> list[str]:
    """Hold the sharded throughput to the recorded baseline (full runs).

    One-sided with :data:`GUARD_TOLERANCE` slack, skipped silently when no
    comparable full-mode baseline is recorded — the same policy as the
    service-throughput guards.
    """
    baseline = _load_baseline(output)
    if not baseline or baseline.get("smoke"):
        return []
    base = baseline.get("sharded")
    if not base or base.get("blocks") != sharded["blocks"]:
        return []
    floor = float(base["records_per_second"]) * (1.0 - GUARD_TOLERANCE)
    assert sharded["records_per_second"] >= floor, (
        f"sharded throughput regressed: {sharded['records_per_second']:,.0f} "
        f"rec/s < {floor:,.0f} rec/s ({(1 - GUARD_TOLERANCE):.0%} of the "
        f"recorded {base['records_per_second']:,.0f} rec/s baseline)"
    )
    return [
        f"sharded {sharded['blocks']} blocks: "
        f"{sharded['records_per_second']:,.0f} rec/s >= {floor:,.0f} rec/s"
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None, help="dataset sizes n"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--solver", default=DEFAULT_LP_SOLVER, help="HiGHS algorithm for the LP"
    )
    parser.add_argument(
        "--skip-lp", action="store_true", help="only benchmark workload answering"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized inputs; skips n=4096 and the guard"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the JSON file"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_reconstruction.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    if args.sizes is None:
        args.sizes = list(SMOKE_SIZES if args.smoke else DEFAULT_SIZES)

    answer_table = Table(
        ["n", "m", "density", "assemble (s)", "loop (s)", "batched (s)", "speedup", "bit-identical"],
        title="Workload answering: per-query loop vs answer_workload",
    )
    lp_table = Table(
        ["n", "m", "solver", "LP (s)", "agreement", "nnz", "dense/sparse bytes"],
        title=f"Sparse LP decoding (feasibility, {args.solver})",
    )
    l2_table = Table(
        ["n", "m", "l2 (s)", "LP (s)", "speedup", "iters", "certified", "agreement"],
        title="First-order l2 decoding vs the LP",
    )

    answering_rows = []
    lp_rows = []
    l2_rows = []
    for n in args.sizes:
        entry = bench_answering(n, args.seed)
        answering_rows.append(
            {k: v for k, v in entry.items() if k not in ("workload", "answers", "data")}
        )
        answer_table.add_row(
            [
                entry["n"],
                entry["m"],
                f"{entry['density']:.4f}",
                f"{entry['assembly_seconds']:.3f}",
                f"{entry['loop_seconds']:.3f}",
                f"{entry['batched_seconds']:.4f}",
                f"{entry['speedup']:.1f}x",
                "yes",
            ]
        )
        print(f"answering n={n}: {entry['speedup']:.1f}x", flush=True)
        lp_entry = None
        if not args.skip_lp:
            lp_entry = bench_lp(entry, args.solver)
            lp_rows.append(lp_entry)
            lp_table.add_row(
                [
                    lp_entry["n"],
                    lp_entry["m"],
                    lp_entry["solver"],
                    f"{lp_entry['lp_seconds']:.1f}",
                    f"{lp_entry['agreement']:.3f}",
                    lp_entry["constraint_nnz"],
                    f"{lp_entry['dense_to_sparse_ratio']:.1f}x",
                ]
            )
            print(
                f"lp n={n}: {lp_entry['lp_seconds']:.1f}s agree={lp_entry['agreement']:.3f}",
                flush=True,
            )
        l2_entry = bench_l2(entry, lp_entry)
        l2_rows.append(l2_entry)
        l2_table.add_row(
            [
                l2_entry["n"],
                l2_entry["m"],
                f"{l2_entry['l2_seconds']:.3f}",
                f"{l2_entry['lp_seconds']:.1f}" if l2_entry["lp_seconds"] else "-",
                f"{l2_entry['speedup_vs_lp']:.0f}x" if l2_entry["speedup_vs_lp"] else "-",
                l2_entry["iterations"],
                l2_entry["certified"],
                f"{l2_entry['agreement']:.3f}",
            ]
        )
        print(
            f"l2 n={n}: {l2_entry['l2_seconds']:.3f}s agree={l2_entry['agreement']:.3f}",
            flush=True,
        )

    sharded_blocks = SHARDED_BLOCKS_SMOKE if args.smoke else SHARDED_BLOCKS
    sharded = bench_sharded(sharded_blocks, args.seed)
    print(
        f"sharded {sharded['blocks']:,} blocks ({sharded['records']:,} records): "
        f"{sharded['records_per_second']:,.0f} rec/s, "
        f"agree={sharded['agreement']:.4f}, "
        f"escalated={sharded['escalated_shards']}",
        flush=True,
    )

    guard_checks: list[str] = []
    if not args.smoke:
        guard_checks = guard_sharded_baseline(sharded, args.output)
        for line in guard_checks:
            print(f"guard: {line}", flush=True)

    print()
    print(answer_table.render())
    if lp_rows:
        print()
        print(lp_table.render())
    print()
    print(l2_table.render())

    payload = {
        "benchmark": "lp_reconstruction",
        "smoke": args.smoke,
        "seed": args.seed,
        "solver": args.solver,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "guard_tolerance": GUARD_TOLERANCE,
        "baseline_guard": guard_checks,
        "answering": answering_rows,
        "lp": lp_rows,
        "l2": l2_rows,
        "sharded": sharded,
    }
    if not args.no_write:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
