"""Ablation: weight-computation routes (exact / analytic / Monte Carlo).

DESIGN.md commits to exact structural weights where possible and
Clopper-Pearson-bounded Monte Carlo otherwise.  This bench measures what
that buys: agreement between the three routes on predicates where all are
available, and the cost of the Monte-Carlo fallback relative to the exact
path (the reason the PSO game prefers structure).
"""

import time

import pytest

from repro.core.leftover_hash import hash_threshold_predicate
from repro.core.predicate import Predicate, attribute_predicate
from repro.data.distributions import uniform_bits_distribution
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

SAMPLES = 20_000


def _evaluate():
    distribution = uniform_bits_distribution(24)
    # A structural conjunction with known weight 2^-6.
    structural = attribute_predicate("b0", 1)
    for i in range(1, 6):
        structural = structural & attribute_predicate(f"b{i}", 1)
    # The same membership function, but opaque (forces Monte Carlo).
    opaque = Predicate(
        lambda record: all(record[f"b{i}"] == 1 for i in range(6)),
        "opaque 6-bit conjunction",
    )
    # A hash cut with analytic weight 2^-6.
    analytic = hash_threshold_predicate("ablation-w", 2.0**-6)

    table = Table(
        ["route", "weight", "safe bound", "time (ms)"],
        title="Ablation: weight-computation routes on a true-2^-6 predicate",
    )
    results = {}
    for label, predicate in (
        ("exact (structural)", structural),
        ("analytic (hash)", analytic),
        ("Monte Carlo (opaque)", opaque),
    ):
        start = time.perf_counter()
        weight = predicate.weight(distribution, samples=SAMPLES, rng=derive_rng(0, label))
        bound = predicate.weight_bound(
            distribution, samples=SAMPLES, rng=derive_rng(1, label)
        )
        elapsed = (time.perf_counter() - start) * 1000.0
        table.add_row([label, weight, bound, elapsed])
        results[label] = (weight, bound, elapsed)
    return table, results


@pytest.mark.benchmark(group="ablation")
def test_ablation_weight_methods(benchmark):
    table, results = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print()
    print(table.render())
    truth = 2.0**-6
    exact_weight, exact_bound, exact_ms = results["exact (structural)"]
    analytic_weight, _, _ = results["analytic (hash)"]
    mc_weight, mc_bound, mc_ms = results["Monte Carlo (opaque)"]
    assert exact_weight == pytest.approx(truth, rel=1e-12)
    assert analytic_weight == pytest.approx(truth, rel=1e-12)
    assert mc_weight == pytest.approx(truth, rel=0.5)  # sampling error
    assert mc_bound >= truth  # the CP bound is safe
    assert exact_ms < mc_ms  # structure is the cheap path
