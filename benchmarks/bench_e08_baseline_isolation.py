"""Benchmark E8 — Section 2.2: the ~37% trivial-attacker baseline.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e08")
def test_e08_baseline_isolation(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E8", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["measured_isolation_at_w_1_over_n"] >= 0.25
