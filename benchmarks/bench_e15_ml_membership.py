"""Benchmark E15 — Shokri [40]: membership inference against ML models.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e15")
def test_e15_ml_membership(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E15", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["auc_overfit"] >= 0.6
