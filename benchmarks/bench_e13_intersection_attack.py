"""Benchmark E13 — Section 1.1: k-anonymity is not closed under composition.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e13")
def test_e13_intersection_attack(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E13", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["max_gain_over_single_release"] > 0.0
