"""Benchmark E1 — Theorem 1.1(i): exhaustive reconstruction at alpha = c*n.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e01")
def test_e01_exhaustive_reconstruction(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E1", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["min_agreement_at_small_c"] >= 0.95
