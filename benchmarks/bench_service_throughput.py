"""Benchmark: query-service throughput, concurrent scaling, auditor overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --loadgen-only

**Single-session throughput.**  One analyst asks ``q`` distinct queries
against an ``n``-bit Laplace server three ways: per-query *uncached* (every
ask draws noise and is charged), per-query *cached* (the same queries
re-asked — fingerprint + cache hit + audit-log append, no charge, no
noise), and *batched* via ``ask_workload`` (one vectorized mechanism call).
Cached and batched passes take the best of ``--repeats`` runs (replay is
free and idempotent), which is what makes the numbers comparable across
noisy machines.  The cached path is asserted to clear **10,000
queries/sec** (the ISSUE acceptance bar); cache hits are also asserted
bit-identical to the first release.

**Concurrent sessions.**  ``k in {1, 2, 4, 8, 16}`` analyst threads ask
their own query streams against one :class:`ShardedQueryServer` (16
shards, per-shard striped caches and audit logs, one sharded accountant).
Python threads serialize the pure-Python hot path, so on one core this
measures lock-convoy overhead honestly: the sharded front end's gate is
that cached throughput at the highest session count is **no worse than at
one session** — adding sessions must not collapse the service the way a
single-lock front end does.

**Load generator.**  Closed-loop session churn: ``--loadgen-sessions``
distinct analysts (10^4 and 10^5 in full mode, 64 in smoke) each open a
session, ask a deterministic per-analyst query stream, and replay it for
cache hits, driven by worker threads over
:func:`repro.utils.parallel.parallel_map`.  This exercises the
registry/admission path at session counts the per-analyst-dict design has
to survive, and reports end-to-end sessions/sec (setup included).

**Auditor overhead.**  The same attacker-style batched workload stream is
served with the reconstruction auditor disabled and enabled (audit pass
every ``n/8`` fresh queries); the slowdown is the price of online LP
replay, amortized per query.  A second measurement replays an exact
transcript through the l2-screened auditor cold vs warm-started
(``warm_start_passes=True``): a stored solution that still certifies the
grown transcript costs one matvec instead of a solve.

**Compliance gate.**  The release-approval gate
(:class:`repro.compliance.gate.ComplianceGate`) runs at mechanism-spec
registration, never per query, so a gated server's cached hot path must
cost the same as an ungated one's — both are measured on identical replay
streams, and full mode asserts the gated number stays within
``GUARD_TOLERANCE`` of the recorded ungated ``cached_qps`` baseline.  The
post-approval check itself (``gate.require``: one release fingerprint plus
one dict lookup) is timed standalone, alongside the one-time offline
certification cost it amortizes.

**Baseline guard (full mode only).**  The kernel-delegated answering paths
must stay within ``GUARD_TOLERANCE`` of the recorded baselines: the
cached-replay and batched numbers in ``BENCH_service.json``, the
16-session concurrent cached number, and the batched-answering numbers in
``BENCH_reconstruction.json`` (replicated via
``bench_lp_reconstruction.bench_answering``, best of three passes).

Results are written to ``BENCH_service.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.compliance import (
    ComplianceGate,
    CompliancePipeline,
    DpClaimVerifier,
    Policy,
)
from repro.queries.mechanism import LaplaceAnswerer
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    BasicAccountant,
    CircuitBreakerTripped,
    QueryServer,
    ReconstructionAuditor,
    ShardedQueryServer,
)
from repro.utils.parallel import chunk_indices, parallel_map
from repro.utils.rng import derive_rng

#: The ISSUE acceptance bar for the cached per-query path.
MIN_CACHED_QPS = 10_000.0

#: Allowed throughput regression against the recorded baselines (fraction).
GUARD_TOLERANCE = 0.10

#: Shard count of the concurrent front end under test.
SHARDS = 16


def _make_server(n: int, seed: int, auditor: ReconstructionAuditor | None = None) -> QueryServer:
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    return QueryServer(
        data,
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": 0.25},
        accountant=BasicAccountant(),
        auditor=auditor,
        seed=seed,
    )


def _make_sharded(n: int, seed: int) -> ShardedQueryServer:
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    return ShardedQueryServer(
        data,
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": 0.25},
        seed=seed,
        shards=SHARDS,
    )


def bench_single_session(n: int, num_queries: int, seed: int, repeats: int = 3) -> dict:
    """Uncached vs cached vs batched throughput for one analyst."""
    workload = Workload.random(n, num_queries, rng=derive_rng(seed, "bench-w", n))
    queries = list(workload)

    server = _make_server(n, seed)
    session = server.session("analyst")
    start = time.perf_counter()
    first = np.array([session.ask(query) for query in queries])
    uncached_elapsed = time.perf_counter() - start

    cached_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        replay = np.array([session.ask(query) for query in queries])
        cached_elapsed = min(cached_elapsed, time.perf_counter() - start)
        assert np.array_equal(first, replay), "cache replay diverged from first release"
    assert session.queries_charged == num_queries, "cache hits must not be re-charged"

    batched_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        batch_session = _make_server(n, seed).session("analyst")
        start = time.perf_counter()
        batched = batch_session.ask_workload(workload)
        batched_elapsed = min(batched_elapsed, time.perf_counter() - start)
        # Same analyst name + seed => same noise stream: the batched answers
        # must be bit-identical to the per-query uncached pass.
        assert np.array_equal(batched, first), "batched answers diverged from per-query"

    cached_qps = num_queries / max(cached_elapsed, 1e-9)
    assert cached_qps >= MIN_CACHED_QPS, (
        f"cached throughput {cached_qps:,.0f} q/s below the {MIN_CACHED_QPS:,.0f} bar"
    )
    return {
        "n": n,
        "queries": num_queries,
        "uncached_qps": num_queries / max(uncached_elapsed, 1e-9),
        "cached_qps": cached_qps,
        "batched_qps": num_queries / max(batched_elapsed, 1e-9),
        "cache_hit_rate": session.cache.hit_rate,
    }


def bench_compliance_gate(n: int, num_queries: int, seed: int, repeats: int = 3) -> dict:
    """Gate overhead on the cached hot path + the O(1) post-approval check.

    Certifies the exact Laplace spec the server charges (offline, timed
    once), opens gated and ungated servers over the same data/seed, replays
    one identical query stream through both caches (best of ``repeats``),
    and times ``gate.require`` standalone.  The gate runs at registration
    only, so the two cached numbers must be statistically identical.
    """
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    policy = Policy(name="bench-service", dp_trials=300)
    spec = LaplaceAnswerer(data, 0.25).spec
    pipeline = CompliancePipeline([DpClaimVerifier()], policy, seed=seed)
    start = time.perf_counter()
    certificate = pipeline.certify(spec, data=data, subject="mechanism-spec")
    certify_seconds = time.perf_counter() - start
    assert certificate.approved, "the benchmark spec must certify cleanly"
    gate = ComplianceGate(policy)
    gate.approve(certificate, spec)

    workload = Workload.random(n, num_queries, rng=derive_rng(seed, "bench-w", n))
    queries = list(workload)

    def cached_replay(compliance: ComplianceGate | None) -> float:
        server = QueryServer(
            data,
            mechanism="laplace",
            mechanism_params={"epsilon_per_query": 0.25},
            accountant=BasicAccountant(),
            seed=seed,
            compliance=compliance,
        )
        session = server.session("analyst")
        for query in queries:  # populate the cache
            session.ask(query)
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for query in queries:
                session.ask(query)
            best = min(best, time.perf_counter() - start)
        return num_queries / max(best, 1e-9)

    gated_qps = cached_replay(gate)
    ungated_qps = cached_replay(None)

    require_calls = 10_000
    start = time.perf_counter()
    for _ in range(require_calls):
        gate.require(spec, subject="mechanism-spec")
    require_elapsed = time.perf_counter() - start

    return {
        "n": n,
        "queries": num_queries,
        "gated_cached_qps": gated_qps,
        "ungated_cached_qps": ungated_qps,
        "gate_overhead_ratio": ungated_qps / max(gated_qps, 1e-9),
        "certify_seconds": certify_seconds,
        "require_calls": require_calls,
        "require_seconds_per_call": require_elapsed / require_calls,
    }


def bench_concurrent(
    n: int, per_session: int, sessions: int, seed: int, repeats: int = 3
) -> dict:
    """Aggregate throughput with ``sessions`` threads on one sharded server."""
    server = _make_sharded(n, seed)
    streams = []
    for index in range(sessions):
        workload = Workload.random(
            n, per_session, rng=derive_rng(seed, "bench-c", n, index)
        )
        streams.append((server.session(f"analyst-{index}"), list(workload)))

    def run(entry):
        session, queries = entry
        for query in queries:
            session.ask(query)

    def timed() -> float:
        threads = [threading.Thread(target=run, args=(entry,)) for entry in streams]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    uncached_elapsed = timed()  # first pass: all misses
    cached_elapsed = min(timed() for _ in range(max(1, repeats)))  # all hits
    total = per_session * sessions
    return {
        "sessions": sessions,
        "n": n,
        "queries_total": total,
        "uncached_qps": total / max(uncached_elapsed, 1e-9),
        "cached_qps": total / max(cached_elapsed, 1e-9),
    }


def bench_load_generator(
    n: int, total_sessions: int, queries_per_session: int, seed: int, workers: int = 8
) -> dict:
    """Closed-loop session churn: many short-lived analysts, few workers.

    Each analyst asks ``queries_per_session // 2`` distinct queries from
    its own deterministic stream, then replays them (cache hits), so the
    aggregate hit rate is 0.5 by construction.  Workers drain contiguous
    session ranges via the thread backend of ``parallel_map`` — a
    closed-loop load generator, not an open-loop arrival process: each
    worker starts the next session only when the previous one finishes.
    """
    server = _make_sharded(n, seed)
    distinct = max(1, queries_per_session // 2)

    def run_range(indices) -> int:
        served = 0
        for index in indices:
            session = server.session(f"load-{index}")
            rng = derive_rng(seed, "bench-load", n, index)
            queries = [SubsetQuery(rng.random(n) < 0.5) for _ in range(distinct)]
            for query in queries:
                session.ask(query)
            for query in queries:  # replay: served from cache, charged nothing
                session.ask(query)
            served += 2 * len(queries)
        return served

    ranges = chunk_indices(total_sessions, workers)
    start = time.perf_counter()
    served = sum(parallel_map(run_range, ranges, jobs=workers, backend="thread"))
    elapsed = time.perf_counter() - start

    shard_caches = [server.shard_cache(i) for i in range(SHARDS)]
    hits = sum(cache.hits for cache in shard_caches)
    misses = sum(cache.misses for cache in shard_caches)
    return {
        "sessions": total_sessions,
        "workers": workers,
        "queries_per_session": 2 * distinct,
        "queries_total": served,
        "elapsed_seconds": elapsed,
        "sessions_per_second": total_sessions / max(elapsed, 1e-9),
        "qps": served / max(elapsed, 1e-9),
        "cache_hit_rate": hits / max(hits + misses, 1),
        "rejections": server.rejections,
    }


def bench_auditor_overhead(n: int, seed: int) -> dict:
    """Batched attack stream with the auditor off vs on."""
    batches = [
        Workload.random(n, n // 8, rng=derive_rng(seed, "bench-audit", n, index))
        for index in range(12)
    ]

    plain = _make_server(n, seed)
    session = plain.session("attacker")
    start = time.perf_counter()
    for workload in batches:
        session.ask_workload(workload)
    plain_elapsed = time.perf_counter() - start

    auditor = ReconstructionAuditor(
        derive_rng(seed, "bench-data", n).integers(0, 2, size=n),
        agreement_threshold=1.0,  # never trip: measure full-stream overhead
        audit_every=n // 8,
        min_queries=n // 4,
        alpha=None,
    )
    audited = _make_server(n, seed, auditor=auditor)
    session = audited.session("attacker")
    start = time.perf_counter()
    try:
        for workload in batches:
            session.ask_workload(workload)
    except CircuitBreakerTripped:  # pragma: no cover - threshold 1.0
        pass
    audited_elapsed = time.perf_counter() - start

    total = sum(len(w) for w in batches)
    passes = len(auditor.reports)
    return {
        "n": n,
        "queries": total,
        "audit_passes": passes,
        "plain_qps": total / max(plain_elapsed, 1e-9),
        "audited_qps": total / max(audited_elapsed, 1e-9),
        "overhead_ratio": audited_elapsed / max(plain_elapsed, 1e-9),
        "lp_seconds_per_pass": (
            sum(r.elapsed_seconds for r in auditor.reports) / passes if passes else 0.0
        ),
    }


def bench_auditor_warm_start(n: int, seed: int, passes: int = 4) -> dict:
    """Periodic re-audit cost over a fixed transcript, cold vs warm-started.

    This is the steady-state regime of a background auditing sweep: the
    analyst's transcript is unchanged (or barely grown) between passes, so
    the previous pass's solution is already (near-)optimal for the next
    one.  Cold, every l2-screened pass re-solves from the center of the
    cube; warm, the solver starts at the stored solution and converges
    immediately.  The first warm pass still solves (there is nothing
    stored yet), so the steady-state number averages the passes after it.
    Verdicts are identical by construction — warm starts change where the
    solver *starts*, never what it accepts.
    """
    server = _make_server(n, seed)
    session = server.session("attacker")
    workload = Workload.random(n, int(1.5 * n), rng=derive_rng(seed, "bench-warm", n))
    session.ask_workload(workload)
    log = server.audit_log
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)

    def replay(warm: bool) -> tuple[list[float], tuple]:
        auditor = ReconstructionAuditor(
            data,
            agreement_threshold=1.0,
            audit_every=n // 8,
            min_queries=n // 4,
            alpha=None,
            screen="l2",
            screen_margin=0.0,  # stay in the l2 screen: no LP escalation
            warm_start_passes=warm,
        )
        reports = [auditor.audit(log, "attacker") for _ in range(passes)]
        times = [r.elapsed_seconds for r in reports]
        return times, tuple((r.agreement, r.flagged) for r in reports)

    cold_times, cold_verdicts = replay(warm=False)
    warm_times, warm_verdicts = replay(warm=True)
    assert warm_verdicts == cold_verdicts, "warm starts must not change verdicts"
    cold_seconds = sum(cold_times) / len(cold_times)
    warm_seconds = sum(warm_times[1:]) / max(len(warm_times) - 1, 1)
    return {
        "n": n,
        "transcript_queries": len(workload),
        "audit_passes": passes,
        "cold_seconds_per_pass": cold_seconds,
        "warm_first_pass_seconds": warm_times[0],
        "warm_seconds_per_pass": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
    }


def _load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def guard_against_baselines(
    single: dict,
    concurrent: list[dict],
    repo_root: Path,
    seed: int,
    compliance: dict | None = None,
) -> list[str]:
    """Assert the kernel-delegated answering paths hold the recorded numbers.

    Compares one-sidedly — a run may be faster than its baseline, but more
    than ``GUARD_TOLERANCE`` slower fails.  Each check that runs is
    reported; baselines that are missing or recorded at other sizes are
    skipped silently (there is nothing to regress against).
    """
    checks: list[str] = []

    service = _load_baseline(repo_root / "BENCH_service.json")
    if service and not service.get("smoke"):
        base = service.get("single_session", {})
        if base.get("n") == single["n"] and base.get("queries") == single["queries"]:
            for key in ("cached_qps", "batched_qps"):
                floor = base[key] * (1.0 - GUARD_TOLERANCE)
                assert single[key] >= floor, (
                    f"{key} regressed: {single[key]:,.0f} q/s < "
                    f"{floor:,.0f} q/s ({(1 - GUARD_TOLERANCE):.0%} of the "
                    f"recorded {base[key]:,.0f} q/s baseline)"
                )
                checks.append(
                    f"service {key}: {single[key]:,.0f} q/s >= {floor:,.0f} q/s"
                )
        # Compliance guard: the gate runs at registration only, so the
        # gated cached hot path must hold the committed ungated baseline.
        if (
            compliance is not None
            and base.get("n") == compliance["n"]
            and base.get("queries") == compliance["queries"]
        ):
            floor = base["cached_qps"] * (1.0 - GUARD_TOLERANCE)
            assert compliance["gated_cached_qps"] >= floor, (
                f"gated cached_qps regressed: "
                f"{compliance['gated_cached_qps']:,.0f} q/s < {floor:,.0f} q/s "
                f"({(1 - GUARD_TOLERANCE):.0%} of the recorded ungated "
                f"{base['cached_qps']:,.0f} q/s baseline)"
            )
            checks.append(
                f"compliance gated_cached_qps: "
                f"{compliance['gated_cached_qps']:,.0f} q/s >= {floor:,.0f} q/s"
            )
        # Concurrent guard: only against baselines recorded for the sharded
        # front end (older files recorded the single-lock server; skip those).
        scaling = service.get("concurrent_scaling", {})
        base_concurrent = {
            entry.get("sessions"): entry for entry in service.get("concurrent", [])
        }
        if scaling.get("server", "").startswith("ShardedQueryServer"):
            for live in concurrent:
                base = base_concurrent.get(live["sessions"])
                if not base or base.get("n") != live["n"]:
                    continue
                floor = base["cached_qps"] * (1.0 - GUARD_TOLERANCE)
                assert live["cached_qps"] >= floor, (
                    f"concurrent cached_qps at {live['sessions']} sessions "
                    f"regressed: {live['cached_qps']:,.0f} q/s < {floor:,.0f} q/s "
                    f"({(1 - GUARD_TOLERANCE):.0%} of the recorded "
                    f"{base['cached_qps']:,.0f} q/s baseline)"
                )
                checks.append(
                    f"concurrent cached_qps @{live['sessions']}: "
                    f"{live['cached_qps']:,.0f} q/s >= {floor:,.0f} q/s"
                )

    reconstruction = _load_baseline(repo_root / "BENCH_reconstruction.json")
    if reconstruction and not reconstruction.get("smoke") and reconstruction.get("answering"):
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        try:
            from bench_lp_reconstruction import bench_answering
        finally:
            sys.path.pop(0)
        recon_seed = int(reconstruction.get("seed", seed))
        for entry in reconstruction["answering"]:
            n, m = int(entry["n"]), int(entry["m"])
            best = min(
                bench_answering(n, recon_seed)["batched_seconds"] for _ in range(3)
            )
            live_qps = m / max(best, 1e-9)
            base_qps = m / max(float(entry["batched_seconds"]), 1e-9)
            floor = base_qps * (1.0 - GUARD_TOLERANCE)
            assert live_qps >= floor, (
                f"batched answering at n={n} regressed: {live_qps:,.0f} q/s < "
                f"{floor:,.0f} q/s ({(1 - GUARD_TOLERANCE):.0%} of the "
                f"recorded {base_qps:,.0f} q/s baseline)"
            )
            checks.append(
                f"reconstruction answering n={n}: {live_qps:,.0f} q/s >= "
                f"{floor:,.0f} q/s"
            )
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sessions", type=int, nargs="+", default=None, help="concurrency levels"
    )
    parser.add_argument(
        "--loadgen-sessions",
        type=int,
        nargs="+",
        default=None,
        help="load-generator session counts",
    )
    parser.add_argument(
        "--loadgen-only",
        action="store_true",
        help="run only the load generator (skip everything else; implies --no-write)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats for cached passes"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the JSON file"
    )
    args = parser.parse_args(argv)

    n = 128 if args.smoke else 512
    num_queries = 2_000 if args.smoke else 8_000
    per_session = 250 if args.smoke else 1_000
    session_counts = args.sessions or ([1, 2, 4] if args.smoke else [1, 2, 4, 8, 16])
    loadgen_counts = args.loadgen_sessions or (
        [64] if args.smoke else [10_000, 100_000]
    )

    loadgen = []
    for count in loadgen_counts:
        entry = bench_load_generator(n, count, 8, args.seed)
        loadgen.append(entry)
        print(
            f"load generator: {count:,} sessions in {entry['elapsed_seconds']:.1f}s "
            f"({entry['sessions_per_second']:,.0f} sessions/s, "
            f"{entry['qps']:,.0f} q/s end-to-end)",
            flush=True,
        )
    if args.loadgen_only:
        return 0

    single = bench_single_session(n, num_queries, args.seed, repeats=args.repeats)
    print(
        f"single session n={n}: uncached {single['uncached_qps']:,.0f} q/s, "
        f"cached {single['cached_qps']:,.0f} q/s, "
        f"batched {single['batched_qps']:,.0f} q/s",
        flush=True,
    )

    compliance = bench_compliance_gate(n, num_queries, args.seed, repeats=args.repeats)
    print(
        f"compliance gate n={n}: gated cached {compliance['gated_cached_qps']:,.0f} q/s "
        f"vs ungated {compliance['ungated_cached_qps']:,.0f} q/s "
        f"({compliance['gate_overhead_ratio']:.2f}x), "
        f"require() {compliance['require_seconds_per_call'] * 1e6:.1f}us/call, "
        f"certify {compliance['certify_seconds']:.2f}s once",
        flush=True,
    )

    concurrent = []
    for count in session_counts:
        entry = bench_concurrent(n, per_session, count, args.seed, repeats=args.repeats)
        concurrent.append(entry)
        print(
            f"{count:>2} sessions: uncached {entry['uncached_qps']:,.0f} q/s, "
            f"cached {entry['cached_qps']:,.0f} q/s",
            flush=True,
        )
    low, high = concurrent[0], concurrent[-1]
    scaling_ratio = high["cached_qps"] / max(low["cached_qps"], 1e-9)
    # "Must not collapse" with the same jitter tolerance as the committed
    # baselines: on a loaded box the cached path wobbles a few percent
    # run-to-run, which is noise, not a scaling regression.
    scaling_ok = high["cached_qps"] >= low["cached_qps"] * (1.0 - GUARD_TOLERANCE)
    print(
        f"scaling: cached @{high['sessions']} sessions is {scaling_ratio:.2f}x "
        f"@{low['sessions']} session{'s' if low['sessions'] > 1 else ''}",
        flush=True,
    )
    if not args.smoke:
        # The ISSUE gate: adding sessions must not collapse the sharded
        # front end's cached throughput below its single-session number.
        assert scaling_ok, (
            f"cached throughput fell from {low['cached_qps']:,.0f} q/s at "
            f"{low['sessions']} session(s) to {high['cached_qps']:,.0f} q/s "
            f"at {high['sessions']} sessions"
        )

    audit = bench_auditor_overhead(n, args.seed)
    print(
        f"auditor: {audit['audit_passes']} passes, "
        f"{audit['overhead_ratio']:.2f}x stream slowdown, "
        f"{audit['lp_seconds_per_pass']:.3f}s per LP replay",
        flush=True,
    )
    warm = bench_auditor_warm_start(n, args.seed)
    audit["warm_start"] = warm
    print(
        f"auditor warm start: {warm['cold_seconds_per_pass']:.4f}s cold vs "
        f"{warm['warm_seconds_per_pass']:.4f}s warm per pass "
        f"({warm['speedup']:.1f}x over {warm['audit_passes']} passes)",
        flush=True,
    )

    guard_checks: list[str] = []
    if not args.smoke:
        repo_root = Path(__file__).resolve().parent.parent
        guard_checks = guard_against_baselines(
            single, concurrent, repo_root, args.seed, compliance=compliance
        )
        for line in guard_checks:
            print(f"guard: {line}", flush=True)

    payload = {
        "benchmark": "service_throughput",
        "smoke": args.smoke,
        "seed": args.seed,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "min_cached_qps_bar": MIN_CACHED_QPS,
        "guard_tolerance": GUARD_TOLERANCE,
        "baseline_guard": guard_checks,
        "single_session": single,
        "compliance": compliance,
        "concurrent": concurrent,
        "concurrent_scaling": {
            "server": f"ShardedQueryServer(shards={SHARDS})",
            "sessions_low": low["sessions"],
            "sessions_high": high["sessions"],
            "cached_qps_low": low["cached_qps"],
            "cached_qps_high": high["cached_qps"],
            "scaling_ratio": scaling_ratio,
            "scaling_ok": scaling_ok,
            "load_generator": loadgen,
        },
        "auditor": audit,
    }
    if not args.no_write:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
