"""Benchmark: query-service throughput and auditor overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke

**Single-session throughput.**  One analyst asks ``q`` distinct queries
against an ``n``-bit Laplace server three ways: per-query *uncached* (every
ask draws noise and is charged), per-query *cached* (the same queries
re-asked — fingerprint + cache hit + audit-log append, no charge, no
noise), and *batched* via ``ask_workload`` (one vectorized mechanism call).
The cached path is asserted to clear **10,000 queries/sec** (the ISSUE
acceptance bar); cache hits are also asserted bit-identical to the first
release.

**Concurrent sessions.**  ``k in {1, 2, 4, 8, 16}`` analyst threads ask
their own query streams against one shared server (per-analyst caches,
locks, and noise streams; shared accountant and audit log).  Reported as
aggregate queries/sec for cached and uncached per-query asks.  Python
threads serialize the pure-Python hot path, so this measures lock overhead
honestly rather than advertising parallel speedup.

**Auditor overhead.**  The same attacker-style batched workload stream is
served with the reconstruction auditor disabled and enabled (audit pass
every ``n/8`` fresh queries); the slowdown is the price of online LP
replay, amortized per query.

**Baseline guard (full mode only).**  The kernel-delegated answering paths
must stay within ``GUARD_TOLERANCE`` of the recorded baselines: the
cached-replay and batched numbers in ``BENCH_service.json``, and the
batched-answering numbers in ``BENCH_reconstruction.json`` (replicated via
``bench_lp_reconstruction.bench_answering``, best of three passes).

Results are written to ``BENCH_service.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.queries.workload import Workload
from repro.service import (
    BasicAccountant,
    CircuitBreakerTripped,
    QueryServer,
    ReconstructionAuditor,
)
from repro.utils.rng import derive_rng

#: The ISSUE acceptance bar for the cached per-query path.
MIN_CACHED_QPS = 10_000.0

#: Allowed throughput regression against the recorded baselines (fraction).
GUARD_TOLERANCE = 0.10


def _make_server(n: int, seed: int, auditor: ReconstructionAuditor | None = None) -> QueryServer:
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    return QueryServer(
        data,
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": 0.25},
        accountant=BasicAccountant(),
        auditor=auditor,
        seed=seed,
    )


def bench_single_session(n: int, num_queries: int, seed: int) -> dict:
    """Uncached vs cached vs batched throughput for one analyst."""
    workload = Workload.random(n, num_queries, rng=derive_rng(seed, "bench-w", n))
    queries = list(workload)

    server = _make_server(n, seed)
    session = server.session("analyst")
    start = time.perf_counter()
    first = np.array([session.ask(query) for query in queries])
    uncached_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    replay = np.array([session.ask(query) for query in queries])
    cached_elapsed = time.perf_counter() - start
    assert np.array_equal(first, replay), "cache replay diverged from first release"
    assert session.queries_charged == num_queries, "cache hits must not be re-charged"

    batch_server = _make_server(n, seed)
    batch_session = batch_server.session("analyst")
    start = time.perf_counter()
    batched = batch_session.ask_workload(workload)
    batched_elapsed = time.perf_counter() - start
    # Same analyst name + seed => same noise stream: the batched answers
    # must be bit-identical to the per-query uncached pass.
    assert np.array_equal(batched, first), "batched answers diverged from per-query"

    cached_qps = num_queries / max(cached_elapsed, 1e-9)
    assert cached_qps >= MIN_CACHED_QPS, (
        f"cached throughput {cached_qps:,.0f} q/s below the {MIN_CACHED_QPS:,.0f} bar"
    )
    return {
        "n": n,
        "queries": num_queries,
        "uncached_qps": num_queries / max(uncached_elapsed, 1e-9),
        "cached_qps": cached_qps,
        "batched_qps": num_queries / max(batched_elapsed, 1e-9),
        "cache_hit_rate": session.cache.hit_rate,
    }


def bench_concurrent(n: int, per_session: int, sessions: int, seed: int) -> dict:
    """Aggregate throughput with ``sessions`` analyst threads on one server."""
    server = _make_server(n, seed)
    streams = []
    for index in range(sessions):
        workload = Workload.random(
            n, per_session, rng=derive_rng(seed, "bench-c", n, index)
        )
        streams.append((server.session(f"analyst-{index}"), list(workload)))

    def run_uncached(entry):
        session, queries = entry
        for query in queries:
            session.ask(query)

    def run_cached(entry):
        session, queries = entry
        for query in queries:
            session.ask(query)

    def timed(target) -> float:
        threads = [
            threading.Thread(target=target, args=(entry,)) for entry in streams
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    uncached_elapsed = timed(run_uncached)   # first pass: all misses
    cached_elapsed = timed(run_cached)       # second pass: all hits
    total = per_session * sessions
    return {
        "sessions": sessions,
        "n": n,
        "queries_total": total,
        "uncached_qps": total / max(uncached_elapsed, 1e-9),
        "cached_qps": total / max(cached_elapsed, 1e-9),
    }


def bench_auditor_overhead(n: int, seed: int) -> dict:
    """Batched attack stream with the auditor off vs on."""
    batches = [
        Workload.random(n, n // 8, rng=derive_rng(seed, "bench-audit", n, index))
        for index in range(12)
    ]

    plain = _make_server(n, seed)
    session = plain.session("attacker")
    start = time.perf_counter()
    for workload in batches:
        session.ask_workload(workload)
    plain_elapsed = time.perf_counter() - start

    auditor = ReconstructionAuditor(
        derive_rng(seed, "bench-data", n).integers(0, 2, size=n),
        agreement_threshold=1.0,  # never trip: measure full-stream overhead
        audit_every=n // 8,
        min_queries=n // 4,
        alpha=None,
    )
    audited = _make_server(n, seed, auditor=auditor)
    session = audited.session("attacker")
    start = time.perf_counter()
    try:
        for workload in batches:
            session.ask_workload(workload)
    except CircuitBreakerTripped:  # pragma: no cover - threshold 1.0
        pass
    audited_elapsed = time.perf_counter() - start

    total = sum(len(w) for w in batches)
    passes = len(auditor.reports)
    return {
        "n": n,
        "queries": total,
        "audit_passes": passes,
        "plain_qps": total / max(plain_elapsed, 1e-9),
        "audited_qps": total / max(audited_elapsed, 1e-9),
        "overhead_ratio": audited_elapsed / max(plain_elapsed, 1e-9),
        "lp_seconds_per_pass": (
            sum(r.elapsed_seconds for r in auditor.reports) / passes if passes else 0.0
        ),
    }


def _load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def guard_against_baselines(single: dict, repo_root: Path, seed: int) -> list[str]:
    """Assert the kernel-delegated answering paths hold the recorded numbers.

    Compares one-sidedly — a run may be faster than its baseline, but more
    than ``GUARD_TOLERANCE`` slower fails.  Each check that runs is
    reported; baselines that are missing or recorded at other sizes are
    skipped silently (there is nothing to regress against).
    """
    checks: list[str] = []

    service = _load_baseline(repo_root / "BENCH_service.json")
    if service and not service.get("smoke"):
        base = service.get("single_session", {})
        if base.get("n") == single["n"] and base.get("queries") == single["queries"]:
            for key in ("cached_qps", "batched_qps"):
                floor = base[key] * (1.0 - GUARD_TOLERANCE)
                assert single[key] >= floor, (
                    f"{key} regressed: {single[key]:,.0f} q/s < "
                    f"{floor:,.0f} q/s ({(1 - GUARD_TOLERANCE):.0%} of the "
                    f"recorded {base[key]:,.0f} q/s baseline)"
                )
                checks.append(
                    f"service {key}: {single[key]:,.0f} q/s >= {floor:,.0f} q/s"
                )

    reconstruction = _load_baseline(repo_root / "BENCH_reconstruction.json")
    if reconstruction and not reconstruction.get("smoke") and reconstruction.get("answering"):
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        try:
            from bench_lp_reconstruction import bench_answering
        finally:
            sys.path.pop(0)
        recon_seed = int(reconstruction.get("seed", seed))
        for entry in reconstruction["answering"]:
            n, m = int(entry["n"]), int(entry["m"])
            best = min(
                bench_answering(n, recon_seed)["batched_seconds"] for _ in range(3)
            )
            live_qps = m / max(best, 1e-9)
            base_qps = m / max(float(entry["batched_seconds"]), 1e-9)
            floor = base_qps * (1.0 - GUARD_TOLERANCE)
            assert live_qps >= floor, (
                f"batched answering at n={n} regressed: {live_qps:,.0f} q/s < "
                f"{floor:,.0f} q/s ({(1 - GUARD_TOLERANCE):.0%} of the "
                f"recorded {base_qps:,.0f} q/s baseline)"
            )
            checks.append(
                f"reconstruction answering n={n}: {live_qps:,.0f} q/s >= "
                f"{floor:,.0f} q/s"
            )
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sessions", type=int, nargs="+", default=None, help="concurrency levels"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the JSON file"
    )
    args = parser.parse_args(argv)

    n = 128 if args.smoke else 512
    num_queries = 2_000 if args.smoke else 8_000
    per_session = 250 if args.smoke else 1_000
    session_counts = args.sessions or ([1, 2, 4] if args.smoke else [1, 2, 4, 8, 16])

    single = bench_single_session(n, num_queries, args.seed)
    print(
        f"single session n={n}: uncached {single['uncached_qps']:,.0f} q/s, "
        f"cached {single['cached_qps']:,.0f} q/s, "
        f"batched {single['batched_qps']:,.0f} q/s",
        flush=True,
    )

    concurrent = []
    for count in session_counts:
        entry = bench_concurrent(n, per_session, count, args.seed)
        concurrent.append(entry)
        print(
            f"{count:>2} sessions: uncached {entry['uncached_qps']:,.0f} q/s, "
            f"cached {entry['cached_qps']:,.0f} q/s",
            flush=True,
        )

    audit = bench_auditor_overhead(n, args.seed)
    print(
        f"auditor: {audit['audit_passes']} passes, "
        f"{audit['overhead_ratio']:.2f}x stream slowdown, "
        f"{audit['lp_seconds_per_pass']:.3f}s per LP replay",
        flush=True,
    )

    guard_checks: list[str] = []
    if not args.smoke:
        repo_root = Path(__file__).resolve().parent.parent
        guard_checks = guard_against_baselines(single, repo_root, args.seed)
        for line in guard_checks:
            print(f"guard: {line}", flush=True)

    payload = {
        "benchmark": "service_throughput",
        "smoke": args.smoke,
        "seed": args.seed,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "min_cached_qps_bar": MIN_CACHED_QPS,
        "guard_tolerance": GUARD_TOLERANCE,
        "baseline_guard": guard_checks,
        "single_session": single,
        "concurrent": concurrent,
        "auditor": audit,
    }
    if not args.no_write:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
