"""Benchmark: query-service throughput, concurrent scaling, auditor overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --loadgen-only

**Single-session throughput.**  One analyst asks ``q`` distinct queries
against an ``n``-bit Laplace server three ways: per-query *uncached* (every
ask draws noise and is charged), per-query *cached* (the same queries
re-asked — fingerprint + cache hit + audit-log append, no charge, no
noise), and *batched* via ``ask_workload`` (one vectorized mechanism call).
Cached and batched passes take the best of ``--repeats`` runs (replay is
free and idempotent), which is what makes the numbers comparable across
noisy machines.  The cached path is asserted to clear **10,000
queries/sec** (the ISSUE acceptance bar); cache hits are also asserted
bit-identical to the first release.

**Concurrent sessions.**  ``k in {1, 2, 4, 8, 16}`` analyst threads ask
their own query streams against one :class:`ShardedQueryServer` (16
shards, per-shard striped caches and audit logs, one sharded accountant).
Python threads serialize the pure-Python hot path, so on one core this
measures lock-convoy overhead honestly: the sharded front end's gate is
that cached throughput at the highest session count is **no worse than at
one session** — adding sessions must not collapse the service the way a
single-lock front end does.

**Load generator.**  Closed-loop session churn: ``--loadgen-sessions``
distinct analysts (10^4 and 10^5 in full mode, 64 in smoke) each open a
session, ask a deterministic per-analyst query stream, and replay it for
cache hits, driven by worker threads over
:func:`repro.utils.parallel.parallel_map`.  This exercises the
registry/admission path at session counts the per-analyst-dict design has
to survive, and reports end-to-end sessions/sec (setup included).

**Uncached backend scaling.**  Noise-drawing traffic (every ask a fresh
query: fingerprint, charge, Laplace draw) at the highest session count,
served through each :class:`~repro.service.ExecutionBackend` — inline,
thread pool, fork-based process pool — with answers asserted bit-identical
across all three.  Full mode gates ``process > inline`` when the box has
more than one core; on a single core the fork hop is pure overhead and
the recorded ``cpu_count`` documents why the gate is waived.

**Auditor overhead.**  The same attacker-style batched workload stream is
served with the reconstruction auditor disabled and enabled (audit pass
every ``n/8`` fresh queries); the slowdown is the price of online LP
replay, amortized per query.  A second measurement replays an exact
transcript through the l2-screened auditor cold vs warm-started
(``warm_start_passes=True``): a stored solution that still certifies the
grown transcript costs one matvec instead of a solve.  A third serves the
audited stream with ``audit_dispatch="background"`` — passes on
:class:`~repro.service.AuditWorkerPool` workers, the hot path paying only
an append plus a queue signal — and full mode asserts the serving
overhead stays under the 2x ROADMAP target (``--loadgen-audit`` runs the
load generator against the same background-audited server).

**Compliance gate.**  The release-approval gate
(:class:`repro.compliance.gate.ComplianceGate`) runs at mechanism-spec
registration, never per query, so a gated server's cached hot path must
cost the same as an ungated one's — both are measured on identical replay
streams, and full mode asserts the gated number stays within
``GUARD_TOLERANCE`` of the recorded ungated ``cached_qps`` baseline.  The
post-approval check itself (``gate.require``: one release fingerprint plus
one dict lookup) is timed standalone, alongside the one-time offline
certification cost it amortizes.

**Baseline guard (full mode only).**  The kernel-delegated answering paths
must stay within ``GUARD_TOLERANCE`` of the recorded baselines: the
cached-replay and batched numbers in ``BENCH_service.json``, the
16-session concurrent cached number, and the batched-answering numbers in
``BENCH_reconstruction.json`` (replicated via
``bench_lp_reconstruction.bench_answering``, best of three passes).

Results are written to ``BENCH_service.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.compliance import (
    ComplianceGate,
    CompliancePipeline,
    DpClaimVerifier,
    Policy,
)
from repro.queries.mechanism import LaplaceAnswerer
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    BasicAccountant,
    CircuitBreakerTripped,
    QueryServer,
    ReconstructionAuditor,
    ShardedQueryServer,
)
from repro.utils.parallel import chunk_indices, parallel_map
from repro.utils.rng import derive_rng

#: The ISSUE acceptance bar for the cached per-query path.
MIN_CACHED_QPS = 10_000.0

#: Allowed throughput regression against the recorded baselines (fraction).
GUARD_TOLERANCE = 0.10

#: Shard count of the concurrent front end under test.
SHARDS = 16

#: ROADMAP target for background auditing: serving an audited stream may
#: cost at most this factor over the un-audited stream.
MAX_BACKGROUND_AUDIT_OVERHEAD = 2.0


def _make_server(
    n: int,
    seed: int,
    auditor: ReconstructionAuditor | None = None,
    audit_dispatch: str | None = None,
) -> QueryServer:
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    return QueryServer(
        data,
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": 0.25},
        accountant=BasicAccountant(),
        auditor=auditor,
        seed=seed,
        audit_dispatch=audit_dispatch,
    )


def _make_sharded(
    n: int,
    seed: int,
    execution: str | None = None,
    auditor: ReconstructionAuditor | None = None,
    audit_dispatch: str | None = None,
) -> ShardedQueryServer:
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    return ShardedQueryServer(
        data,
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": 0.25},
        seed=seed,
        shards=SHARDS,
        execution=execution,
        auditor=auditor,
        audit_dispatch=audit_dispatch,
    )


def bench_single_session(n: int, num_queries: int, seed: int, repeats: int = 3) -> dict:
    """Uncached vs cached vs batched throughput for one analyst."""
    workload = Workload.random(n, num_queries, rng=derive_rng(seed, "bench-w", n))
    queries = list(workload)

    server = _make_server(n, seed)
    session = server.session("analyst")
    start = time.perf_counter()
    first = np.array([session.ask(query) for query in queries])
    uncached_elapsed = time.perf_counter() - start

    cached_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        replay = np.array([session.ask(query) for query in queries])
        cached_elapsed = min(cached_elapsed, time.perf_counter() - start)
        assert np.array_equal(first, replay), "cache replay diverged from first release"
    assert session.queries_charged == num_queries, "cache hits must not be re-charged"

    batched_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        batch_session = _make_server(n, seed).session("analyst")
        start = time.perf_counter()
        batched = batch_session.ask_workload(workload)
        batched_elapsed = min(batched_elapsed, time.perf_counter() - start)
        # Same analyst name + seed => same noise stream: the batched answers
        # must be bit-identical to the per-query uncached pass.
        assert np.array_equal(batched, first), "batched answers diverged from per-query"

    cached_qps = num_queries / max(cached_elapsed, 1e-9)
    assert cached_qps >= MIN_CACHED_QPS, (
        f"cached throughput {cached_qps:,.0f} q/s below the {MIN_CACHED_QPS:,.0f} bar"
    )
    return {
        "n": n,
        "queries": num_queries,
        "uncached_qps": num_queries / max(uncached_elapsed, 1e-9),
        "cached_qps": cached_qps,
        "batched_qps": num_queries / max(batched_elapsed, 1e-9),
        "cache_hit_rate": session.cache.hit_rate,
    }


def bench_compliance_gate(n: int, num_queries: int, seed: int, repeats: int = 3) -> dict:
    """Gate overhead on the cached hot path + the O(1) post-approval check.

    Certifies the exact Laplace spec the server charges (offline, timed
    once), opens gated and ungated servers over the same data/seed, replays
    one identical query stream through both caches (best of ``repeats``),
    and times ``gate.require`` standalone.  The gate runs at registration
    only, so the two cached numbers must be statistically identical.
    """
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    policy = Policy(name="bench-service", dp_trials=300)
    spec = LaplaceAnswerer(data, 0.25).spec
    pipeline = CompliancePipeline([DpClaimVerifier()], policy, seed=seed)
    start = time.perf_counter()
    certificate = pipeline.certify(spec, data=data, subject="mechanism-spec")
    certify_seconds = time.perf_counter() - start
    assert certificate.approved, "the benchmark spec must certify cleanly"
    gate = ComplianceGate(policy)
    gate.approve(certificate, spec)

    workload = Workload.random(n, num_queries, rng=derive_rng(seed, "bench-w", n))
    queries = list(workload)

    def cached_replay(compliance: ComplianceGate | None) -> float:
        server = QueryServer(
            data,
            mechanism="laplace",
            mechanism_params={"epsilon_per_query": 0.25},
            accountant=BasicAccountant(),
            seed=seed,
            compliance=compliance,
        )
        session = server.session("analyst")
        for query in queries:  # populate the cache
            session.ask(query)
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for query in queries:
                session.ask(query)
            best = min(best, time.perf_counter() - start)
        return num_queries / max(best, 1e-9)

    gated_qps = cached_replay(gate)
    ungated_qps = cached_replay(None)

    require_calls = 10_000
    start = time.perf_counter()
    for _ in range(require_calls):
        gate.require(spec, subject="mechanism-spec")
    require_elapsed = time.perf_counter() - start

    return {
        "n": n,
        "queries": num_queries,
        "gated_cached_qps": gated_qps,
        "ungated_cached_qps": ungated_qps,
        "gate_overhead_ratio": ungated_qps / max(gated_qps, 1e-9),
        "certify_seconds": certify_seconds,
        "require_calls": require_calls,
        "require_seconds_per_call": require_elapsed / require_calls,
    }


def bench_telemetry(n: int, num_queries: int, seed: int, repeats: int = 3) -> dict:
    """Telemetry overhead on the cached hot path, inside the guard band.

    Two servers over the same data and seed — one with an isolated
    :class:`~repro.telemetry.Telemetry` (the ``REPRO_TELEMETRY=1``
    configuration, minus the shared default registry), one with telemetry
    off — replay one identical query stream through their caches.  The
    timed passes are interleaved (instrumented, off, instrumented, ...)
    and each side keeps its best of ``repeats``, so machine-load jitter
    hits both configurations symmetrically.  Replayed answers are
    asserted bit-identical (telemetry is a pure observer) and the
    instrumented cached throughput must stay within ``GUARD_TOLERANCE``
    of the uninstrumented number: the fused hit path budgets one clock
    read and a counter bump per hit, with the full histogram record
    latency-sampled every 8th hit.
    """
    from repro.telemetry import Telemetry, to_prometheus

    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)
    workload = Workload.random(n, num_queries, rng=derive_rng(seed, "bench-w", n))
    queries = list(workload)

    def make_session(telemetry):
        server = QueryServer(
            data,
            mechanism="laplace",
            mechanism_params={"epsilon_per_query": 0.25},
            accountant=BasicAccountant(),
            seed=seed,
            telemetry=telemetry,
        )
        session = server.session("analyst")
        answers = np.array([session.ask(query) for query in queries])
        return session, answers

    def timed_pass(session) -> float:
        start = time.perf_counter()
        for query in queries:
            session.ask(query)
        return time.perf_counter() - start

    telemetry = Telemetry()
    instrumented_session, instrumented_answers = make_session(telemetry)
    off_session, off_answers = make_session(False)
    assert np.array_equal(instrumented_answers, off_answers), (
        "telemetry changed served answers"
    )
    # Interleave the timed passes so a load spike or frequency shift hits
    # both servers symmetrically: an A-block-then-B-block layout turns any
    # mid-bench slowdown into a phantom overhead (or phantom speedup).
    instrumented_best = off_best = float("inf")
    for _ in range(max(1, repeats)):
        instrumented_best = min(instrumented_best, timed_pass(instrumented_session))
        off_best = min(off_best, timed_pass(off_session))
    instrumented_qps = num_queries / max(instrumented_best, 1e-9)
    off_qps = num_queries / max(off_best, 1e-9)
    snap = telemetry.snapshot()
    hit_point = snap.histogram_point(
        "repro_serve_stage_seconds",
        stage="cache_hit_fastpath",
        shard="0",
        mechanism="laplace",
    )
    assert hit_point is not None and hit_point.count > 0, (
        "instrumented replay recorded no fast-path samples"
    )
    assert to_prometheus(snap), "snapshot rendered empty"
    return {
        "n": n,
        "queries": num_queries,
        "telemetry_cached_qps": instrumented_qps,
        "off_cached_qps": off_qps,
        "overhead_ratio": off_qps / max(instrumented_qps, 1e-9),
        "fastpath_samples": hit_point.count,
        "fastpath_mean_seconds": hit_point.sum / max(hit_point.count, 1),
    }


def bench_concurrent(
    n: int, per_session: int, sessions: int, seed: int, repeats: int = 3
) -> dict:
    """Aggregate throughput with ``sessions`` threads on one sharded server."""
    server = _make_sharded(n, seed)
    streams = []
    for index in range(sessions):
        workload = Workload.random(
            n, per_session, rng=derive_rng(seed, "bench-c", n, index)
        )
        streams.append((server.session(f"analyst-{index}"), list(workload)))

    def run(entry):
        session, queries = entry
        for query in queries:
            session.ask(query)

    def timed() -> float:
        threads = [threading.Thread(target=run, args=(entry,)) for entry in streams]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    uncached_elapsed = timed()  # first pass: all misses
    cached_elapsed = min(timed() for _ in range(max(1, repeats)))  # all hits
    total = per_session * sessions
    return {
        "sessions": sessions,
        "n": n,
        "queries_total": total,
        "uncached_qps": total / max(uncached_elapsed, 1e-9),
        "cached_qps": total / max(cached_elapsed, 1e-9),
    }


def bench_uncached_scaling(
    n: int, per_session: int, sessions: int, seed: int
) -> dict:
    """Noise-drawing traffic at ``sessions`` threads, per execution backend.

    Every ask is a distinct query — fingerprint, budget charge, a fresh
    Laplace draw — so this measures the Execute stage itself, not the
    cache.  The same stream is served three ways: ``inline`` (the serving
    thread draws the noise under the analyst lock), ``thread`` (the draw
    runs on a shared worker pool), and ``process`` (the draw crosses a
    fork-pool with the analyst's RNG state and comes back bit-identical).
    On a single-core box the process hop is pure overhead and the recorded
    ``cpu_count`` says so honestly; with real parallelism the fork pool is
    the only backend that escapes the GIL on the mechanism call.
    """
    import os

    streams = [
        list(Workload.random(n, per_session, rng=derive_rng(seed, "bench-x", n, i)))
        for i in range(sessions)
    ]

    results = {}
    reference = None
    for backend in ("inline", "thread", "process"):
        server = _make_sharded(n, seed, execution=backend)
        entries = [
            (server.session(f"analyst-{index}"), stream)
            for index, stream in enumerate(streams)
        ]
        answers: list[list[float]] = [[] for _ in range(sessions)]

        def run(index, entry=None):
            session, queries = entry
            answers[index].extend(session.ask(query) for query in queries)

        threads = [
            threading.Thread(target=run, args=(index,), kwargs={"entry": entry})
            for index, entry in enumerate(entries)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        server.close()
        if reference is None:
            reference = answers
        else:
            assert answers == reference, f"{backend} diverged from inline answers"
        results[backend] = (per_session * sessions) / max(elapsed, 1e-9)

    return {
        "n": n,
        "sessions": sessions,
        "queries_total": per_session * sessions,
        "cpu_count": os.cpu_count(),
        "inline_qps": results["inline"],
        "thread_qps": results["thread"],
        "process_qps": results["process"],
        "process_vs_inline": results["process"] / max(results["inline"], 1e-9),
    }


def bench_load_generator(
    n: int,
    total_sessions: int,
    queries_per_session: int,
    seed: int,
    workers: int = 8,
    audit: bool = False,
) -> dict:
    """Closed-loop session churn: many short-lived analysts, few workers.

    Each analyst asks ``queries_per_session // 2`` distinct queries from
    its own deterministic stream, then replays them (cache hits), so the
    aggregate hit rate is 0.5 by construction.  Workers drain contiguous
    session ranges via the thread backend of ``parallel_map`` — a
    closed-loop load generator, not an open-loop arrival process: each
    worker starts the next session only when the previous one finishes.

    With ``audit=True`` the sharded server runs a reconstruction auditor
    behind :class:`~repro.service.AuditWorkerPool` background workers
    (never-trip threshold, small pass interval), so the run exercises the
    full serve-then-audit machinery under session churn; the pool is
    flushed and closed before reporting, and pass/error counts land in
    the result.
    """
    auditor = None
    if audit:
        auditor = ReconstructionAuditor(
            derive_rng(seed, "bench-data", n).integers(0, 2, size=n),
            agreement_threshold=1.0,  # never trip: the load must all serve
            audit_every=max(1, queries_per_session // 2),
            min_queries=max(1, queries_per_session // 2),
            alpha=None,
            screen="l2",
        )
    server = _make_sharded(
        n,
        seed,
        auditor=auditor,
        audit_dispatch="background" if audit else None,
    )
    distinct = max(1, queries_per_session // 2)

    def run_range(indices) -> int:
        served = 0
        for index in indices:
            session = server.session(f"load-{index}")
            rng = derive_rng(seed, "bench-load", n, index)
            queries = [SubsetQuery(rng.random(n) < 0.5) for _ in range(distinct)]
            for query in queries:
                session.ask(query)
            for query in queries:  # replay: served from cache, charged nothing
                session.ask(query)
            served += 2 * len(queries)
        return served

    ranges = chunk_indices(total_sessions, workers)
    start = time.perf_counter()
    served = sum(parallel_map(run_range, ranges, jobs=workers, backend="thread"))
    elapsed = time.perf_counter() - start

    audit_stats = None
    if audit:
        drained = server.audit_dispatch.flush(timeout=300.0)
        server.close()
        audit_stats = {
            "drained": drained,
            "audit_passes": len(auditor.reports),
            "audit_errors": len(getattr(server.audit_dispatch, "errors", ())),
            "analysts_flagged": sum(
                auditor.is_tripped(f"load-{i}") for i in range(total_sessions)
            ),
        }
        assert drained, "background audit pool failed to drain"
        assert audit_stats["audit_errors"] == 0, "background audit passes errored"
        assert audit_stats["analysts_flagged"] == 0, "never-trip auditor flagged"

    shard_caches = [server.shard_cache(i) for i in range(SHARDS)]
    hits = sum(cache.hits for cache in shard_caches)
    misses = sum(cache.misses for cache in shard_caches)
    result = {
        "sessions": total_sessions,
        "workers": workers,
        "queries_per_session": 2 * distinct,
        "queries_total": served,
        "elapsed_seconds": elapsed,
        "sessions_per_second": total_sessions / max(elapsed, 1e-9),
        "qps": served / max(elapsed, 1e-9),
        "cache_hit_rate": hits / max(hits + misses, 1),
        "rejections": server.rejections,
    }
    if audit_stats is not None:
        result["background_audit"] = audit_stats
    return result


def bench_auditor_overhead(n: int, seed: int) -> dict:
    """Batched attack stream with the auditor off vs on."""
    batches = [
        Workload.random(n, n // 8, rng=derive_rng(seed, "bench-audit", n, index))
        for index in range(12)
    ]

    plain = _make_server(n, seed)
    session = plain.session("attacker")
    start = time.perf_counter()
    for workload in batches:
        session.ask_workload(workload)
    plain_elapsed = time.perf_counter() - start

    auditor = ReconstructionAuditor(
        derive_rng(seed, "bench-data", n).integers(0, 2, size=n),
        agreement_threshold=1.0,  # never trip: measure full-stream overhead
        audit_every=n // 8,
        min_queries=n // 4,
        alpha=None,
    )
    audited = _make_server(n, seed, auditor=auditor)
    session = audited.session("attacker")
    start = time.perf_counter()
    try:
        for workload in batches:
            session.ask_workload(workload)
    except CircuitBreakerTripped:  # pragma: no cover - threshold 1.0
        pass
    audited_elapsed = time.perf_counter() - start

    total = sum(len(w) for w in batches)
    passes = len(auditor.reports)
    return {
        "n": n,
        "queries": total,
        "audit_passes": passes,
        "plain_qps": total / max(plain_elapsed, 1e-9),
        "audited_qps": total / max(audited_elapsed, 1e-9),
        "overhead_ratio": audited_elapsed / max(plain_elapsed, 1e-9),
        "lp_seconds_per_pass": (
            sum(r.elapsed_seconds for r in auditor.reports) / passes if passes else 0.0
        ),
    }


def bench_background_audit(n: int, seed: int, repeats: int = 3) -> dict:
    """Serving cost of auditing when the passes run on background workers.

    The inline number above (``auditor.overhead_ratio``) charges every LP
    replay to the serving thread — two orders of magnitude at full size.
    Here the same never-trip audited stream is served with
    ``audit_dispatch="background"``: the hot path pays only the audit-log
    append plus a queue signal, and the l2-screened, warm-started passes
    run on :class:`~repro.service.AuditWorkerPool` workers.  The serving
    loop is timed on its own (that is the QPS an analyst sees), the drain
    of the remaining passes separately.  The ROADMAP target is
    ``overhead_ratio < 2`` — audited serving at worst half the un-audited
    throughput — which is also asserted in full runs.
    """
    batches = [
        Workload.random(n, n // 8, rng=derive_rng(seed, "bench-audit", n, index))
        for index in range(12)
    ]
    total = sum(len(w) for w in batches)

    # Fresh servers per repeat (serving fresh queries is not idempotent);
    # best-of keeps the number stable against scheduler jitter, the same
    # convention as the cached passes above.
    plain_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        session = _make_server(n, seed).session("attacker")
        start = time.perf_counter()
        for workload in batches:
            session.ask_workload(workload)
        plain_elapsed = min(plain_elapsed, time.perf_counter() - start)

    audited_elapsed = float("inf")
    drain_elapsed = passes = 0
    for _ in range(max(1, repeats)):
        auditor = ReconstructionAuditor(
            derive_rng(seed, "bench-data", n).integers(0, 2, size=n),
            agreement_threshold=1.0,  # never trip: measure full-stream cost
            audit_every=n // 8,
            min_queries=n // 4,
            alpha=None,
            screen="l2",
            warm_start_passes=True,
        )
        audited = _make_server(n, seed, auditor=auditor, audit_dispatch="background")
        session = audited.session("attacker")
        start = time.perf_counter()
        for workload in batches:
            session.ask_workload(workload)
        elapsed = time.perf_counter() - start
        start = time.perf_counter()
        drained = audited.audit_dispatch.flush(timeout=600.0)
        audited.close()
        assert drained, "background audit pool failed to drain"
        if elapsed < audited_elapsed:
            audited_elapsed = elapsed
            drain_elapsed = time.perf_counter() - start
            passes = len(auditor.reports)

    overhead = audited_elapsed / max(plain_elapsed, 1e-9)
    return {
        "n": n,
        "queries": total,
        "audit_passes": passes,
        "plain_qps": total / max(plain_elapsed, 1e-9),
        "audited_qps": total / max(audited_elapsed, 1e-9),
        "overhead_ratio": overhead,
        "overhead_target": MAX_BACKGROUND_AUDIT_OVERHEAD,
        "drain_seconds": drain_elapsed,
        "meets_target": overhead < MAX_BACKGROUND_AUDIT_OVERHEAD,
    }


def bench_auditor_warm_start(n: int, seed: int, passes: int = 4) -> dict:
    """Periodic re-audit cost over a fixed transcript, cold vs warm-started.

    This is the steady-state regime of a background auditing sweep: the
    analyst's transcript is unchanged (or barely grown) between passes, so
    the previous pass's solution is already (near-)optimal for the next
    one.  Cold, every l2-screened pass re-solves from the center of the
    cube; warm, the solver starts at the stored solution and converges
    immediately.  The first warm pass still solves (there is nothing
    stored yet), so the steady-state number averages the passes after it.
    Verdicts are identical by construction — warm starts change where the
    solver *starts*, never what it accepts.
    """
    server = _make_server(n, seed)
    session = server.session("attacker")
    workload = Workload.random(n, int(1.5 * n), rng=derive_rng(seed, "bench-warm", n))
    session.ask_workload(workload)
    log = server.audit_log
    data = derive_rng(seed, "bench-data", n).integers(0, 2, size=n)

    def replay(warm: bool) -> tuple[list[float], tuple]:
        auditor = ReconstructionAuditor(
            data,
            agreement_threshold=1.0,
            audit_every=n // 8,
            min_queries=n // 4,
            alpha=None,
            screen="l2",
            screen_margin=0.0,  # stay in the l2 screen: no LP escalation
            warm_start_passes=warm,
        )
        reports = [auditor.audit(log, "attacker") for _ in range(passes)]
        times = [r.elapsed_seconds for r in reports]
        return times, tuple((r.agreement, r.flagged) for r in reports)

    cold_times, cold_verdicts = replay(warm=False)
    warm_times, warm_verdicts = replay(warm=True)
    assert warm_verdicts == cold_verdicts, "warm starts must not change verdicts"
    cold_seconds = sum(cold_times) / len(cold_times)
    warm_seconds = sum(warm_times[1:]) / max(len(warm_times) - 1, 1)
    return {
        "n": n,
        "transcript_queries": len(workload),
        "audit_passes": passes,
        "cold_seconds_per_pass": cold_seconds,
        "warm_first_pass_seconds": warm_times[0],
        "warm_seconds_per_pass": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
    }


def _load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def guard_against_baselines(
    single: dict,
    concurrent: list[dict],
    repo_root: Path,
    seed: int,
    compliance: dict | None = None,
    uncached_scaling: dict | None = None,
    background: dict | None = None,
) -> list[str]:
    """Assert the kernel-delegated answering paths hold the recorded numbers.

    Compares one-sidedly — a run may be faster than its baseline, but more
    than ``GUARD_TOLERANCE`` slower fails.  Each check that runs is
    reported; baselines that are missing or recorded at other sizes are
    skipped silently (there is nothing to regress against).
    """
    checks: list[str] = []

    service = _load_baseline(repo_root / "BENCH_service.json")
    if service and not service.get("smoke"):
        base = service.get("single_session", {})
        if base.get("n") == single["n"] and base.get("queries") == single["queries"]:
            for key in ("cached_qps", "batched_qps"):
                floor = base[key] * (1.0 - GUARD_TOLERANCE)
                assert single[key] >= floor, (
                    f"{key} regressed: {single[key]:,.0f} q/s < "
                    f"{floor:,.0f} q/s ({(1 - GUARD_TOLERANCE):.0%} of the "
                    f"recorded {base[key]:,.0f} q/s baseline)"
                )
                checks.append(
                    f"service {key}: {single[key]:,.0f} q/s >= {floor:,.0f} q/s"
                )
        # Compliance guard: the gate runs at registration only, so the
        # gated cached hot path must hold the committed ungated baseline.
        if (
            compliance is not None
            and base.get("n") == compliance["n"]
            and base.get("queries") == compliance["queries"]
        ):
            floor = base["cached_qps"] * (1.0 - GUARD_TOLERANCE)
            assert compliance["gated_cached_qps"] >= floor, (
                f"gated cached_qps regressed: "
                f"{compliance['gated_cached_qps']:,.0f} q/s < {floor:,.0f} q/s "
                f"({(1 - GUARD_TOLERANCE):.0%} of the recorded ungated "
                f"{base['cached_qps']:,.0f} q/s baseline)"
            )
            checks.append(
                f"compliance gated_cached_qps: "
                f"{compliance['gated_cached_qps']:,.0f} q/s >= {floor:,.0f} q/s"
            )
        # Concurrent guard: only against baselines recorded for the sharded
        # front end (older files recorded the single-lock server; skip those).
        scaling = service.get("concurrent_scaling", {})
        base_concurrent = {
            entry.get("sessions"): entry for entry in service.get("concurrent", [])
        }
        if scaling.get("server", "").startswith("ShardedQueryServer"):
            for live in concurrent:
                base = base_concurrent.get(live["sessions"])
                if not base or base.get("n") != live["n"]:
                    continue
                floor = base["cached_qps"] * (1.0 - GUARD_TOLERANCE)
                assert live["cached_qps"] >= floor, (
                    f"concurrent cached_qps at {live['sessions']} sessions "
                    f"regressed: {live['cached_qps']:,.0f} q/s < {floor:,.0f} q/s "
                    f"({(1 - GUARD_TOLERANCE):.0%} of the recorded "
                    f"{base['cached_qps']:,.0f} q/s baseline)"
                )
                checks.append(
                    f"concurrent cached_qps @{live['sessions']}: "
                    f"{live['cached_qps']:,.0f} q/s >= {floor:,.0f} q/s"
                )

        # Execution-backend guard: the inline backend on noise-drawing
        # traffic is the reference path every other backend must match
        # bit-for-bit, so it is the one whose throughput is pinned.
        base = service.get("uncached_scaling", {})
        if (
            uncached_scaling is not None
            and base.get("n") == uncached_scaling["n"]
            and base.get("sessions") == uncached_scaling["sessions"]
        ):
            floor = base["inline_qps"] * (1.0 - GUARD_TOLERANCE)
            assert uncached_scaling["inline_qps"] >= floor, (
                f"uncached inline_qps regressed: "
                f"{uncached_scaling['inline_qps']:,.0f} q/s < {floor:,.0f} q/s "
                f"({(1 - GUARD_TOLERANCE):.0%} of the recorded "
                f"{base['inline_qps']:,.0f} q/s baseline)"
            )
            checks.append(
                f"uncached inline_qps @{uncached_scaling['sessions']}: "
                f"{uncached_scaling['inline_qps']:,.0f} q/s >= {floor:,.0f} q/s"
            )
        # Background-audit guard: audited serving throughput holds its
        # recorded number (the <2x target itself is asserted in main()).
        base = service.get("auditor", {}).get("background", {})
        if background is not None and base.get("n") == background["n"]:
            floor = base["audited_qps"] * (1.0 - GUARD_TOLERANCE)
            assert background["audited_qps"] >= floor, (
                f"background audited_qps regressed: "
                f"{background['audited_qps']:,.0f} q/s < {floor:,.0f} q/s "
                f"({(1 - GUARD_TOLERANCE):.0%} of the recorded "
                f"{base['audited_qps']:,.0f} q/s baseline)"
            )
            checks.append(
                f"background audited_qps: {background['audited_qps']:,.0f} q/s "
                f">= {floor:,.0f} q/s"
            )

    reconstruction = _load_baseline(repo_root / "BENCH_reconstruction.json")
    if reconstruction and not reconstruction.get("smoke") and reconstruction.get("answering"):
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        try:
            from bench_lp_reconstruction import bench_answering
        finally:
            sys.path.pop(0)
        recon_seed = int(reconstruction.get("seed", seed))
        for entry in reconstruction["answering"]:
            n, m = int(entry["n"]), int(entry["m"])
            best = min(
                bench_answering(n, recon_seed)["batched_seconds"] for _ in range(3)
            )
            live_qps = m / max(best, 1e-9)
            base_qps = m / max(float(entry["batched_seconds"]), 1e-9)
            floor = base_qps * (1.0 - GUARD_TOLERANCE)
            assert live_qps >= floor, (
                f"batched answering at n={n} regressed: {live_qps:,.0f} q/s < "
                f"{floor:,.0f} q/s ({(1 - GUARD_TOLERANCE):.0%} of the "
                f"recorded {base_qps:,.0f} q/s baseline)"
            )
            checks.append(
                f"reconstruction answering n={n}: {live_qps:,.0f} q/s >= "
                f"{floor:,.0f} q/s"
            )
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sessions", type=int, nargs="+", default=None, help="concurrency levels"
    )
    parser.add_argument(
        "--loadgen-sessions",
        type=int,
        nargs="+",
        default=None,
        help="load-generator session counts",
    )
    parser.add_argument(
        "--loadgen-only",
        action="store_true",
        help="run only the load generator (skip everything else; implies --no-write)",
    )
    parser.add_argument(
        "--loadgen-audit",
        action="store_true",
        help="run the load generator with background auditor workers enabled",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="best-of repeats for cached passes (5: a single-core box needs a "
        "deeper best-of to de-noise the short cached windows)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the JSON file"
    )
    args = parser.parse_args(argv)

    n = 128 if args.smoke else 512
    num_queries = 2_000 if args.smoke else 8_000
    per_session = 250 if args.smoke else 1_000
    session_counts = args.sessions or ([1, 2, 4] if args.smoke else [1, 2, 4, 8, 16])
    loadgen_counts = args.loadgen_sessions or (
        [64] if args.smoke else [10_000, 100_000]
    )

    loadgen = []
    for count in loadgen_counts:
        entry = bench_load_generator(n, count, 8, args.seed, audit=args.loadgen_audit)
        loadgen.append(entry)
        audited = ""
        if "background_audit" in entry:
            stats = entry["background_audit"]
            audited = (
                f", {stats['audit_passes']} background audit passes, "
                f"{stats['audit_errors']} errors"
            )
        print(
            f"load generator: {count:,} sessions in {entry['elapsed_seconds']:.1f}s "
            f"({entry['sessions_per_second']:,.0f} sessions/s, "
            f"{entry['qps']:,.0f} q/s end-to-end{audited})",
            flush=True,
        )
    if args.loadgen_only:
        return 0

    single = bench_single_session(n, num_queries, args.seed, repeats=args.repeats)
    print(
        f"single session n={n}: uncached {single['uncached_qps']:,.0f} q/s, "
        f"cached {single['cached_qps']:,.0f} q/s, "
        f"batched {single['batched_qps']:,.0f} q/s",
        flush=True,
    )

    compliance = bench_compliance_gate(n, num_queries, args.seed, repeats=args.repeats)
    print(
        f"compliance gate n={n}: gated cached {compliance['gated_cached_qps']:,.0f} q/s "
        f"vs ungated {compliance['ungated_cached_qps']:,.0f} q/s "
        f"({compliance['gate_overhead_ratio']:.2f}x), "
        f"require() {compliance['require_seconds_per_call'] * 1e6:.1f}us/call, "
        f"certify {compliance['certify_seconds']:.2f}s once",
        flush=True,
    )

    telemetry = bench_telemetry(n, num_queries, args.seed, repeats=args.repeats)
    print(
        f"telemetry n={n}: instrumented cached "
        f"{telemetry['telemetry_cached_qps']:,.0f} q/s vs off "
        f"{telemetry['off_cached_qps']:,.0f} q/s "
        f"({telemetry['overhead_ratio']:.3f}x, fast path "
        f"{telemetry['fastpath_mean_seconds'] * 1e9:.0f}ns/sample)",
        flush=True,
    )
    if not args.smoke:
        # The ISSUE gate: telemetry must cost the cached hot path no more
        # than the same guard band we allow for run-to-run jitter.
        assert telemetry["overhead_ratio"] <= 1.0 + GUARD_TOLERANCE, (
            f"telemetry slowed the cached path "
            f"{telemetry['overhead_ratio']:.3f}x "
            f"(> {1.0 + GUARD_TOLERANCE:.2f}x guard band): "
            f"{telemetry['telemetry_cached_qps']:,.0f} q/s instrumented vs "
            f"{telemetry['off_cached_qps']:,.0f} q/s off"
        )

    concurrent = []
    for count in session_counts:
        entry = bench_concurrent(n, per_session, count, args.seed, repeats=args.repeats)
        concurrent.append(entry)
        print(
            f"{count:>2} sessions: uncached {entry['uncached_qps']:,.0f} q/s, "
            f"cached {entry['cached_qps']:,.0f} q/s",
            flush=True,
        )
    low, high = concurrent[0], concurrent[-1]
    scaling_ratio = high["cached_qps"] / max(low["cached_qps"], 1e-9)
    # "Must not collapse" with the same jitter tolerance as the committed
    # baselines: on a loaded box the cached path wobbles a few percent
    # run-to-run, which is noise, not a scaling regression.
    scaling_ok = high["cached_qps"] >= low["cached_qps"] * (1.0 - GUARD_TOLERANCE)
    print(
        f"scaling: cached @{high['sessions']} sessions is {scaling_ratio:.2f}x "
        f"@{low['sessions']} session{'s' if low['sessions'] > 1 else ''}",
        flush=True,
    )
    if not args.smoke:
        # The ISSUE gate: adding sessions must not collapse the sharded
        # front end's cached throughput below its single-session number.
        assert scaling_ok, (
            f"cached throughput fell from {low['cached_qps']:,.0f} q/s at "
            f"{low['sessions']} session(s) to {high['cached_qps']:,.0f} q/s "
            f"at {high['sessions']} sessions"
        )

    scaling_sessions = session_counts[-1]
    uncached_scaling = bench_uncached_scaling(
        n, per_session, scaling_sessions, args.seed
    )
    print(
        f"uncached @{scaling_sessions} sessions: "
        f"inline {uncached_scaling['inline_qps']:,.0f} q/s, "
        f"thread {uncached_scaling['thread_qps']:,.0f} q/s, "
        f"process {uncached_scaling['process_qps']:,.0f} q/s "
        f"({uncached_scaling['process_vs_inline']:.2f}x inline, "
        f"{uncached_scaling['cpu_count']} cpu)",
        flush=True,
    )
    if not args.smoke and (uncached_scaling["cpu_count"] or 1) > 1:
        # With real cores the fork pool is the only backend that escapes the
        # GIL on the mechanism call; on one core the hop is pure overhead
        # and the recorded cpu_count documents why the gate is waived.
        assert uncached_scaling["process_qps"] > uncached_scaling["inline_qps"], (
            f"process backend ({uncached_scaling['process_qps']:,.0f} q/s) "
            f"did not beat inline ({uncached_scaling['inline_qps']:,.0f} q/s) "
            f"at {scaling_sessions} sessions on "
            f"{uncached_scaling['cpu_count']} cpus"
        )

    audit = bench_auditor_overhead(n, args.seed)
    print(
        f"auditor: {audit['audit_passes']} passes, "
        f"{audit['overhead_ratio']:.2f}x stream slowdown, "
        f"{audit['lp_seconds_per_pass']:.3f}s per LP replay",
        flush=True,
    )
    background = bench_background_audit(n, args.seed)
    audit["background"] = background
    print(
        f"auditor background: {background['audit_passes']} passes off the hot "
        f"path, {background['overhead_ratio']:.2f}x serving slowdown "
        f"(target < {background['overhead_target']:.0f}x), "
        f"drain {background['drain_seconds']:.2f}s",
        flush=True,
    )
    if not args.smoke:
        # The ROADMAP gate: background auditing must keep the serving path
        # within 2x of the un-audited stream.
        assert background["meets_target"], (
            f"background-audited serving overhead "
            f"{background['overhead_ratio']:.2f}x breaches the "
            f"{background['overhead_target']:.0f}x ROADMAP target"
        )
    warm = bench_auditor_warm_start(n, args.seed)
    audit["warm_start"] = warm
    print(
        f"auditor warm start: {warm['cold_seconds_per_pass']:.4f}s cold vs "
        f"{warm['warm_seconds_per_pass']:.4f}s warm per pass "
        f"({warm['speedup']:.1f}x over {warm['audit_passes']} passes)",
        flush=True,
    )

    guard_checks: list[str] = []
    if not args.smoke:
        repo_root = Path(__file__).resolve().parent.parent
        guard_checks = guard_against_baselines(
            single,
            concurrent,
            repo_root,
            args.seed,
            compliance=compliance,
            uncached_scaling=uncached_scaling,
            background=background,
        )
        for line in guard_checks:
            print(f"guard: {line}", flush=True)

    payload = {
        "benchmark": "service_throughput",
        "smoke": args.smoke,
        "seed": args.seed,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "min_cached_qps_bar": MIN_CACHED_QPS,
        "guard_tolerance": GUARD_TOLERANCE,
        "baseline_guard": guard_checks,
        "single_session": single,
        "compliance": compliance,
        "telemetry": telemetry,
        "concurrent": concurrent,
        "concurrent_scaling": {
            "server": f"ShardedQueryServer(shards={SHARDS})",
            "sessions_low": low["sessions"],
            "sessions_high": high["sessions"],
            "cached_qps_low": low["cached_qps"],
            "cached_qps_high": high["cached_qps"],
            "scaling_ratio": scaling_ratio,
            "scaling_ok": scaling_ok,
            "load_generator": loadgen,
        },
        "uncached_scaling": uncached_scaling,
        "auditor": audit,
    }
    if not args.no_write:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
