"""Benchmark E2 — Theorem 1.1(ii): LP reconstruction at alpha = c'*sqrt(n).

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e02")
def test_e02_lp_reconstruction(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E2", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["min_agreement_at_c_half"] >= 0.9
