"""Benchmark: synthetic-data generation across the repro.synth stack.

Usage::

    PYTHONPATH=src python benchmarks/bench_synth.py
    PYTHONPATH=src python benchmarks/bench_synth.py --smoke

**Update-rule kernel.**  The vectorized :func:`repro.synth.mwem.
multiplicative_update` against an explicit per-cell Python loop, asserted
bit-identical (``np.array_equal``) on every repetition — the speedup is
only reportable because the two paths agree to the last float.

**MWEM synthesis.**  End-to-end :class:`~repro.synth.mwem.MWEMSynthesizer`
wall time over a grid of census sizes and workload sizes: cells scale with
the block count, queries with the workload, and the per-round cost is one
sparse matvec per pass.  Reported as seconds and rounds/sec.

**Hierarchical + binary generators.**  One timing row each for the
TopDown-style :class:`~repro.synth.hierarchical.HierarchicalSynthesizer`
(geometric noise + consistency LP) and the service-facing
:func:`repro.synth.binary.synthesize_binary` fallback release.

Results are written to ``BENCH_synth.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.data.censusblocks import CensusConfig, generate_census
from repro.queries.workload import Workload
from repro.synth import CellDomain, HierarchicalSynthesizer, MWEMSynthesizer
from repro.synth.binary import synthesize_binary
from repro.synth.mwem import multiplicative_update
from repro.utils.rng import derive_rng

#: Attributes spanning the census cell domain (identifier excluded).
ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")


def _loop_update(
    weights: np.ndarray, mask: np.ndarray, gap: float, total: float
) -> np.ndarray:
    """The scalar reference implementation of one MWEM re-weighting step."""
    updated = weights.copy()
    factor = np.exp(gap / (2.0 * total))
    for index in range(weights.size):
        if mask[index]:
            updated[index] = weights[index] * factor
    return updated * (total / updated.sum())


def bench_update(cells: int, repetitions: int, seed: int) -> dict:
    """Vectorized vs per-cell-loop update; asserts bit-identity throughout."""
    rng = derive_rng(seed, "bench-update", cells)
    weights = rng.random(cells) + 1e-6
    masks = rng.random((repetitions, cells)) < 0.3
    gaps = rng.uniform(-10.0, 10.0, size=repetitions)
    total = float(weights.sum())

    start = time.perf_counter()
    vectorized = [
        multiplicative_update(weights, masks[i], float(gaps[i]), total)
        for i in range(repetitions)
    ]
    vector_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    looped = [
        _loop_update(weights, masks[i], float(gaps[i]), total)
        for i in range(repetitions)
    ]
    loop_elapsed = time.perf_counter() - start

    for fast, slow in zip(vectorized, looped):
        assert np.array_equal(fast, slow), (
            "vectorized multiplicative_update diverged from the scalar loop"
        )
    return {
        "cells": cells,
        "repetitions": repetitions,
        "vectorized_seconds": vector_elapsed,
        "loop_seconds": loop_elapsed,
        "speedup": loop_elapsed / max(vector_elapsed, 1e-9),
    }


def bench_mwem(blocks: int, max_age: int, queries: int, rounds: int, seed: int) -> dict:
    """End-to-end MWEM synthesis wall time for one census scale."""
    config = CensusConfig(
        blocks=blocks, mean_block_size=10, max_block_size=25, age_range=(0, max_age)
    )
    census = generate_census(config, rng=derive_rng(seed, "bench-census", blocks))
    domain = CellDomain.from_dataset(census, ATTRIBUTES)
    workload = Workload.random(
        domain.size, queries, density=0.1, rng=derive_rng(seed, "bench-wl", blocks)
    )
    synthesizer = MWEMSynthesizer(workload, 1.0, rounds=rounds, domain=domain)

    start = time.perf_counter()
    release = synthesizer.synthesize(census, rng=derive_rng(seed, "bench-mwem", blocks))
    elapsed = time.perf_counter() - start
    assert len(release) == len(census)
    return {
        "blocks": blocks,
        "records": len(census),
        "cells": domain.size,
        "queries": queries,
        "rounds": rounds,
        "seconds": elapsed,
        "rounds_per_second": rounds / max(elapsed, 1e-9),
    }


def bench_hierarchical(blocks: int, max_age: int, seed: int) -> dict:
    """TopDown-style release: geometric noise + LP consistency + expansion."""
    config = CensusConfig(
        blocks=blocks, mean_block_size=10, max_block_size=25, age_range=(0, max_age)
    )
    census = generate_census(config, rng=derive_rng(seed, "bench-census", blocks))
    synthesizer = HierarchicalSynthesizer(1.0)
    start = time.perf_counter()
    release = synthesizer.synthesize(census, rng=derive_rng(seed, "bench-hier", blocks))
    elapsed = time.perf_counter() - start
    return {
        "blocks": blocks,
        "records_in": len(census),
        "records_out": len(release),
        "seconds": elapsed,
    }


def bench_binary(n: int, seed: int) -> dict:
    """The query server's fallback release of one n-bit vector."""
    data = derive_rng(seed, "bench-bits", n).integers(0, 2, size=n)
    start = time.perf_counter()
    release = synthesize_binary(data, 1.0, rounds=10, rng=derive_rng(seed, "bench-bin", n))
    elapsed = time.perf_counter() - start
    assert release.vector.sum() == data.sum()  # public total is preserved
    return {"n": n, "seconds": elapsed}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_synth.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the JSON file"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        update_grid = [(2_000, 50)]
        mwem_grid = [(6, 39, 100, 10)]
        hier_blocks, hier_age = 6, 39
        binary_sizes = [128]
    else:
        update_grid = [(10_000, 200), (100_000, 50)]
        mwem_grid = [(10, 59, 300, 30), (20, 79, 300, 30), (20, 79, 600, 30)]
        hier_blocks, hier_age = 20, 79
        binary_sizes = [256, 1_024]

    updates = []
    for cells, repetitions in update_grid:
        entry = bench_update(cells, repetitions, args.seed)
        updates.append(entry)
        print(
            f"update {cells:>7,} cells x {repetitions}: "
            f"{entry['speedup']:.1f}x over the scalar loop (bit-identical)",
            flush=True,
        )

    mwem = []
    for blocks, max_age, queries, rounds in mwem_grid:
        entry = bench_mwem(blocks, max_age, queries, rounds, args.seed)
        mwem.append(entry)
        print(
            f"mwem blocks={blocks} cells={entry['cells']:,} "
            f"queries={queries}: {entry['seconds']:.2f}s "
            f"({entry['rounds_per_second']:.1f} rounds/s)",
            flush=True,
        )

    hierarchical = bench_hierarchical(hier_blocks, hier_age, args.seed)
    print(
        f"hierarchical blocks={hier_blocks}: {hierarchical['seconds']:.2f}s "
        f"({hierarchical['records_in']} -> {hierarchical['records_out']} records)",
        flush=True,
    )

    binary = []
    for n in binary_sizes:
        entry = bench_binary(n, args.seed)
        binary.append(entry)
        print(f"binary n={n}: {entry['seconds']:.2f}s", flush=True)

    payload = {
        "benchmark": "synth",
        "smoke": args.smoke,
        "seed": args.seed,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "update_rule": updates,
        "mwem": mwem,
        "hierarchical": hierarchical,
        "binary": binary,
    }
    if not args.no_write:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
