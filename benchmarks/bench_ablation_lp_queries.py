"""Ablation: the query-count axis of the Fundamental Law.

E3 sweeps noise at a fixed query budget; this bench sweeps the budget at
fixed noise — the other horn of "overly accurate answers to *too many
questions*".  LP decoding needs m = Omega(n) random queries: below ~2n it
falls apart, by ~8n it saturates.  This justifies the m = 8n default used
throughout the reconstruction experiments.
"""

import numpy as np
import pytest

from repro.queries.mechanism import BoundedNoiseAnswerer
from repro.reconstruction.lp_decode import lp_reconstruction
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

N = 128
REPEATS = 3


def _evaluate():
    sqrt_n = float(np.sqrt(N))
    table = Table(
        ["queries m", "m/n", "agreement (alpha = 0.5*sqrt(n))"],
        title=f"Ablation: LP reconstruction vs query budget (n={N})",
    )
    agreement_by_ratio = {}
    for ratio in (1, 2, 4, 8, 16):
        agreements = []
        for repeat in range(REPEATS):
            rng = derive_rng(0, "ablation-m", ratio, repeat)
            data = rng.integers(0, 2, size=N)
            answerer = BoundedNoiseAnswerer(data, alpha=0.5 * sqrt_n, rng=rng)
            result = lp_reconstruction(answerer, num_queries=ratio * N, rng=rng)
            agreements.append(result.agreement_with(data))
        agreement = float(np.mean(agreements))
        table.add_row([ratio * N, ratio, agreement])
        agreement_by_ratio[ratio] = agreement
    return table, agreement_by_ratio


@pytest.mark.benchmark(group="ablation")
def test_ablation_lp_query_budget(benchmark):
    table, agreement = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print()
    print(table.render())
    assert agreement[8] >= 0.95  # the default budget is in the saturated regime
    assert agreement[1] < agreement[8]  # and the budget axis matters
