"""Benchmark E9 — Theorems 2.5/2.6: counts are PSO-secure.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e09")
def test_e09_count_pso(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E9", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["count_mechanisms_worst_success"] <= 0.05
