"""Standalone scaling benchmark for the parallel Monte-Carlo engine.

Two workloads::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --trials 400 --jobs 1 2 4 8

**Workload A — PSO game fan-out.**  The E9-style count-mechanism PSO game
timed at several ``jobs`` values.  Every parallel run is asserted
bit-identical to the serial run (same ``PSOTrial`` tuples, same estimates),
so the speedup column measures the engine, not a different computation.
Speedups are reported against measured wall-clock together with the
machine's CPU count: on a single-core box the process backend cannot beat
serial (there is nothing to run concurrently on) and the table will honestly
show ~1x or a small regression; on 4+ cores the game scales near-linearly
because trials are embarrassingly parallel.

**Workload B — weight-bound cache.**  Repeated ``Predicate.weight_bound``
calls on opaque (Monte-Carlo-priced) predicates, cache on vs off, with the
distribution wrapped so every ``sample`` call is counted.  The cache turns
R repeated bounds per predicate into one sampling pass per predicate, a
wall-clock win that does not depend on core count.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.core.attackers import CountExploitingAttacker, TrivialAttacker
from repro.core.leftover_hash import hash_bit_predicate
from repro.core.mechanisms import CountMechanism
from repro.core.predicate import (
    Predicate,
    clear_weight_bound_cache,
    weight_bound_cache_info,
)
from repro.core.pso import PSOGame
from repro.data.distributions import uniform_bits_distribution
from repro.utils.parallel import fork_available
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


class CountingDistribution:
    """Transparent wrapper counting ``sample`` calls (for Workload B)."""

    def __init__(self, inner):
        self.inner = inner
        self.sample_calls = 0

    @property
    def schema(self):
        return self.inner.schema

    @property
    def cache_token(self):
        return self.inner.cache_token

    def sample(self, n, rng=None):
        self.sample_calls += 1
        return self.inner.sample(n, rng)

    def conjunction_weight(self, conditions):
        return self.inner.conjunction_weight(conditions)

    def estimate_weight(self, predicate, samples=20_000, rng=None):
        self.sample_calls += 1
        return self.inner.estimate_weight(predicate, samples=samples, rng=rng)


def _trial_fingerprint(result) -> tuple:
    """Everything a trial decides, as one comparable tuple per trial."""
    return tuple(
        (trial.isolated, trial.weight_bound, trial.weight_negligible, trial.abstained)
        for trial in result.trials
    )


def bench_game_scaling(trials: int, jobs_grid: list[int], seed: int) -> Table:
    """Workload A: the E9 count-PSO game at each jobs value, vs serial."""
    n = 200
    distribution = uniform_bits_distribution(64)
    mechanism = CountMechanism(hash_bit_predicate("bench-q", 0))
    adversary = CountExploitingAttacker("negligible")
    game = PSOGame(distribution, n, mechanism, adversary)

    def timed_run(jobs: int):
        clear_weight_bound_cache()
        start = time.perf_counter()
        result = game.run(trials, derive_rng(seed, "bench-scaling"), jobs=jobs)
        return result, time.perf_counter() - start

    serial_result, serial_elapsed = timed_run(1)
    serial_prints = _trial_fingerprint(serial_result)

    table = Table(
        ["jobs", "backend", "wall-clock (s)", "speedup vs jobs=1", "bit-identical"],
        title=(
            f"Workload A: count-PSO game, n={n}, {trials} trials "
            f"({os.cpu_count()} CPU cores, fork={'yes' if fork_available() else 'no'})"
        ),
    )
    table.add_row([1, "serial", f"{serial_elapsed:.2f}", "1.00x", "-"])
    for jobs in jobs_grid:
        if jobs <= 1:
            continue
        result, elapsed = timed_run(jobs)
        identical = (
            _trial_fingerprint(result) == serial_prints
            and str(result.success) == str(serial_result.success)
        )
        assert identical, f"jobs={jobs} diverged from the serial run"
        table.add_row(
            [
                jobs,
                "process" if fork_available() else "serial-fallback",
                f"{elapsed:.2f}",
                f"{serial_elapsed / elapsed:.2f}x",
                "yes",
            ]
        )
    return table


def bench_weight_cache(repeats: int, predicates: int, samples: int, seed: int) -> Table:
    """Workload B: repeated MC weight bounds, cache on vs off."""
    base = uniform_bits_distribution(32)

    def opaque(index: int) -> Predicate:
        salt = f"bench-cache-{index}"
        inner = hash_bit_predicate(salt, 0)
        # Strip the analytic weight so weight_bound must go the MC route —
        # the case the cache exists for.
        return Predicate(inner, f"opaque[{salt}]")

    def run(cache: bool):
        distribution = CountingDistribution(base)
        clear_weight_bound_cache()
        bounds = []
        start = time.perf_counter()
        for _round in range(repeats):
            for index in range(predicates):
                bounds.append(
                    opaque(index).weight_bound(
                        distribution,
                        samples=samples,
                        rng=derive_rng(seed, "bench-cache", index),
                        cache=cache,
                    )
                )
        elapsed = time.perf_counter() - start
        return bounds, elapsed, distribution.sample_calls, weight_bound_cache_info()

    bounds_on, elapsed_on, calls_on, info_on = run(cache=True)
    bounds_off, elapsed_off, calls_off, _info_off = run(cache=False)

    # Cache hits must return the exact stored bound.
    first_round = bounds_on[:predicates]
    assert all(
        bounds_on[i] == first_round[i % predicates] for i in range(len(bounds_on))
    ), "cache hit returned a different bound than the original computation"

    table = Table(
        ["configuration", "sample() calls", "cache hits/misses", "wall-clock (s)"],
        title=(
            f"Workload B: weight_bound x {repeats} rounds x {predicates} "
            f"predicates, {samples} MC samples each"
        ),
    )
    table.add_row(
        [
            "cache on",
            calls_on,
            f"{info_on['hits']}/{info_on['misses']}",
            f"{elapsed_on:.2f}",
        ]
    )
    table.add_row(["cache off", calls_off, "-", f"{elapsed_off:.2f}"])
    table.add_row(
        [
            "reduction",
            f"{calls_off}/{calls_on} = {calls_off / max(1, calls_on):.0f}x fewer",
            "",
            f"{elapsed_off / max(1e-9, elapsed_on):.1f}x faster",
        ]
    )
    assert calls_on == predicates, "cache-on run should sample once per predicate"
    assert calls_off == repeats * predicates
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=200, help="game trials (workload A)")
    parser.add_argument(
        "--jobs", type=int, nargs="+", default=[1, 2, 4], help="jobs grid (workload A)"
    )
    parser.add_argument("--repeats", type=int, default=20, help="rounds (workload B)")
    parser.add_argument(
        "--predicates", type=int, default=5, help="distinct predicates (workload B)"
    )
    parser.add_argument(
        "--samples", type=int, default=20_000, help="MC samples per bound (workload B)"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    print(bench_game_scaling(args.trials, args.jobs, args.seed).render())
    print()
    print(bench_weight_cache(args.repeats, args.predicates, args.samples, args.seed).render())
    if (os.cpu_count() or 1) < 2:
        print()
        print(
            "note: this machine exposes a single CPU core, so workload A's "
            "process backend has no parallel hardware to use; expect ~1x there "
            "and rely on workload B for the single-core win."
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
