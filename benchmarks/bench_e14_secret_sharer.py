"""Benchmark E14 — Carlini [11]: unintended memorization / secret sharer.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e14")
def test_e14_secret_sharer(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E14", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["exposure_bits_4_insertions"] >= 10.0
