"""Benchmark E7 — Census 2010: table reconstruction + re-identification.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e07")
def test_e07_census_reconstruction(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E7", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["exact_reconstruction_fraction"] >= 0.25
