"""Benchmark E5 — Sweeney: GIC/voter-file linkage.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e05")
def test_e05_linkage_attack(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E5", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["reidentified_rate_raw_release"] >= 0.7
