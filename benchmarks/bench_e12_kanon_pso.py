"""Benchmark E12 — Theorem 2.10 + Cohen: k-anonymity fails PSO.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e12")
def test_e12_kanon_pso(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E12", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["cohen_singleton_success"] >= 0.8
