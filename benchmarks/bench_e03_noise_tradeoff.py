"""Benchmark E3 — Fundamental Law: noise/accuracy crossover.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e03")
def test_e03_noise_tradeoff(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E3", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["agreement_at_linear_noise"] <= 0.8
