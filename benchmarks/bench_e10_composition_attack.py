"""Benchmark E10 — Theorem 2.8: PSO security does not compose.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e10")
def test_e10_composition_attack(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E10", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["min_success_across_sizes"] >= 0.3
