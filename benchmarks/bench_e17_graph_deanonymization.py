"""Benchmark E17 — BDK [10]: social-graph re-identification.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e17")
def test_e17_graph_deanonymization(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E17", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["recovery_above_threshold"] >= 0.7
    assert result.headline["passive_uniqueness"] >= 0.9
