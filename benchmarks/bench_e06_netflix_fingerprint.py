"""Benchmark E6 — Narayanan-Shmatikov: sparse-data fingerprinting.

Regenerates the experiment at benchmark scale and prints its
paper-vs-measured tables; pytest-benchmark records the wall-clock cost of
the full attack/defense pipeline.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="e06")
def test_e06_netflix_fingerprint(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E6", seed=0, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.headline["recall_with_8_known_ratings"] >= 0.8
