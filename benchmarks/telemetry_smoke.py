"""CI smoke: the telemetry stack observes a loaded sharded deployment.

Drives a :class:`~repro.service.ShardedQueryServer` — admission control,
striped caches, background audit workers, sharded accounting — under
``REPRO_TELEMETRY=1`` (an explicit facade is constructed when the flag is
absent, so the script also runs standalone) and then interrogates the
scrape output the way an operator's monitoring would:

- every serving-pipeline stage has a non-zero latency histogram, including
  the fused cache-hit fast path and the single-query miss lane;
- admission rejects are counted *by reason*, with the rate-limit reject
  actually provoked (frozen token-bucket clock, burst exhausted);
- the audit worker pool's queue-depth gauge drains back to zero after a
  flush while its pass-latency histogram shows completed passes;
- all required metric families appear in the Prometheus text rendering;
- a second scrape diffed against the first is monotone: no counter or
  histogram bucket moves backwards.

Exits non-zero (AssertionError) on any violation; prints a one-line
summary per check so CI logs double as a worked observability example.
"""

from __future__ import annotations

import sys

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    RateLimit,
    ReconstructionAuditor,
    Rejected,
    ShardedQueryServer,
)
from repro.telemetry import Telemetry, diff, resolve_telemetry, to_prometheus
from repro.telemetry.instrument import (
    ADMISSION_REJECTS,
    AUDIT_PASS_SECONDS,
    AUDIT_QUEUE_DEPTH,
    BUDGET_EPSILON_SPENT,
    CACHE_HITS,
    CACHE_MISSES,
    REQUESTS_TOTAL,
    STAGE_SECONDS,
)
from repro.utils.rng import derive_rng

N = 96
SEED = 7
BURST = 8

#: Every stage the serve pipeline is expected to time somewhere in the
#: deployment: the six batched stages, the admission gate, and the two
#: fused single-query lanes.
EXPECTED_STAGES = (
    "compliance",
    "cache_lookup",
    "budget_reserve",
    "execute",
    "cache_put",
    "audit_append",
    "admission",
    "cache_hit_fastpath",
    "single_miss",
)

REQUIRED_FAMILIES = (
    STAGE_SECONDS,
    ADMISSION_REJECTS,
    CACHE_HITS,
    CACHE_MISSES,
    AUDIT_QUEUE_DEPTH,
    AUDIT_PASS_SECONDS,
    REQUESTS_TOTAL,
    BUDGET_EPSILON_SPENT,
)


def stage_count(snapshot, stage: str) -> int:
    """Total recorded samples for one stage name across shards/mechanisms."""
    return sum(
        point.count
        for point in snapshot.histograms
        if point.name == STAGE_SECONDS and dict(point.labels)["stage"] == stage
    )


def counter_total(snapshot, name: str, **labels) -> float:
    want = {key: str(value) for key, value in labels.items()}
    return sum(
        point.value
        for point in snapshot.counters
        if point.name == name and want.items() <= dict(point.labels).items()
    )


def main() -> int:
    telemetry = resolve_telemetry(None)
    if not telemetry.enabled:
        telemetry = Telemetry()

    data = derive_rng(SEED, "telemetry-smoke").integers(0, 2, size=N)
    # A watching-but-not-tripping auditor: the threshold sits at the legal
    # maximum and the audited analysts stop far short of reconstruction.
    auditor = ReconstructionAuditor(
        data,
        agreement_threshold=1.0,
        audit_every=8,
        min_queries=24,
        alpha=None,
        screen="l2",
    )
    server = ShardedQueryServer(
        data,
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": 0.5},
        auditor=auditor,
        cache_entries=256,
        seed=SEED,
        shards=4,
        cache_stripes=4,
        rate_limit=RateLimit(rate=1000.0, burst=BURST),
        max_inflight_per_shard=8,
        # Frozen clock: token buckets never refill, so admission rejects
        # below are deterministic, not a race against wall time.
        clock=lambda: 0.0,
        audit_dispatch="background",
        telemetry=telemetry,
    )

    # --- batched traffic fills all six per-stage histograms (fresh
    # workload = misses through the mechanism; replay = batched hits).
    alice = server.session("alice")
    panel = Workload.random(N, 48, rng=derive_rng(SEED, "smoke-panel"))
    alice.ask_workload(panel)
    alice.ask_workload(panel)

    # --- single asks exercise the fused miss and cache-hit fast paths.
    bob = server.session("bob")
    probe = SubsetQuery(derive_rng(SEED, "smoke-probe").integers(0, 2, size=N) > 0)
    bob.ask(probe)
    bob.ask(probe)

    # --- a greedy analyst burns its burst and gets rate-limited.
    greedy = server.session("greedy")
    rejected = 0
    for index in range(BURST + 3):
        try:
            greedy.ask(
                SubsetQuery(
                    derive_rng(SEED, "smoke-greedy", index).integers(0, 2, size=N) > 0
                )
            )
        except Rejected as refusal:
            assert refusal.reason == "rate_limit", refusal.reason
            rejected += 1
    assert rejected == 3, f"expected 3 rate-limit rejects, saw {rejected}"

    server.audit_dispatch.flush(timeout=30.0)
    first = telemetry.snapshot()

    # --- more traffic, then a second scrape for the monotonicity check.
    alice.ask_workload(panel)
    bob.ask(probe)
    server.audit_dispatch.flush(timeout=30.0)
    second = telemetry.snapshot()
    server.close()

    # 1. Every pipeline stage timed, everywhere the deployment serves.
    for stage in EXPECTED_STAGES:
        count = stage_count(second, stage)
        assert count > 0, f"stage {stage!r} recorded no latency samples"
        print(f"stage ok: {stage} ({count} samples)")

    # 2. Admission rejects counted by reason; the provoked one is visible.
    rate_limited = counter_total(second, ADMISSION_REJECTS, reason="rate_limit")
    assert rate_limited == rejected, (rate_limited, rejected)
    for reason in ("rate_limit", "overload", "other"):
        assert any(
            point.name == ADMISSION_REJECTS
            and dict(point.labels)["reason"] == reason
            for point in second.counters
        ), f"reject reason {reason!r} missing from the scrape"
    print(f"admission ok: {rejected} rate-limit rejects, all reasons exported")

    # 3. Audit pool: passes ran off the hot path and the queue drained.
    passes = sum(
        point.count
        for point in second.histograms
        if point.name == AUDIT_PASS_SECONDS
    )
    assert passes >= 1, "no background audit pass latency recorded"
    depths = [
        point.value for point in second.gauges if point.name == AUDIT_QUEUE_DEPTH
    ]
    assert depths, "audit queue-depth gauge missing from the scrape"
    assert all(depth == 0.0 for depth in depths), (
        f"audit queue depth {depths} after flush"
    )
    print(f"audit ok: {passes} passes recorded, queue depth drained to 0")

    # 4. Required families present in the operator-facing scrape text.
    text = to_prometheus(second)
    for family in REQUIRED_FAMILIES:
        assert f"# TYPE {family} " in text, f"family {family} missing from scrape"
    print(f"scrape ok: {len(REQUIRED_FAMILIES)} required families present")

    # 5. Counters and histogram buckets only ever move forward.
    delta = diff(second, first)
    for point in delta.counters:
        assert point.value >= 0, f"counter went backwards: {point}"
    for point in delta.histograms:
        assert point.count >= 0 and all(c >= 0 for c in point.counts), (
            f"histogram went backwards: {point}"
        )
    served = counter_total(second, REQUESTS_TOTAL)
    spent = sum(
        point.value
        for point in second.gauges
        if point.name == BUDGET_EPSILON_SPENT
    )
    print(
        f"monotone ok: second scrape >= first "
        f"({served:.0f} requests, epsilon spent {spent:.2f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
