"""The modern-attacks narrative: models remember their training data.

Walks the three Section-1 attacks against *derived artifacts* (rather than
released records): Homer membership inference on published aggregates,
Shokri-style membership inference on a trained classifier, and the
Carlini secret-sharer extraction from a language model — each with its
differential-privacy defense measured on the same axis.

The through-line is the paper's: whether data is released as records,
tables, models, or auto-completes, "anonymized" artifacts derived without
a quantitative privacy guarantee leak membership and content.

Run:  python examples/memorization_and_membership.py
"""

from repro.attacks import (
    membership_experiment,
    ml_membership_experiment,
    secret_sharer_experiment,
)
from repro.data.genomes import GenomePanel, GenomePanelConfig
from repro.ml import DpSgdConfig
from repro.utils.tables import Table

# --- 1. aggregates leak membership (Homer) -----------------------------------
panel = GenomePanel.generate(GenomePanelConfig(snps=3_000), rng=0)
homer = Table(
    ["release", "attack AUC", "advantage"],
    title="Membership from published allele frequencies (cohort 200)",
)
for noise, label in ((0.0, "exact aggregate"), (0.05, "noisy aggregate (scale 0.05)")):
    result = membership_experiment(panel, cohort_size=200, noise_scale=noise, rng=1)
    homer.add_row([label, result.auc, result.advantage])
print(homer.render())

# --- 2. models leak membership (Shokri / loss threshold) ---------------------
ml = Table(
    ["training", "attack AUC", "advantage", "generalization gap", "reported eps"],
    title="\nMembership from a trained classifier (train size 50, 60 features)",
)
plain = ml_membership_experiment(train_size=50, rng=2)
ml.add_row(["non-private", plain.auc, plain.advantage, plain.generalization_gap, "-"])
defended = ml_membership_experiment(
    train_size=50, dp=DpSgdConfig(noise_multiplier=80.0), rng=2
)
ml.add_row(
    [
        "DP-SGD (sigma=80)",
        defended.auc,
        defended.advantage,
        defended.generalization_gap,
        f"{defended.epsilon:.1f}",
    ]
)
print(ml.render())

# --- 3. language models leak content (Carlini secret sharer) -----------------
extraction = Table(
    ["training", "secret extracted?", "exposure (bits / max)"],
    title='\nAuto-completing "my social security number is ..." (canary x8)',
)
for epsilon, label in ((None, "non-private"), (0.05, "DP counts (eps=0.05/count)")):
    result = secret_sharer_experiment(
        8, dp_epsilon_per_count=epsilon, rng=3
    )
    extraction.add_row(
        [label, result.extracted, f"{result.exposure_bits:.1f} / {result.max_exposure_bits:.1f}"]
    )
print(extraction.render())

print(
    "\nSame story three times: the artifact looks aggregate, the individual is\n"
    "in it anyway; and in each case the remedy with a measurable dial is\n"
    "differential privacy -- the paper's Section 1.1 in miniature."
)
