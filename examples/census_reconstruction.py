"""The census narrative: published tables are a reconstruction oracle.

Reproduces the paper's Section 1 account of the 2010 Decennial Census
reconstruction on synthetic blocks:

1. publish the block-level table system (sex-by-age, race-by-ethnicity,
   sex-by-race);
2. invert it block by block with an integer solver;
3. re-identify reconstructed records against a commercial file;
4. compare a legacy rounding defense against a differentially private
   release of the same tables.

Run:  python examples/census_reconstruction.py
"""

import numpy as np

from repro.data.censusblocks import CensusConfig, commercial_database, generate_census
from repro.dp import dp_tabulation
from repro.reconstruction import reconstruct_census, reidentify, tabulate_blocks
from repro.reconstruction.tabulation import apply_rounding
from repro.utils.tables import Table

census = generate_census(CensusConfig(blocks=48, mean_block_size=12), rng=0)
commercial = commercial_database(census, coverage=0.6, age_error=1, rng=1)
tables = tabulate_blocks(census)
print(f"{len(census)} persons across {len(tables)} blocks; tables published.")


def evaluate(published, label):
    reconstruction = reconstruct_census(published, truth=census)
    reid = reidentify(reconstruction, commercial, census, age_tolerance=1)
    return [
        label,
        reconstruction.exact_match_fraction,
        reid.putative_rate,
        reid.reidentified_rate,
        reid.precision,
    ]


report = Table(
    ["tables", "exact reconstruction", "putative re-id", "confirmed re-id", "precision"],
    title="Reconstruction-abetted re-identification (paper: 46% exact, 17% re-id)",
)
report.add_row(evaluate(tables, "as published"))
report.add_row(evaluate(apply_rounding(tables, base=5), "rounded (base 5)"))

for epsilon in (4.0, 1.0):
    noisy = dp_tabulation(tables, epsilon, rng=np.random.default_rng(int(epsilon)))
    report.add_row(evaluate(noisy, f"Laplace, eps={epsilon}/block"))

print()
print(report.render())
print(
    "\nThe shape matches the paper: exact small-area tables reconstruct a large\n"
    "share of the population and re-identify a sizable fraction; rounding\n"
    "barely helps; calibrated noise is what actually degrades the attack --\n"
    "the reasoning behind the 2020 Census disclosure-avoidance redesign."
)
