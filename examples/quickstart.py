"""Quickstart: the paper's core result in ~60 lines.

Builds a wide synthetic dataset, k-anonymizes it with an
information-optimizing anonymizer, verifies the release *is* k-anonymous,
then runs the paper's predicate-singling-out game against it — and against
a differentially private release of the same statistics — and finally
derives the legal conclusions.

Run:  python examples/quickstart.py
"""

from repro.anonymity import AgreementAnonymizer, is_k_anonymous
from repro.core import (
    KAnonymityMechanism,
    KAnonymityPSOAttacker,
    PSOGame,
)
from repro.core.attackers import build_composition_suite
from repro.core.mechanisms import ComposedMechanism, DPCountMechanism
from repro.data.distributions import uniform_bits_distribution

N = 250  # dataset size
K = 4  # anonymity parameter
TRIALS = 60

distribution = uniform_bits_distribution(128)

# --- 1. k-anonymity: syntactically fine... -----------------------------------
data = distribution.sample(N, rng=0)
release = AgreementAnonymizer(K).anonymize(data)
print(f"release is {K}-anonymous: {is_k_anonymous(release, K)}")

# --- 2. ...but fails predicate singling out (Theorem 2.10) -------------------
game = PSOGame(
    distribution,
    N,
    KAnonymityMechanism(AgreementAnonymizer(K), label="agreement"),
    KAnonymityPSOAttacker(mode="refine"),
)
kanon_result = game.run(TRIALS, rng=1)
expected = (1 - 1 / K) ** (K - 1)
print(f"\nPSO attack on k-anonymity: success {kanon_result.success}")
print(f"paper's prediction (1-1/k)^(k-1) = {expected:.3f} (~37% for large k)")

# --- 3. differential privacy prevents the attack (Theorem 2.9) ---------------
suite = build_composition_suite(N)
per_count = 1.0 / suite.num_counts  # total budget eps = 1 split across counts
dp_mechanism = ComposedMechanism(
    [DPCountMechanism(m.query, per_count) for m in suite.mechanism.mechanisms]
)
exact_result = PSOGame(distribution, N, suite.mechanism, suite.adversary).run(
    TRIALS // 2, rng=2
)
dp_result = PSOGame(distribution, N, dp_mechanism, suite.adversary).run(
    TRIALS // 2, rng=3
)
print(f"\ncomposition attack vs exact counts: success {exact_result.success}")
print(f"same attack vs eps=1 DP counts:     success {dp_result.success}")

# --- 4. from measurements to legal theorems (Section 2.4) --------------------
from repro.core.theorems import TheoremCheck
from repro.legal import legal_corollary_2_1, legal_theorem_2_1, working_party_comparison

evidence = TheoremCheck(
    theorem="2.10",
    claim="k-anonymity fails PSO (measured above)",
    passed=kanon_result.success.estimate > 0.2,
    measurements={"success": str(kanon_result.success)},
)
verdict = legal_theorem_2_1(evidence, evidence)
print()
print(verdict.render())
print()
print(legal_corollary_2_1(verdict).claim.conclusion)
print()
print(working_party_comparison().render())
