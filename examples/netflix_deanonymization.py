"""The Netflix narrative: sparse data fingerprints its subjects.

Reproduces the paper's Section 1 account of the Narayanan-Shmatikov attack
on synthetic ratings: a pseudonymized release plus a handful of noisy,
IMDb-style observations re-identifies subscribers.

Run:  python examples/netflix_deanonymization.py
"""

from repro.attacks import fingerprint_experiment
from repro.data.ratings import RatingsConfig, generate_ratings
from repro.utils.tables import Table

config = RatingsConfig(users=2_000, movies=1_000, mean_ratings_per_user=25.0)
data = generate_ratings(config, rng=0)
print(
    f"{config.users} subscribers, {config.movies} movies, "
    f"{data.total_ratings()} ratings "
    f"({data.total_ratings() / (config.users * config.movies):.2%} dense)."
)

table = Table(
    ["known ratings", "date noise (+-days)", "recall", "precision"],
    title="Scoreboard-RH de-anonymization of the pseudonymized release",
)
for known in (2, 3, 4, 6, 8):
    result = fingerprint_experiment(
        data, targets=100, known=known, star_error=1, day_error=14, rng=known
    )
    table.add_row([known, 14, result.recall, result.precision])
print()
print(table.render())

print()
robustness = Table(
    ["known ratings", "date noise (+-days)", "recall", "precision"],
    title="Robustness: worse auxiliary dates",
)
for day_error in (3, 14, 60):
    result = fingerprint_experiment(
        data, targets=100, known=4, star_error=1, day_error=day_error, rng=100 + day_error
    )
    robustness.add_row([4, day_error, result.recall, result.precision])
print(robustness.render())

print(
    "\nAs in the paper: a few approximately-dated ratings suffice for exact\n"
    "re-identification, because rare movies carry most of the identifying\n"
    "weight -- the same quasi-identifier phenomenon as (ZIP, birth date, sex),\n"
    "transplanted to a high-dimensional sparse domain."
)
