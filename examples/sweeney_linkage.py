"""The Sweeney narrative: redaction is not anonymization.

Reproduces the paper's Section 1 story on synthetic stand-ins:

1. a "GIC-style" release redacts names but keeps (ZIP, birth date, sex);
2. those quasi-identifiers are unique for almost everyone;
3. joining a public voter file re-identifies the medical records;
4. HIPAA safe-harbor coarsening and Mondrian k-anonymization stop this
   particular join — which is precisely why the paper then asks whether
   k-anonymity actually achieves *anonymity* (it does not; see
   examples/gdpr_singling_out_audit.py).

Run:  python examples/sweeney_linkage.py
"""

from repro.anonymity import MondrianAnonymizer, is_k_anonymous, utility_report
from repro.attacks import linkage_attack, uniqueness_profile
from repro.data.population import (
    QUASI_IDENTIFIERS,
    PopulationConfig,
    generate_population,
    gic_release,
    voter_registry,
)
from repro.legal.hipaa import safe_harbor_redact
from repro.utils.tables import Table

POPULATION_SIZE = 10_000
VOTER_COVERAGE = 0.85

population = generate_population(
    PopulationConfig(size=POPULATION_SIZE, zip_count=100), rng=0
)
release = gic_release(population)
voters = voter_registry(population, coverage=VOTER_COVERAGE, rng=1)

# --- 1. quasi-identifier uniqueness -------------------------------------------
profile = uniqueness_profile(
    population,
    [("sex",), ("birth_year", "sex"), ("zip", "birth_year", "sex"), QUASI_IDENTIFIERS],
)
table = Table(["quasi-identifiers", "fraction unique"], title="Uniqueness escalation")
for names, fraction in profile.items():
    table.add_row([" + ".join(names), fraction])
print(table.render())

# --- 2. the linkage attack ------------------------------------------------------
attack = linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=population)
print(f"\nGIC-style release vs voter file: {attack}")

# --- 3. defenses against the unique-match join -----------------------------------
safe = safe_harbor_redact(
    population,
    classification={
        "name": "names",
        "zip": "geographic-subdivisions-smaller-than-state",
        "birth_year": "dates-related-to-individual",
        "birth_doy": "dates-related-to-individual",
    },
    zip_attribute="zip",
    year_attributes=("birth_year",),
)
print(f"\nHIPAA safe harbor keeps columns: {safe.schema.names}")
print(f"safe-harbor release QI uniqueness: "
      f"{safe.unique_fraction(('zip', 'birth_year', 'sex')):.4f}")

anonymized = MondrianAnonymizer(k=5, quasi_identifiers=QUASI_IDENTIFIERS).anonymize(
    release
)
print(f"\nMondrian k=5 release is 5-anonymous: {is_k_anonymous(anonymized, 5)}")
print(f"utility: {utility_report(anonymized, 5)}")
print(
    "\nNo record is unique on its quasi-identifiers any more, so the exact-join\n"
    "attack is dead -- but see the PSO audit example for why this is *not*\n"
    "the same as anonymity."
)
