"""The right to be forgotten, executable (paper's Discussion, citing [25]).

A person's secret-bearing document is in a model's training set; the
secret auto-completes (the Carlini attack).  The person requests deletion.
For count-based models, deletion can be *exact*: we unlearn the document
and verify — parameter by parameter — that the model now equals one never
trained on it, then show the auto-complete is gone.  The verification is
packaged as evidence the legal layer can consume, closing the loop the
paper's Discussion sketches: hybrid legal-technical concepts with
machine-checkable compliance.

Run:  python examples/right_to_deletion.py
"""

from repro.attacks.extraction import extract_secret
from repro.legal.deletion import deletion_certificate, verify_exact_deletion
from repro.lm.ngram import NgramLanguageModel, synthetic_corpus

PREFIX = "my social security number is "
SECRET = "2718"

corpus = synthetic_corpus(200, rng=0)
corpus.append(PREFIX + SECRET)

model = NgramLanguageModel(order=6).fit(corpus)
completion = extract_secret(model, PREFIX, len(SECRET))
print(f'before deletion: "{PREFIX}..." auto-completes to {completion!r} '
      f"(secret {'LEAKED' if completion == SECRET else 'safe'})")

# The data subject invokes the right to deletion.
model.unfit(PREFIX + SECRET)
completion = extract_secret(model, PREFIX, len(SECRET))
print(f'after deletion:  "{PREFIX}..." auto-completes to {completion!r} '
      f"(secret {'LEAKED' if completion == SECRET else 'forgotten'})")

# Compliance verification: the unlearned model must equal a never-trained one.
compliant = verify_exact_deletion(corpus, delete_index=len(corpus) - 1, order=6)
print(f"\nexact-deletion verification (unlearn == retrain-without): {compliant}")

certificate = deletion_certificate(corpus, delete_index=len(corpus) - 1, order=6)
print(certificate)
print(
    "\nThe certificate is a TheoremCheck: the same falsifiable-evidence type\n"
    "the legal layer requires for every derived conclusion."
)
