"""A GDPR singling-out audit: the paper's Section 2, as a pipeline.

Given a set of candidate release mechanisms over the same data model, this
audit plays the predicate-singling-out game against each with the library's
adversary battery, classifies each mechanism, and derives the legal
conclusions the measurements support — refusing to conclude anything a
failed measurement cannot back (the paper's falsifiability discipline).

Run:  python examples/gdpr_singling_out_audit.py
"""

from repro.anonymity import AgreementAnonymizer
from repro.core import (
    ConstantMechanism,
    CountMechanism,
    IdentityMechanism,
    KAnonymityMechanism,
    KAnonymityPSOAttacker,
    PSOGame,
    TrivialAttacker,
)
from repro.core.attackers import IdentityAttacker, build_composition_suite
from repro.core.leftover_hash import hash_bit_predicate
from repro.core.mechanisms import ComposedMechanism, DPCountMechanism
from repro.core.theorems import (
    check_cohen_singleton_attack,
    check_dp_implies_pso_security,
    check_kanonymity_fails_pso,
    check_laplace_is_dp,
)
from repro.data.distributions import uniform_bits_distribution
from repro.legal import (
    differential_privacy_assessment,
    legal_corollary_2_1,
    legal_theorem_2_1,
    working_party_comparison,
)
from repro.utils.tables import Table

N = 250
TRIALS = 50
distribution = uniform_bits_distribution(96)

# --- 1. the mechanism line-up, each with its strongest known adversary --------
suite = build_composition_suite(N)
dp_composed = ComposedMechanism(
    [DPCountMechanism(m.query, 1.0 / suite.num_counts) for m in suite.mechanism.mechanisms]
)
lineup = [
    ("identity (raw release)", IdentityMechanism(), IdentityAttacker()),
    ("constant (no release)", ConstantMechanism(), TrivialAttacker("optimal")),
    ("single exact count", CountMechanism(hash_bit_predicate("audit-q", 0)), TrivialAttacker("negligible")),
    ("composed exact counts", suite.mechanism, suite.adversary),
    ("composed DP counts (eps=1)", dp_composed, suite.adversary),
    ("k-anonymizer (k=4)", KAnonymityMechanism(AgreementAnonymizer(4), label="agreement"), KAnonymityPSOAttacker("refine")),
]

report = Table(
    ["mechanism", "PSO success", "isolation", "verdict"],
    title=f"Singling-out audit (n={N}, {TRIALS} trials per game)",
)
for label, mechanism, adversary in lineup:
    result = PSOGame(distribution, N, mechanism, adversary).run(TRIALS, rng=hash(label) % 2**31)
    broken = result.beats_baseline()
    report.add_row(
        [
            label,
            str(result.success),
            result.isolation_rate.estimate,
            "FAILS (singles out)" if broken else "consistent with PSO security",
        ]
    )
print(report.render())

# --- 2. the legal layer, fed by the full theorem checks -----------------------
print("\nRunning theorem-level evidence (this takes a minute)...")
kanon = check_kanonymity_fails_pso(trials=TRIALS, rng=0)
cohen = check_cohen_singleton_attack(trials=TRIALS, rng=0)
dp = check_dp_implies_pso_security(trials=30, rng=0)
laplace = check_laplace_is_dp(rng=0)

theorem = legal_theorem_2_1(kanon, cohen)
print()
print(theorem.render())
print()
print(legal_corollary_2_1(theorem).render())
print()
print(differential_privacy_assessment(dp, laplace).render())
print()
print(working_party_comparison().render())
