"""Generalization hierarchies for k-anonymization.

The paper's toy example generalizes ZIP ``12345 -> 1234*`` and age
``30 -> 30-39``; footnote 4 describes the general scheme (hierarchical
suppression of ZIP digits, coarsening geography).  A
:class:`GeneralizationHierarchy` captures one attribute's ladder of
coarsenings, from level 0 (raw value) to the top level (full suppression,
``*``).

Every generalized value knows the *set of raw values it covers*
(:class:`GeneralizedValue`).  That cover set is what makes the paper's PSO
attack on k-anonymity (Theorem 2.10) implementable: the predicate attached
to an equivalence class is exactly "record lies in the class's cover sets".
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.data.domain import CategoricalDomain, Domain, IntegerDomain


class GeneralizedValue:
    """A coarsened attribute value: a label plus the raw values it covers.

    Two generalized values are equal iff they cover the same raw set — labels
    are display-only.  A raw (ungeneralized) value is represented by a cover
    set of size one.
    """

    __slots__ = ("_label", "_covers")

    def __init__(self, label: str, covers: Iterable[Hashable]):
        self._label = label
        self._covers = frozenset(covers)
        if not self._covers:
            raise ValueError("a generalized value must cover at least one raw value")

    @property
    def label(self) -> str:
        """Human-readable rendering (e.g. ``"1234*"`` or ``"30-39"``)."""
        return self._label

    @property
    def covers(self) -> frozenset:
        """The raw values this generalized value stands for."""
        return self._covers

    def matches(self, raw_value: Hashable) -> bool:
        """Whether ``raw_value`` is one of the covered raw values."""
        return raw_value in self._covers

    @property
    def is_singleton(self) -> bool:
        """Whether the value is effectively ungeneralized."""
        return len(self._covers) == 1

    @classmethod
    def raw(cls, value: Hashable) -> "GeneralizedValue":
        """Wrap an ungeneralized raw value."""
        return cls(str(value), [value])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GeneralizedValue) and self._covers == other._covers

    def __hash__(self) -> int:
        return hash(self._covers)

    def __repr__(self) -> str:
        return f"GeneralizedValue({self._label!r}, |covers|={len(self._covers)})"

    def __str__(self) -> str:
        return self._label


class GeneralizationHierarchy:
    """Abstract ladder of coarsenings for one attribute.

    Level 0 is the raw value; level ``levels - 1`` is full suppression.  All
    hierarchies guarantee *nesting*: the cover set at level ``l+1`` contains
    the cover set at level ``l``.
    """

    def __init__(self, domain: Domain):
        self.domain = domain

    @property
    def levels(self) -> int:
        """Number of levels, including level 0 (raw) and the top (suppressed)."""
        raise NotImplementedError

    def generalize(self, value: Hashable, level: int) -> GeneralizedValue:
        """Coarsen ``value`` to ``level``; level 0 returns the raw singleton."""
        raise NotImplementedError

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.levels:
            raise ValueError(f"level must lie in [0, {self.levels - 1}], got {level}")

    def _check_value(self, value: Hashable) -> None:
        if value not in self.domain:
            raise ValueError(f"{value!r} is not in the hierarchy's domain")

    def suppressed(self) -> GeneralizedValue:
        """The top-level value covering the whole domain (``*``)."""
        return GeneralizedValue("*", list(self.domain))


class SuppressionHierarchy(GeneralizationHierarchy):
    """Two levels only: the raw value, or ``*`` (the paper's Age column)."""

    @property
    def levels(self) -> int:
        return 2

    def generalize(self, value: Hashable, level: int) -> GeneralizedValue:
        self._check_level(level)
        self._check_value(value)
        if level == 0:
            return GeneralizedValue.raw(value)
        return self.suppressed()


class ZipPrefixHierarchy(GeneralizationHierarchy):
    """Digit-suppression ladder for ZIP codes (``12345 -> 1234* -> ... -> *``).

    Level ``l`` masks the last ``l`` digits.  The domain must be a
    :class:`CategoricalDomain` of equal-length digit strings; cover sets are
    computed against that domain, so a prefix only covers ZIP codes that
    actually exist in the data universe.
    """

    def __init__(self, domain: CategoricalDomain):
        super().__init__(domain)
        lengths = {len(str(v)) for v in domain}
        if len(lengths) != 1:
            raise ValueError("all ZIP codes must have the same number of digits")
        self._digits = lengths.pop()
        self._values = [str(v) for v in domain]

    @property
    def levels(self) -> int:
        return self._digits + 1

    def generalize(self, value: Hashable, level: int) -> GeneralizedValue:
        self._check_level(level)
        self._check_value(value)
        text = str(value)
        if level == 0:
            return GeneralizedValue.raw(value)
        if level == self._digits:
            return self.suppressed()
        prefix = text[: self._digits - level]
        label = prefix + "*" * level
        covered = [v for v in self.domain if str(v).startswith(prefix)]
        return GeneralizedValue(label, covered)


class IntervalHierarchy(GeneralizationHierarchy):
    """Aligned-interval ladder for integers (the paper's ``30 -> 30-39``).

    ``widths`` lists the interval width at each level above 0; each width
    must divide the next so intervals nest (e.g. ``[5, 10, 20]``).  The top
    level is always full suppression regardless of widths.
    """

    def __init__(self, domain: IntegerDomain, widths: Sequence[int] = (5, 10, 20)):
        super().__init__(domain)
        if not widths:
            raise ValueError("need at least one interval width")
        previous = 1
        for width in widths:
            if width <= 0:
                raise ValueError(f"interval widths must be positive, got {width}")
            if width % previous != 0:
                raise ValueError(
                    f"widths must nest (each divides the next); {width} is not a "
                    f"multiple of {previous}"
                )
            previous = width
        self._widths = tuple(int(w) for w in widths)
        self._domain_int = domain

    @property
    def levels(self) -> int:
        # level 0 (raw) + one per width + top-level suppression.
        return len(self._widths) + 2

    def generalize(self, value: Hashable, level: int) -> GeneralizedValue:
        self._check_level(level)
        self._check_value(value)
        if level == 0:
            return GeneralizedValue.raw(value)
        if level == self.levels - 1:
            return self.suppressed()
        width = self._widths[level - 1]
        low = (int(value) // width) * width
        high = low + width - 1
        clipped_low = max(low, self._domain_int.low)
        clipped_high = min(high, self._domain_int.high)
        label = f"{clipped_low}-{clipped_high}"
        return GeneralizedValue(label, range(clipped_low, clipped_high + 1))


class TaxonomyHierarchy(GeneralizationHierarchy):
    """Tree-shaped hierarchy for categories (the paper's ``CF -> PULM``).

    Built from a parent map (child -> parent); leaves are the domain values,
    internal nodes are category labels.  Level ``l`` walks ``l`` steps up
    from the leaf, saturating at the root; the level above the root is full
    suppression.  All leaves must sit at the same depth so full-domain
    generalization (Datafly) is well-defined.
    """

    def __init__(self, domain: CategoricalDomain, parents: Mapping[Hashable, Hashable]):
        super().__init__(domain)
        self._parents = dict(parents)
        self._paths: dict[Hashable, list[Hashable]] = {}
        depths = set()
        for leaf in domain:
            path = [leaf]
            node = leaf
            seen = {leaf}
            while node in self._parents:
                node = self._parents[node]
                if node in seen:
                    raise ValueError(f"cycle in taxonomy at {node!r}")
                seen.add(node)
                path.append(node)
            self._paths[leaf] = path
            depths.add(len(path))
        if len(depths) != 1:
            raise ValueError(
                "all leaves must have the same taxonomy depth; got depths "
                f"{sorted(depths)}"
            )
        self._depth = depths.pop()
        # Precompute leaves under each internal node.
        self._leaves_under: dict[Hashable, set[Hashable]] = {}
        for leaf, path in self._paths.items():
            for node in path:
                self._leaves_under.setdefault(node, set()).add(leaf)

    @property
    def levels(self) -> int:
        # level 0..depth-1 walk up the tree; one extra level suppresses fully.
        return self._depth + 1

    def generalize(self, value: Hashable, level: int) -> GeneralizedValue:
        self._check_level(level)
        self._check_value(value)
        if level == 0:
            return GeneralizedValue.raw(value)
        if level == self.levels - 1:
            return self.suppressed()
        node = self._paths[value][level]
        return GeneralizedValue(str(node), self._leaves_under[node])


def default_hierarchy(domain: Domain) -> GeneralizationHierarchy:
    """A sensible hierarchy when none is configured.

    Integers get a nested-interval ladder, everything else plain
    suppression.  Anonymizers use this fallback so callers only need to
    configure hierarchies for attributes where structure matters.
    """
    if isinstance(domain, IntegerDomain):
        return IntervalHierarchy(domain)
    return SuppressionHierarchy(domain)
