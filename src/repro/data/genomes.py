"""Synthetic SNP allele panels — stand-in for the Homer et al. genomic data.

Homer et al. (paper, Section 1) showed that publishing *aggregate* allele
frequencies of a case group (a GWAS "mixture") lets an adversary who has a
target's genotype decide whether the target was in the case group.  The test
compares, SNP by SNP, whether the target's alleles sit closer to the case
frequencies or to the reference-population frequencies.

The attack needs only the statistical structure this generator reproduces:
many independent biallelic SNPs with population frequencies drawn from a
roughly uniform spectrum, and individuals sampled as Binomial(2, f) minor
allele counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngSeed, ensure_rng


@dataclass(frozen=True)
class GenomePanelConfig:
    """Parameters of the synthetic SNP panel.

    Attributes:
        snps: number of biallelic SNPs (independent by construction).
        frequency_range: minor-allele population frequencies are uniform in
            this open interval (extremes excluded so every SNP is
            informative).
    """

    snps: int = 5_000
    frequency_range: tuple[float, float] = (0.05, 0.5)

    def __post_init__(self) -> None:
        low, high = self.frequency_range
        if not 0.0 < low < high < 1.0:
            raise ValueError("frequency_range must satisfy 0 < low < high < 1")
        if self.snps <= 0:
            raise ValueError("need at least one SNP")


class GenomePanel:
    """Population allele frequencies plus a genotype sampler."""

    def __init__(self, frequencies: np.ndarray):
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D array")
        if np.any((frequencies <= 0) | (frequencies >= 1)):
            raise ValueError("population frequencies must lie strictly in (0, 1)")
        self.frequencies = frequencies

    @property
    def snps(self) -> int:
        """Number of SNPs in the panel."""
        return int(self.frequencies.size)

    @classmethod
    def generate(
        cls, config: GenomePanelConfig = GenomePanelConfig(), rng: RngSeed = None
    ) -> "GenomePanel":
        """Draw population minor-allele frequencies for a fresh panel."""
        generator = ensure_rng(rng)
        low, high = config.frequency_range
        return cls(generator.uniform(low, high, size=config.snps))

    def sample_genotypes(self, count: int, rng: RngSeed = None) -> np.ndarray:
        """Sample ``count`` individuals as minor-allele counts in {0, 1, 2}.

        Returns an array of shape ``(count, snps)``; each entry is
        Binomial(2, f_j) under Hardy-Weinberg equilibrium.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        generator = ensure_rng(rng)
        return generator.binomial(2, self.frequencies, size=(count, self.snps))

    def aggregate_frequencies(self, genotypes: np.ndarray) -> np.ndarray:
        """The published statistic: per-SNP mean allele frequency of a cohort.

        This is the "aggregate genomic data" of the paper — a single vector
        of SNP frequencies for, e.g., the case group of a study.
        """
        genotypes = np.asarray(genotypes)
        if genotypes.ndim != 2 or genotypes.shape[1] != self.snps:
            raise ValueError(f"genotypes must have shape (m, {self.snps})")
        if genotypes.shape[0] == 0:
            raise ValueError("cohort must be non-empty")
        return genotypes.mean(axis=0) / 2.0
