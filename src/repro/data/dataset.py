"""Immutable datasets: the ``x = (x_1, ..., x_n)`` of the paper.

A :class:`Dataset` couples a :class:`~repro.data.schema.Schema` with a tuple
of records.  Records stay plain tuples internally (cheap, hashable); the
:class:`Record` wrapper adds name-based access for predicate code, which is
how the paper's predicates ``p : X -> {0,1}`` are written here.

Datasets are *immutable*: anonymizers, mechanisms and attacks all return new
datasets, which keeps the provenance of each experiment auditable.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.schema import Schema


class Record:
    """A single row with attribute-name access.

    Records compare equal (and hash) by their underlying value tuple, so two
    records with the same field values are interchangeable — matching the
    paper's convention that predicates act on record *values*, never on
    positions in the dataset.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: tuple):
        self._schema = schema
        self._values = values

    @property
    def schema(self) -> Schema:
        """The schema this record conforms to."""
        return self._schema

    @property
    def values(self) -> tuple:
        """The raw value tuple in schema order."""
        return self._values

    def __getitem__(self, name: str) -> object:
        return self._values[self._schema.index_of(name)]

    def get(self, name: str, default: object = None) -> object:
        """Value of attribute ``name``, or ``default`` when absent."""
        if name in self._schema:
            return self[name]
        return default

    def as_dict(self) -> dict[str, object]:
        """The record as an attribute-name -> value mapping."""
        return dict(zip(self._schema.names, self._values))

    def replace(self, **updates: object) -> "Record":
        """A copy of the record with the named attributes changed."""
        values = list(self._values)
        for name, value in updates.items():
            values[self._schema.index_of(name)] = value
        return Record(self._schema, tuple(values))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Record):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={v!r}" for n, v in zip(self._schema.names, self._values))
        return f"Record({fields})"


class Dataset:
    """An immutable ordered collection of records over a shared schema."""

    def __init__(self, schema: Schema, records: Iterable[Sequence[object]], validate: bool = True):
        self.schema = schema
        rows: list[tuple] = []
        for record in records:
            values = record.values if isinstance(record, Record) else tuple(record)
            if validate:
                schema.validate_record(values)
            rows.append(values)
        self._rows: tuple[tuple, ...] = tuple(rows)
        self._column_cache: dict[str, tuple] = {}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: Schema, rows: Iterable[Mapping[str, object]]) -> "Dataset":
        """Build a dataset from attribute-name -> value mappings."""
        names = schema.names
        return cls(schema, (tuple(row[name] for name in names) for row in rows))

    # -- basic access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Record]:
        return (Record(self.schema, values) for values in self._rows)

    def __getitem__(self, index: int) -> Record:
        return Record(self.schema, self._rows[index])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Dataset)
            and self.schema == other.schema
            and self._rows == other._rows
        )

    def __hash__(self) -> int:
        return hash((self.schema, self._rows))

    @property
    def rows(self) -> tuple[tuple, ...]:
        """The raw value tuples (schema order), one per record."""
        return self._rows

    def column(self, name: str) -> tuple:
        """All values of attribute ``name``, in row order (cached)."""
        cached = self._column_cache.get(name)
        if cached is None:
            index = self.schema.index_of(name)
            cached = tuple(row[index] for row in self._rows)
            self._column_cache[name] = cached
        return cached

    # -- relational-ish operations ----------------------------------------------

    def project(self, names: Sequence[str]) -> "Dataset":
        """Keep only the attributes in ``names`` (in the given order)."""
        projected_schema = self.schema.project(names)
        indices = [self.schema.index_of(name) for name in names]
        return Dataset(
            projected_schema,
            (tuple(row[i] for i in indices) for row in self._rows),
            validate=False,
        )

    def drop(self, names: Sequence[str]) -> "Dataset":
        """Remove the attributes in ``names`` (e.g. redact direct identifiers)."""
        keep = [name for name in self.schema.names if name not in set(names)]
        # Validate the drop list eagerly so typos don't silently keep columns.
        self.schema.drop(names)
        return self.project(keep)

    def filter(self, condition: Callable[[Record], bool]) -> "Dataset":
        """Records satisfying ``condition``, as a new dataset."""
        return Dataset(
            self.schema,
            (row for row in self._rows if condition(Record(self.schema, row))),
            validate=False,
        )

    def count(self, condition: Callable[[Record], bool]) -> int:
        """Number of records satisfying ``condition`` (the paper's M#q)."""
        return sum(1 for row in self._rows if condition(Record(self.schema, row)))

    # -- batched predicate evaluation ---------------------------------------------

    def conditions_mask(self, conditions: Mapping[str, frozenset]) -> np.ndarray:
        """Boolean row mask for a conjunction of per-attribute allowed sets.

        One set-membership pass per mentioned column — no per-row
        :class:`Record` objects, no Python call stack through predicate
        closures.  This is the batched evaluation path for structural
        predicates (:class:`~repro.core.predicate.Predicate` with
        ``conditions``).
        """
        mask = np.ones(len(self._rows), dtype=bool)
        for name, allowed in conditions.items():
            if not isinstance(allowed, (set, frozenset)):
                allowed = frozenset(allowed)
            column = self.column(name)
            mask &= np.fromiter(
                (value in allowed for value in column), dtype=bool, count=len(column)
            )
            if not mask.any():
                break
        return mask

    def match_mask(self, predicate: Callable[[Record], bool]) -> np.ndarray:
        """Boolean row mask of predicate matches.

        Predicates exposing a ``match_mask(dataset)`` method (structured
        :class:`~repro.core.predicate.Predicate` instances) are evaluated
        batched; arbitrary callables fall back to a per-record loop.
        """
        batched = getattr(predicate, "match_mask", None)
        if batched is not None:
            return batched(self)
        return np.fromiter(
            (bool(predicate(Record(self.schema, row))) for row in self._rows),
            dtype=bool,
            count=len(self._rows),
        )

    def match_count(self, predicate: Callable[[Record], bool]) -> int:
        """``sum_i p(x_i)`` via the batched evaluation path."""
        return int(np.count_nonzero(self.match_mask(predicate)))

    def replace_records(self, records: Iterable[Sequence[object]]) -> "Dataset":
        """A dataset with the same schema and new records (unvalidated schema swap)."""
        return Dataset(self.schema, records, validate=False)

    # -- grouping / statistics ---------------------------------------------------

    def value_counts(self, name: str) -> Counter:
        """Multiplicity of each value of attribute ``name``."""
        return Counter(self.column(name))

    def group_by(self, names: Sequence[str]) -> dict[tuple, list[int]]:
        """Row indices grouped by their values on the attributes ``names``.

        This is the *equivalence class* structure of the k-anonymity
        literature: each key is a combination of values on ``names``, each
        value the indices of rows sharing it.
        """
        indices = [self.schema.index_of(name) for name in names]
        groups: dict[tuple, list[int]] = defaultdict(list)
        for row_number, row in enumerate(self._rows):
            groups[tuple(row[i] for i in indices)].append(row_number)
        return dict(groups)

    def multiplicity(self, record: Sequence[object] | Record) -> int:
        """How many rows equal ``record`` exactly."""
        values = record.values if isinstance(record, Record) else tuple(record)
        return sum(1 for row in self._rows if row == values)

    def unique_fraction(self, names: Sequence[str]) -> float:
        """Fraction of rows whose ``names``-projection is unique in the data.

        This is Sweeney's uniqueness statistic: with
        ``names = ("zip", "birthdate", "sex")`` it measures how much of the
        population is singled out by that quasi-identifier combination.
        """
        if not self._rows:
            raise ValueError("uniqueness of an empty dataset is undefined")
        groups = self.group_by(names)
        unique_rows = sum(len(rows) for rows in groups.values() if len(rows) == 1)
        return unique_rows / len(self._rows)

    def head(self, count: int = 5) -> "Dataset":
        """The first ``count`` records (for display)."""
        return Dataset(self.schema, self._rows[:count], validate=False)

    def __repr__(self) -> str:
        return f"Dataset({len(self)} records, schema={self.schema.names})"
