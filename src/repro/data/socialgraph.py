"""Synthetic social graphs — stand-in for the anonymized network releases.

Backstrom, Dwork and Kleinberg (paper, Section 1, [10]) "extended
re-identification to the setting of social graphs": releasing a social
network with node identities stripped does not anonymize it, because graph
structure itself is identifying.  The real targets were social-network
dumps; we generate preferential-attachment graphs, whose heavy-tailed
degrees and local clustering carry the structural identifiability the
attacks (passive and active) exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.utils.rng import RngSeed, ensure_rng


@dataclass(frozen=True)
class SocialGraphConfig:
    """Parameters of the synthetic social network.

    Attributes:
        nodes: number of members.
        attachment: edges added per new node (Barabasi-Albert ``m``); sets
            the mean degree to about ``2 * attachment``.
    """

    nodes: int = 1_000
    attachment: int = 6

    def __post_init__(self) -> None:
        if self.nodes <= 2:
            raise ValueError("need at least three nodes")
        if not 1 <= self.attachment < self.nodes:
            raise ValueError("attachment must lie in [1, nodes)")


def generate_social_graph(
    config: SocialGraphConfig = SocialGraphConfig(), rng: RngSeed = None
) -> nx.Graph:
    """A preferential-attachment graph with integer node ids ``0..n-1``."""
    generator = ensure_rng(rng)
    seed = int(generator.integers(0, 2**31 - 1))
    return nx.barabasi_albert_graph(config.nodes, config.attachment, seed=seed)


def anonymize_graph(
    graph: nx.Graph, rng: RngSeed = None
) -> tuple[nx.Graph, dict]:
    """The naive release: strip identities by randomly relabeling nodes.

    Returns ``(released_graph, identity)`` where
    ``identity[original_node] = released_label``; the attacker never sees
    the map — it is the experiment's ground truth.
    """
    generator = ensure_rng(rng)
    nodes = list(graph.nodes())
    labels = list(range(len(nodes)))
    generator.shuffle(labels)
    identity = dict(zip(nodes, labels))
    return nx.relabel_nodes(graph, identity, copy=True), identity
