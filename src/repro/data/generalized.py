"""Generalized (anonymized) datasets — the ``x'`` of the paper's Section 1.1.

A k-anonymizer consumes a raw :class:`~repro.data.dataset.Dataset` and emits
a :class:`GeneralizedDataset`: same schema, but every field is a
:class:`~repro.data.hierarchy.GeneralizedValue` (raw fields appear as
singleton cover sets).  Keeping cover sets around — instead of opaque strings
like ``"1234*"`` — is what lets the PSO attacker of Theorem 2.10 turn an
equivalence class directly into a predicate over *raw* records.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from repro.data.dataset import Dataset, Record
from repro.data.hierarchy import GeneralizedValue
from repro.data.schema import Schema


class GeneralizedRecord:
    """One anonymized row: a tuple of generalized values in schema order."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Sequence[GeneralizedValue]):
        if len(values) != len(schema):
            raise ValueError(
                f"record has {len(values)} fields, schema has {len(schema)}"
            )
        for value in values:
            if not isinstance(value, GeneralizedValue):
                raise TypeError(
                    f"generalized records hold GeneralizedValue fields, got "
                    f"{type(value).__name__}"
                )
        self._schema = schema
        self._values: tuple[GeneralizedValue, ...] = tuple(values)

    @property
    def schema(self) -> Schema:
        """The schema this record conforms to."""
        return self._schema

    @property
    def values(self) -> tuple[GeneralizedValue, ...]:
        """The generalized values in schema order."""
        return self._values

    def __getitem__(self, name: str) -> GeneralizedValue:
        return self._values[self._schema.index_of(name)]

    def matches(self, record: Record | Sequence[object]) -> bool:
        """Whether a raw record is consistent with this generalized row.

        True iff every attribute's raw value lies in the corresponding cover
        set.  This is the membership test underlying the equivalence-class
        predicates of Theorem 2.10.
        """
        raw = record.values if isinstance(record, Record) else tuple(record)
        if len(raw) != len(self._values):
            return False
        return all(gv.matches(v) for gv, v in zip(self._values, raw))

    @classmethod
    def from_raw(cls, record: Record) -> "GeneralizedRecord":
        """Wrap a raw record as singleton generalized values (no coarsening)."""
        return cls(record.schema, [GeneralizedValue.raw(v) for v in record.values])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GeneralizedRecord) and self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __iter__(self) -> Iterator[GeneralizedValue]:
        return iter(self._values)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{n}={v.label}" for n, v in zip(self._schema.names, self._values)
        )
        return f"GeneralizedRecord({fields})"


class GeneralizedDataset:
    """An anonymized release: generalized records plus provenance metadata.

    Attributes:
        schema: the (unchanged) schema of the underlying data.
        suppressed_count: records the anonymizer dropped entirely (outlier
            suppression), so utility metrics can account for them.
    """

    def __init__(
        self,
        schema: Schema,
        records: Iterable[GeneralizedRecord],
        suppressed_count: int = 0,
    ):
        self.schema = schema
        self._records: tuple[GeneralizedRecord, ...] = tuple(records)
        if suppressed_count < 0:
            raise ValueError("suppressed_count must be non-negative")
        self.suppressed_count = suppressed_count

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[GeneralizedRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> GeneralizedRecord:
        return self._records[index]

    # -- k-anonymity structure --------------------------------------------------

    def equivalence_classes(self) -> dict[tuple[GeneralizedValue, ...], list[int]]:
        """Row indices grouped by identical generalized rows.

        In the paper's words: the anonymized data "can [be] viewed as a
        collection of equivalence classes each of k or more records".
        """
        classes: dict[tuple[GeneralizedValue, ...], list[int]] = defaultdict(list)
        for index, record in enumerate(self._records):
            classes[record.values].append(index)
        return dict(classes)

    def class_sizes(self) -> list[int]:
        """Sizes of the equivalence classes, largest first."""
        return sorted((len(v) for v in self.equivalence_classes().values()), reverse=True)

    def smallest_class_size(self) -> int:
        """Size of the smallest equivalence class (the k the data achieves)."""
        if not self._records:
            raise ValueError("an empty release has no equivalence classes")
        return min(len(rows) for rows in self.equivalence_classes().values())

    def is_k_anonymous(self, k: int) -> bool:
        """Whether every record is identical to at least ``k - 1`` others."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not self._records:
            return True
        return self.smallest_class_size() >= k

    # -- consistency with the raw data ---------------------------------------------

    def is_consistent_with(self, dataset: Dataset) -> bool:
        """Whether this release could have come from ``dataset``.

        Tries the cheap row-aligned check first (Mondrian and Datafly
        preserve row order); when rows do not align — row-permuting
        anonymizers, or suppression — falls back to a greedy multiset cover
        (each raw record consumed by one generalized row).  The greedy
        matching is exact for the anonymizers in this library, whose rows
        each cover their own source record.
        """
        if len(self) + self.suppressed_count != len(dataset):
            return False
        if self.suppressed_count == 0 and all(
            generalized.matches(raw) for generalized, raw in zip(self._records, dataset)
        ):
            return True
        unmatched = list(dataset)
        for generalized in self._records:
            for i, raw in enumerate(unmatched):
                if generalized.matches(raw):
                    unmatched.pop(i)
                    break
            else:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"GeneralizedDataset({len(self)} records, "
            f"{self.suppressed_count} suppressed)"
        )
