"""Tabular microdata substrate.

The paper's attacks all operate on datasets ``x = (x_1, ..., x_n)`` of
records drawn from a data domain ``X``.  This subpackage provides that
substrate: typed attribute domains, schemas, an immutable :class:`Dataset`,
product data distributions (the i.i.d. data-generation model of Section 2.2),
generalization hierarchies for k-anonymization, and synthetic generators that
stand in for the paper's unavailable datasets (GIC medical records, Netflix
ratings, Census microdata — see DESIGN.md section 2).
"""

from repro.data.censusblocks import CensusConfig, commercial_database, generate_census
from repro.data.dataset import Dataset, Record
from repro.data.distributions import (
    AttributeDistribution,
    ProductDistribution,
    bernoulli_distribution,
    uniform_bits_distribution,
    uniform_bits_schema,
    uniform_distribution,
)
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord
from repro.data.genomes import GenomePanel, GenomePanelConfig
from repro.data.population import (
    PopulationConfig,
    generate_population,
    gic_release,
    population_distribution,
    voter_registry,
)
from repro.data.ratings import RatingsConfig, RatingsData, generate_ratings
from repro.data.socialgraph import SocialGraphConfig, anonymize_graph, generate_social_graph
from repro.data.domain import (
    CategoricalDomain,
    Domain,
    IntegerDomain,
    TupleDomain,
)
from repro.data.hierarchy import (
    GeneralizationHierarchy,
    IntervalHierarchy,
    SuppressionHierarchy,
    TaxonomyHierarchy,
    ZipPrefixHierarchy,
)
from repro.data.schema import Attribute, AttributeKind, Schema

__all__ = [
    "Attribute",
    "AttributeDistribution",
    "AttributeKind",
    "CategoricalDomain",
    "CensusConfig",
    "Dataset",
    "Domain",
    "GeneralizationHierarchy",
    "GeneralizedDataset",
    "GeneralizedRecord",
    "GenomePanel",
    "GenomePanelConfig",
    "IntegerDomain",
    "IntervalHierarchy",
    "PopulationConfig",
    "ProductDistribution",
    "RatingsConfig",
    "RatingsData",
    "Record",
    "Schema",
    "SocialGraphConfig",
    "SuppressionHierarchy",
    "TaxonomyHierarchy",
    "TupleDomain",
    "ZipPrefixHierarchy",
    "bernoulli_distribution",
    "commercial_database",
    "generate_census",
    "generate_population",
    "generate_ratings",
    "gic_release",
    "population_distribution",
    "uniform_bits_distribution",
    "uniform_bits_schema",
    "anonymize_graph",
    "generate_social_graph",
    "uniform_distribution",
    "voter_registry",
]
