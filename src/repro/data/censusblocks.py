"""Block-level census microdata — stand-in for the 2010 Decennial Census.

The paper reports that reconstruction of the 2010 Census tables recovered
exact (sex, race, ethnicity, block, age +-1) records for 71% of the US
population, and that linking with commercial databases re-identified 17% —
against a prior Bureau estimate of 0.003%.

We cannot use the real data, but the attack depends only on the *constraint
structure* of the published tables: each census block is small, and the
Bureau publishes several overlapping marginal tables per block, which
together often pin down the block's microdata almost uniquely.  This module
generates block-level person records; :mod:`repro.reconstruction.tabulation`
publishes the tables; :mod:`repro.reconstruction.census_solver` inverts them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import Dataset
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.utils.rng import RngSeed, ensure_rng

#: Race categories (collapsed to four to keep per-block solves fast).
RACES: tuple[str, ...] = ("White", "Black", "Asian", "Other")

#: Hispanic-origin ethnicity flag, as in the PL 94-171 tables.
ETHNICITIES: tuple[str, ...] = ("Hispanic", "NonHispanic")

#: Sexes, as tabulated.
SEXES: tuple[str, ...] = ("F", "M")


@dataclass(frozen=True)
class CensusConfig:
    """Parameters of the synthetic census geography.

    Attributes:
        blocks: number of census blocks.
        mean_block_size: mean persons per block (geometric-ish; real census
            blocks are small — tens of people — which is what makes
            reconstruction so effective).
        max_block_size: hard cap on block population.
        age_range: inclusive (low, high) ages.
    """

    blocks: int = 24
    mean_block_size: int = 12
    max_block_size: int = 40
    age_range: tuple[int, int] = (0, 89)

    def __post_init__(self) -> None:
        if self.blocks <= 0:
            raise ValueError("need at least one block")
        if not 1 <= self.mean_block_size <= self.max_block_size:
            raise ValueError("mean_block_size must lie in [1, max_block_size]")
        low, high = self.age_range
        if not 0 <= low <= high:
            raise ValueError("age_range must satisfy 0 <= low <= high")


def census_schema(config: CensusConfig = CensusConfig()) -> Schema:
    """Schema of the synthetic census person records.

    ``person_id`` is ground truth for scoring (never published).  ``block``
    is the geography; (sex, age, race, ethnicity) are the attributes the
    2010 reconstruction recovered.
    """
    low, high = config.age_range
    return Schema(
        [
            Attribute(
                "person_id",
                CategoricalDomain(range(config.blocks * config.max_block_size)),
                AttributeKind.IDENTIFIER,
            ),
            Attribute(
                "block",
                CategoricalDomain(range(config.blocks)),
                AttributeKind.QUASI_IDENTIFIER,
            ),
            Attribute("sex", CategoricalDomain(SEXES), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(low, high), AttributeKind.QUASI_IDENTIFIER),
            Attribute("race", CategoricalDomain(RACES), AttributeKind.SENSITIVE),
            Attribute(
                "ethnicity", CategoricalDomain(ETHNICITIES), AttributeKind.SENSITIVE
            ),
        ]
    )


def generate_census(config: CensusConfig = CensusConfig(), rng: RngSeed = None) -> Dataset:
    """Sample the synthetic census microdata.

    Block sizes are geometric with the configured mean (clipped to
    ``[1, max_block_size]``); ages follow a flattened pyramid; race and
    ethnicity marginals are fixed to plausible shares.  Attributes are
    sampled independently within a block.
    """
    generator = ensure_rng(rng)
    schema = census_schema(config)
    low, high = config.age_range
    ages = list(range(low, high + 1))
    # A gently decreasing age profile: younger cohorts slightly larger.
    age_weights = [1.0 - 0.5 * (a - low) / max(1, high - low) for a in ages]
    total = sum(age_weights)
    age_probs = [w / total for w in age_weights]
    race_probs = [0.62, 0.14, 0.08, 0.16]
    ethnicity_probs = [0.18, 0.82]

    rows: list[tuple] = []
    person_id = 0
    for block in range(config.blocks):
        size = int(generator.geometric(1.0 / config.mean_block_size))
        size = max(1, min(size, config.max_block_size))
        for _ in range(size):
            sex = SEXES[int(generator.integers(0, 2))]
            age = int(generator.choice(ages, p=age_probs))
            race = str(generator.choice(RACES, p=race_probs))
            ethnicity = str(generator.choice(ETHNICITIES, p=ethnicity_probs))
            rows.append((person_id, block, sex, age, race, ethnicity))
            person_id += 1
    return Dataset(schema, rows, validate=False)


def commercial_database(
    census: Dataset,
    coverage: float = 0.6,
    age_error: int = 1,
    rng: RngSeed = None,
) -> Dataset:
    """A synthetic commercial/marketing file used for re-identification.

    Covers a random ``coverage`` fraction of the population with (person_id,
    block, sex, age) where age carries up to ``age_error`` years of error —
    the paper's "commercial databases that were available in 2010".  Race
    and ethnicity are *absent*: learning them is what makes the linkage a
    disclosure.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must lie in (0, 1], got {coverage}")
    generator = ensure_rng(rng)
    projected = census.project(["person_id", "block", "sex", "age"])
    count = max(1, round(coverage * len(projected)))
    chosen = sorted(generator.choice(len(projected), size=count, replace=False))
    age_index = projected.schema.index_of("age")
    age_domain = projected.schema.attribute("age").domain
    rows = []
    for i in chosen:
        row = list(projected.rows[i])
        noise = int(generator.integers(-age_error, age_error + 1))
        row[age_index] = int(
            min(max(row[age_index] + noise, age_domain.low), age_domain.high)  # type: ignore[attr-defined]
        )
        rows.append(tuple(row))
    return Dataset(projected.schema, rows, validate=False)
