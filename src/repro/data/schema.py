"""Schemas: named, typed, privacy-annotated attribute lists.

The privacy annotations (:class:`AttributeKind`) encode the vocabulary of the
re-identification literature the paper builds on: *direct identifiers* (name,
SSN — what HIPAA safe harbor redacts), *quasi-identifiers* (ZIP, birth date,
sex — Sweeney's linkage keys), and *sensitive* attributes (diagnosis — what
the attacker is after).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

from repro.data.domain import Domain, TupleDomain


class AttributeKind(Enum):
    """Privacy role of an attribute, following the k-anonymity literature."""

    IDENTIFIER = "identifier"  #: directly identifying (name, SSN); redacted on release
    QUASI_IDENTIFIER = "quasi-identifier"  #: linkable in combination (ZIP, DOB, sex)
    SENSITIVE = "sensitive"  #: the secret the attacker targets (diagnosis)
    INSENSITIVE = "insensitive"  #: neither identifying nor secret


@dataclass(frozen=True)
class Attribute:
    """A named, typed column with a privacy role."""

    name: str
    domain: Domain
    kind: AttributeKind = AttributeKind.INSENSITIVE

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")


class Schema:
    """An ordered collection of attributes; the type of a record.

    Records are plain tuples aligned with the schema's attribute order;
    :class:`~repro.data.dataset.Record` provides name-based access on top.
    """

    def __init__(self, attributes: Sequence[Attribute]):
        if not attributes:
            raise ValueError("a schema needs at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        self._index = {attribute.name: i for i, attribute in enumerate(attributes)}

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(attribute.name for attribute in self.attributes)

    def index_of(self, name: str) -> int:
        """Column index of the attribute called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no attribute named {name!r} in schema {self.names}") from None

    def attribute(self, name: str) -> Attribute:
        """The attribute called ``name``."""
        return self.attributes[self.index_of(name)]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def names_of_kind(self, kind: AttributeKind) -> tuple[str, ...]:
        """Names of all attributes with privacy role ``kind``."""
        return tuple(a.name for a in self.attributes if a.kind == kind)

    @property
    def identifiers(self) -> tuple[str, ...]:
        """Direct identifier attribute names."""
        return self.names_of_kind(AttributeKind.IDENTIFIER)

    @property
    def quasi_identifiers(self) -> tuple[str, ...]:
        """Quasi-identifier attribute names."""
        return self.names_of_kind(AttributeKind.QUASI_IDENTIFIER)

    @property
    def sensitive(self) -> tuple[str, ...]:
        """Sensitive attribute names."""
        return self.names_of_kind(AttributeKind.SENSITIVE)

    def record_domain(self) -> TupleDomain:
        """The product domain ``X`` that records of this schema live in."""
        return TupleDomain([attribute.domain for attribute in self.attributes])

    def validate_record(self, record: Sequence[object]) -> None:
        """Raise ``ValueError`` when ``record`` does not fit the schema."""
        if len(record) != len(self.attributes):
            raise ValueError(
                f"record has {len(record)} fields, schema has {len(self.attributes)}"
            )
        for value, attribute in zip(record, self.attributes):
            if value not in attribute.domain:
                raise ValueError(
                    f"value {value!r} is outside the domain of attribute "
                    f"{attribute.name!r}"
                )

    def project(self, names: Sequence[str]) -> "Schema":
        """A schema containing only the attributes in ``names`` (in that order)."""
        return Schema([self.attribute(name) for name in names])

    def drop(self, names: Sequence[str]) -> "Schema":
        """A schema with the attributes in ``names`` removed."""
        remove = set(names)
        missing = remove - set(self.names)
        if missing:
            raise KeyError(f"cannot drop unknown attributes: {sorted(missing)}")
        return Schema([a for a in self.attributes if a.name not in remove])

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.kind.value}" for a in self.attributes)
        return f"Schema({cols})"
