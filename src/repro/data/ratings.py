"""Sparse user-item ratings — stand-in for the Netflix Prize dataset.

Narayanan and Shmatikov (paper, Section 1) showed that the movies a
subscriber rated, plus approximate rating dates, make the subscriber nearly
unique in the Netflix release, so partial knowledge from IMDb re-identifies
them.  The attack depends on two structural properties this generator
reproduces:

* **sparsity** — each user rates a tiny fraction of the catalogue, and
* **a long-tailed popularity distribution** — most ratings concentrate on a
  few blockbusters while rare movies carry high identifying weight.

The generator emits a :class:`RatingsData` corpus plus helpers producing the
"anonymized release" (user ids replaced by pseudonyms) and the adversary's
auxiliary knowledge (a few of a target's ratings with noisy values/dates,
imitating cross-referenced IMDb reviews).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.utils.rng import RngSeed, ensure_rng


@dataclass(frozen=True)
class Rating:
    """One (movie, stars, day) observation."""

    movie: int
    stars: int
    day: int


@dataclass(frozen=True)
class RatingsConfig:
    """Parameters of the synthetic ratings corpus.

    Attributes:
        users: number of subscribers.
        movies: catalogue size.
        mean_ratings_per_user: Poisson mean of per-user profile length
            (clipped below at ``min_ratings_per_user``).
        min_ratings_per_user: profile length floor.
        popularity_exponent: Zipf exponent of the movie-popularity law.
        days: length of the observation window (rating dates are uniform).
    """

    users: int = 2_000
    movies: int = 1_000
    mean_ratings_per_user: float = 25.0
    min_ratings_per_user: int = 4
    popularity_exponent: float = 1.1
    days: int = 730

    def __post_init__(self) -> None:
        if self.users <= 0 or self.movies <= 1:
            raise ValueError("need at least one user and two movies")
        if self.mean_ratings_per_user <= 0:
            raise ValueError("mean_ratings_per_user must be positive")
        if self.min_ratings_per_user < 1:
            raise ValueError("min_ratings_per_user must be at least 1")
        if self.days <= 0:
            raise ValueError("days must be positive")


class RatingsData:
    """A ratings corpus: ``user id -> tuple of`` :class:`Rating`.

    User ids in the ground-truth corpus are integers ``0..users-1``; the
    anonymized release (:meth:`anonymized`) replaces them with shuffled
    pseudonyms, which is the disclosure-limitation step Netflix applied.
    """

    def __init__(self, profiles: Mapping[int, Sequence[Rating]], movies: int, days: int):
        if movies <= 0 or days <= 0:
            raise ValueError("movies and days must be positive")
        self.movies = movies
        self.days = days
        self._profiles: dict[int, tuple[Rating, ...]] = {
            user: tuple(ratings) for user, ratings in profiles.items()
        }
        for user, ratings in self._profiles.items():
            seen_movies = {r.movie for r in ratings}
            if len(seen_movies) != len(ratings):
                raise ValueError(f"user {user} rates some movie twice")

    @property
    def users(self) -> list[int]:
        """All user ids."""
        return sorted(self._profiles)

    def profile(self, user: int) -> tuple[Rating, ...]:
        """The ratings of ``user``."""
        return self._profiles[user]

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[tuple[int, tuple[Rating, ...]]]:
        return iter(sorted(self._profiles.items()))

    def total_ratings(self) -> int:
        """Number of (user, movie) observations in the corpus."""
        return sum(len(p) for p in self._profiles.values())

    def movie_popularity(self) -> np.ndarray:
        """Number of raters per movie (index = movie id)."""
        counts = np.zeros(self.movies, dtype=int)
        for ratings in self._profiles.values():
            for rating in ratings:
                counts[rating.movie] += 1
        return counts

    def anonymized(self, rng: RngSeed = None) -> tuple["RatingsData", dict[int, int]]:
        """The public release: pseudonymous ids, plus the secret id map.

        Returns ``(release, true_identity)`` where
        ``true_identity[pseudonym] = original user id`` (the ground truth
        the experiment uses to score re-identification; the attacker never
        sees it).
        """
        generator = ensure_rng(rng)
        originals = self.users
        pseudonyms = list(range(len(originals)))
        generator.shuffle(pseudonyms)
        release = {
            pseudonym: self._profiles[user]
            for pseudonym, user in zip(pseudonyms, originals)
        }
        identity = dict(zip(pseudonyms, originals))
        return RatingsData(release, self.movies, self.days), identity


def generate_ratings(config: RatingsConfig = RatingsConfig(), rng: RngSeed = None) -> RatingsData:
    """Sample a synthetic ratings corpus.

    Movie choice is Zipf by popularity rank; stars are drawn from a
    J-shaped marginal (4s and 5s dominate, as in the Netflix data); dates
    are uniform over the window.
    """
    generator = ensure_rng(rng)
    ranks = np.arange(1, config.movies + 1, dtype=float)
    popularity = ranks ** (-config.popularity_exponent)
    popularity /= popularity.sum()
    star_values = np.array([1, 2, 3, 4, 5])
    star_probs = np.array([0.05, 0.10, 0.20, 0.33, 0.32])

    profiles: dict[int, list[Rating]] = {}
    for user in range(config.users):
        length = max(
            config.min_ratings_per_user,
            int(generator.poisson(config.mean_ratings_per_user)),
        )
        length = min(length, config.movies)
        movies = generator.choice(config.movies, size=length, replace=False, p=popularity)
        stars = generator.choice(star_values, size=length, p=star_probs)
        days = generator.integers(0, config.days, size=length)
        profiles[user] = [
            Rating(int(m), int(s), int(d)) for m, s, d in zip(movies, stars, days)
        ]
    return RatingsData(profiles, config.movies, config.days)


@dataclass(frozen=True)
class AuxiliaryRating:
    """A noisy observation of one of the target's ratings (the IMDb side)."""

    movie: int
    stars: int | None  #: observed stars, or None when only "rated it" is known
    day: int | None  #: observed day +- noise, or None when unknown


def auxiliary_knowledge(
    data: RatingsData,
    user: int,
    known: int = 4,
    star_error: int = 1,
    day_error: int = 14,
    omit_stars: float = 0.0,
    omit_days: float = 0.0,
    rng: RngSeed = None,
) -> list[AuxiliaryRating]:
    """The adversary's partial, noisy view of a target's profile.

    Picks ``known`` of the user's ratings uniformly; perturbs stars by up to
    ``star_error`` and days by up to ``day_error`` (both uniform); and
    independently drops the star/day components with the ``omit_*``
    probabilities.  This mirrors the paper's "little partial knowledge about
    a subscriber's viewings and ratings" gathered from public IMDb reviews.
    """
    if known <= 0:
        raise ValueError("the adversary must know at least one rating")
    generator = ensure_rng(rng)
    profile = data.profile(user)
    if known > len(profile):
        raise ValueError(
            f"user {user} has only {len(profile)} ratings, cannot reveal {known}"
        )
    chosen = generator.choice(len(profile), size=known, replace=False)
    observations = []
    for index in chosen:
        rating = profile[index]
        stars: int | None
        day: int | None
        if generator.random() < omit_stars:
            stars = None
        else:
            stars = int(np.clip(rating.stars + generator.integers(-star_error, star_error + 1), 1, 5))
        if generator.random() < omit_days:
            day = None
        else:
            day = int(
                np.clip(rating.day + generator.integers(-day_error, day_error + 1), 0, data.days - 1)
            )
        observations.append(AuxiliaryRating(rating.movie, stars, day))
    return observations
