"""Synthetic population microdata — stand-in for the MA GIC / voter-file data.

Sweeney's attack (paper, Section 1) linked the Group Insurance Commission's
"de-identified" medical records to the Cambridge voter registration via the
quasi-identifier triple (ZIP code, birth date, sex).  The real files are not
available, so this module generates a population whose QI joint distribution
has the property the attack depends on: the triple is unique for the vast
majority of individuals while each attribute alone is common.

The generator draws every attribute independently from configurable
marginals, so :func:`population_distribution` can return the *exact*
:class:`~repro.data.distributions.ProductDistribution` the data came from —
which the PSO experiments need for exact predicate weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import Dataset
from repro.data.distributions import AttributeDistribution, ProductDistribution
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.utils.rng import RngSeed, ensure_rng

#: Disease taxonomy used for the sensitive attribute: leaf -> parent category.
#: Mirrors the paper's toy example where CF and Asthma generalize to PULM.
DISEASE_PARENTS: dict[str, str] = {
    "COVID": "RESP",
    "Flu": "RESP",
    "Asthma": "PULM",
    "CF": "PULM",
    "COPD": "PULM",
    "Diabetes-1": "ENDO",
    "Diabetes-2": "ENDO",
    "Thyroiditis": "ENDO",
    "Hypertension": "CARDIO",
    "Arrhythmia": "CARDIO",
    "CAD": "CARDIO",
    "Depression": "PSYCH",
    "Anxiety": "PSYCH",
    "RESP": "ANY",
    "PULM": "ANY",
    "ENDO": "ANY",
    "CARDIO": "ANY",
    "PSYCH": "ANY",
}

#: Leaves of the disease taxonomy (the raw sensitive values).
DISEASES: tuple[str, ...] = (
    "COVID",
    "Flu",
    "Asthma",
    "CF",
    "COPD",
    "Diabetes-1",
    "Diabetes-2",
    "Thyroiditis",
    "Hypertension",
    "Arrhythmia",
    "CAD",
    "Depression",
    "Anxiety",
)


@dataclass(frozen=True)
class PopulationConfig:
    """Parameters of the synthetic population.

    Attributes:
        size: number of individuals.
        zip_count: number of distinct 5-digit ZIP codes; population is spread
            over them with a Zipf profile (a few dense urban ZIPs, many
            sparse ones), which matters for uniqueness.
        zip_exponent: Zipf exponent of the ZIP marginal.
        birth_year_range: inclusive (low, high) birth years.
        disease_exponent: Zipf exponent of the disease marginal (common colds
            vs. rare conditions).
    """

    size: int = 10_000
    zip_count: int = 100
    zip_exponent: float = 1.0
    birth_year_range: tuple[int, int] = (1920, 2005)
    disease_exponent: float = 0.8

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("population size must be positive")
        if not 1 <= self.zip_count <= 90_000:
            raise ValueError("zip_count must lie in [1, 90000]")
        low, high = self.birth_year_range
        if low > high:
            raise ValueError("birth_year_range must be non-empty")


#: Quasi-identifier attribute names, in Sweeney's order.
QUASI_IDENTIFIERS: tuple[str, ...] = ("zip", "birth_year", "birth_doy", "sex")


def population_schema(config: PopulationConfig = PopulationConfig()) -> Schema:
    """Schema of the synthetic population.

    ``name`` is the direct identifier; (``zip``, ``birth_year``,
    ``birth_doy``, ``sex``) are the quasi-identifiers (birth date is split
    into year and day-of-year so integer hierarchies apply); ``disease`` is
    sensitive.
    """
    zips = _zip_domain(config.zip_count)
    low, high = config.birth_year_range
    return Schema(
        [
            Attribute("name", _name_domain(config.size), AttributeKind.IDENTIFIER),
            Attribute("zip", zips, AttributeKind.QUASI_IDENTIFIER),
            Attribute("birth_year", IntegerDomain(low, high), AttributeKind.QUASI_IDENTIFIER),
            Attribute("birth_doy", IntegerDomain(1, 365), AttributeKind.QUASI_IDENTIFIER),
            Attribute("sex", CategoricalDomain(["F", "M"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("disease", CategoricalDomain(DISEASES), AttributeKind.SENSITIVE),
        ]
    )


def population_distribution(config: PopulationConfig = PopulationConfig()) -> ProductDistribution:
    """The exact product distribution the generator samples from.

    The ``name`` marginal is uniform over the synthetic name universe; all
    other marginals match :func:`generate_population`.
    """
    schema = population_schema(config)
    marginals = {
        "name": AttributeDistribution.uniform(schema.attribute("name").domain),
        "zip": AttributeDistribution.zipf(schema.attribute("zip").domain, config.zip_exponent),
        "birth_year": AttributeDistribution.uniform(schema.attribute("birth_year").domain),
        "birth_doy": AttributeDistribution.uniform(schema.attribute("birth_doy").domain),
        "sex": AttributeDistribution.uniform(schema.attribute("sex").domain),
        "disease": AttributeDistribution.zipf(
            schema.attribute("disease").domain, config.disease_exponent
        ),
    }
    return ProductDistribution(schema, marginals)


def generate_population(
    config: PopulationConfig = PopulationConfig(), rng: RngSeed = None
) -> Dataset:
    """Sample a synthetic population of ``config.size`` individuals.

    Names are assigned as a random permutation of the name universe (each
    person gets a distinct name) — identity is exact, as in a voter file.
    """
    generator = ensure_rng(rng)
    distribution = population_distribution(config)
    sampled = distribution.sample(config.size, generator)
    # Replace the i.i.d.-sampled names with distinct ones: real identities
    # are unique even when everything else collides.
    name_domain = population_schema(config).attribute("name").domain
    names = list(name_domain)
    generator.shuffle(names)
    name_index = sampled.schema.index_of("name")
    rows = []
    for i, row in enumerate(sampled.rows):
        row = list(row)
        row[name_index] = names[i]
        rows.append(tuple(row))
    return Dataset(sampled.schema, rows, validate=False)


def gic_release(population: Dataset) -> Dataset:
    """The GIC-style "anonymized" release: direct identifiers redacted.

    This reproduces exactly the (failed) disclosure-limitation step the paper
    describes: names are removed, quasi-identifiers and the diagnosis stay.
    """
    return population.drop(list(population.schema.identifiers))


def voter_registry(
    population: Dataset, coverage: float = 0.8, rng: RngSeed = None
) -> Dataset:
    """The public identified dataset (Cambridge voter registration stand-in).

    Contains name plus the quasi-identifiers for a random ``coverage``
    fraction of the population — voters are a subset of residents.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must lie in (0, 1], got {coverage}")
    generator = ensure_rng(rng)
    keep = ["name", *QUASI_IDENTIFIERS]
    projected = population.project(keep)
    count = max(1, round(coverage * len(projected)))
    indices = generator.choice(len(projected), size=count, replace=False)
    rows = [projected.rows[i] for i in sorted(indices)]
    return Dataset(projected.schema, rows, validate=False)


def _zip_domain(zip_count: int) -> CategoricalDomain:
    """``zip_count`` synthetic 5-digit ZIP codes starting at 10000."""
    return CategoricalDomain([f"{10000 + i:05d}" for i in range(zip_count)])


def _name_domain(size: int) -> CategoricalDomain:
    """A universe of ``2 * size`` synthetic person names ("P000042")."""
    return CategoricalDomain([f"P{i:06d}" for i in range(2 * size)])
