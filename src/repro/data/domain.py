"""Attribute domains: the value universes records are built from.

A :class:`Domain` answers three questions the rest of the library needs:
membership ("is this a legal value?"), enumeration (for exact weight
computations and exhaustive attacks), and size.  Domains are deliberately
small, immutable value objects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Iterator, Sequence


class Domain(ABC):
    """Abstract value universe for a single attribute."""

    @abstractmethod
    def __contains__(self, value: object) -> bool:
        """Whether ``value`` is a member of the domain."""

    @abstractmethod
    def __iter__(self) -> Iterator[Hashable]:
        """Iterate the domain's values (raises for non-enumerable domains)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of values in the domain."""

    @property
    def is_enumerable(self) -> bool:
        """Whether the domain is small enough to iterate (default: yes)."""
        return True

    def validate(self, value: object) -> None:
        """Raise ``ValueError`` when ``value`` is outside the domain."""
        if value not in self:
            raise ValueError(f"{value!r} is not in {self}")


class CategoricalDomain(Domain):
    """A finite set of hashable category values, order-preserving.

    Example::

        sex = CategoricalDomain(["F", "M"])
    """

    def __init__(self, values: Iterable[Hashable]):
        ordered: list[Hashable] = []
        seen: set[Hashable] = set()
        for value in values:
            if value in seen:
                raise ValueError(f"duplicate domain value: {value!r}")
            seen.add(value)
            ordered.append(value)
        if not ordered:
            raise ValueError("a categorical domain needs at least one value")
        self._values: tuple[Hashable, ...] = tuple(ordered)
        self._value_set = seen

    @property
    def values(self) -> tuple[Hashable, ...]:
        """The domain's values in declaration order."""
        return self._values

    def index_of(self, value: Hashable) -> int:
        """Position of ``value`` in declaration order (for dense encodings)."""
        try:
            return self._values.index(value)
        except ValueError:
            raise ValueError(f"{value!r} is not in {self}") from None

    def __contains__(self, value: object) -> bool:
        return value in self._value_set

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CategoricalDomain) and self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:4])
        suffix = ", ..." if len(self._values) > 4 else ""
        return f"CategoricalDomain([{preview}{suffix}], size={len(self)})"


class IntegerDomain(Domain):
    """A contiguous integer range ``[low, high]`` (both inclusive).

    Example::

        age = IntegerDomain(0, 120)
    """

    def __init__(self, low: int, high: int):
        if low > high:
            raise ValueError(f"empty integer domain: [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def __contains__(self, value: object) -> bool:
        return isinstance(value, (int,)) and not isinstance(value, bool) and (
            self.low <= value <= self.high
        )

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.low, self.high + 1))

    def __len__(self) -> int:
        return self.high - self.low + 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntegerDomain)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:
        return f"IntegerDomain({self.low}, {self.high})"


class TupleDomain(Domain):
    """Cartesian product of component domains; the record domain ``X``.

    Enumerable only when the product of component sizes is modest (the
    exhaustive Dinur-Nissim attack and exact weight computations check
    :attr:`is_enumerable` before iterating).
    """

    #: Products above this size refuse to enumerate.
    MAX_ENUMERABLE = 2_000_000

    def __init__(self, components: Sequence[Domain]):
        if not components:
            raise ValueError("a tuple domain needs at least one component")
        self.components: tuple[Domain, ...] = tuple(components)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, tuple) or len(value) != len(self.components):
            return False
        return all(v in domain for v, domain in zip(value, self.components))

    def __len__(self) -> int:
        size = 1
        for domain in self.components:
            size *= len(domain)
        return size

    @property
    def is_enumerable(self) -> bool:
        return len(self) <= self.MAX_ENUMERABLE

    def __iter__(self) -> Iterator[tuple]:
        if not self.is_enumerable:
            raise ValueError(
                f"domain of size {len(self)} exceeds the enumeration cap "
                f"({self.MAX_ENUMERABLE})"
            )
        return self._product(0, ())

    def _product(self, index: int, prefix: tuple) -> Iterator[tuple]:
        if index == len(self.components):
            yield prefix
            return
        for value in self.components[index]:
            yield from self._product(index + 1, prefix + (value,))

    def __repr__(self) -> str:
        return f"TupleDomain({len(self.components)} components, size={len(self)})"
