"""Data distributions: the ``D`` of the paper's PSO game.

Section 2.2 of the paper models data generation as i.i.d. sampling from a
fixed distribution over the data universe, ``x ~ D^n``.  The workhorse here
is :class:`ProductDistribution` — independent per-attribute marginals — which
supports *exact* predicate-weight computation for structured predicates and
min-entropy bookkeeping (needed for the Leftover-Hash-Lemma predicate
constructions).
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset, Record
from repro.data.domain import CategoricalDomain, Domain, IntegerDomain
from repro.data.schema import Schema
from repro.utils.rng import RngSeed, ensure_rng


class AttributeDistribution:
    """A distribution over one attribute's domain.

    Stores explicit probabilities per domain value; helpers build uniform and
    Zipf-shaped instances.  Probabilities must sum to 1 (within tolerance).
    """

    def __init__(self, domain: Domain, probabilities: Mapping[Hashable, float]):
        if not domain.is_enumerable:
            raise ValueError("attribute distributions require enumerable domains")
        self.domain = domain
        values = list(domain)
        missing = [v for v in values if v not in probabilities]
        if missing:
            raise ValueError(f"missing probabilities for values: {missing[:5]}")
        extra = [v for v in probabilities if v not in domain]
        if extra:
            raise ValueError(f"probabilities given for non-domain values: {extra[:5]}")
        probs = np.array([probabilities[v] for v in values], dtype=float)
        if np.any(probs < 0):
            raise ValueError("probabilities must be non-negative")
        total = float(probs.sum())
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        self._values: list[Hashable] = values
        self._probs = probs

    # -- construction ----------------------------------------------------------

    @classmethod
    def uniform(cls, domain: Domain) -> "AttributeDistribution":
        """The uniform distribution over ``domain``."""
        values = list(domain)
        p = 1.0 / len(values)
        return cls(domain, {v: p for v in values})

    @classmethod
    def zipf(cls, domain: Domain, exponent: float = 1.0) -> "AttributeDistribution":
        """A Zipf-shaped distribution (rank ``r`` gets weight ``r**-exponent``).

        Long-tailed marginals are what make quasi-identifier combinations
        unique in practice; the population generator uses these.
        """
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        values = list(domain)
        weights = np.array([(rank + 1.0) ** (-exponent) for rank in range(len(values))])
        weights /= weights.sum()
        return cls(domain, dict(zip(values, weights)))

    # -- queries ---------------------------------------------------------------

    def probability(self, value: Hashable) -> float:
        """P(attribute = value); 0 for values outside the domain."""
        try:
            index = self._values.index(value)
        except ValueError:
            return 0.0
        return float(self._probs[index])

    def probability_of_set(self, values: Callable[[Hashable], bool] | set) -> float:
        """P(attribute in values); accepts a set or a membership callable."""
        if isinstance(values, (set, frozenset)):
            member = values.__contains__
        else:
            member = values
        return float(sum(p for v, p in zip(self._values, self._probs) if member(v)))

    def min_entropy(self) -> float:
        """Min-entropy ``-log2(max_v P(v))`` in bits."""
        return float(-np.log2(self._probs.max()))

    def sample(self, size: int, rng: RngSeed = None) -> list[Hashable]:
        """Draw ``size`` i.i.d. values."""
        generator = ensure_rng(rng)
        indices = generator.choice(len(self._values), size=size, p=self._probs)
        return [self._values[i] for i in indices]

    @property
    def support(self) -> list[Hashable]:
        """Values with non-zero probability."""
        return [v for v, p in zip(self._values, self._probs) if p > 0]

    def __repr__(self) -> str:
        return f"AttributeDistribution(domain={self.domain!r})"


class ProductDistribution:
    """Independent per-attribute marginals over a schema — the paper's ``D``.

    Record ``x = (x[a1], ..., x[ak])`` has each field drawn independently
    from its marginal.  Exactness matters: for conjunctive predicates the
    weight ``w_D(p) = Pr_{x~D}[p(x)=1]`` factors into per-attribute
    probabilities, which :meth:`conjunction_weight` computes in closed form —
    no Monte Carlo error in the experiments that rely on it.
    """

    def __init__(self, schema: Schema, marginals: Mapping[str, AttributeDistribution]):
        missing = [name for name in schema.names if name not in marginals]
        if missing:
            raise ValueError(f"missing marginals for attributes: {missing}")
        for name in schema.names:
            if marginals[name].domain != schema.attribute(name).domain:
                raise ValueError(f"marginal for {name!r} is over the wrong domain")
        self.schema = schema
        self.marginals = {name: marginals[name] for name in schema.names}
        self._cache_token: tuple | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def uniform(cls, schema: Schema) -> "ProductDistribution":
        """Uniform marginals on every attribute."""
        return cls(
            schema,
            {name: AttributeDistribution.uniform(schema.attribute(name).domain) for name in schema.names},
        )

    @property
    def cache_token(self) -> tuple:
        """A hashable identity token: schema names + full marginal tables.

        Two ``ProductDistribution`` instances with identical marginals get
        identical tokens, so caches keyed by this token (the Monte-Carlo
        weight-bound cache in :mod:`repro.core.predicate`) deduplicate
        across instances while distinct distributions can never collide.
        Computed once per instance and memoized.
        """
        if self._cache_token is None:
            self._cache_token = tuple(
                (
                    name,
                    tuple(self.marginals[name]._values),
                    tuple(float(p) for p in self.marginals[name]._probs),
                )
                for name in self.schema.names
            )
        return self._cache_token

    # -- sampling ----------------------------------------------------------------

    def sample_record(self, rng: RngSeed = None) -> Record:
        """Draw one record ``x ~ D``."""
        generator = ensure_rng(rng)
        values = tuple(
            self.marginals[name].sample(1, generator)[0] for name in self.schema.names
        )
        return Record(self.schema, values)

    def sample(self, n: int, rng: RngSeed = None) -> Dataset:
        """Draw a dataset ``x ~ D^n``."""
        if n < 0:
            raise ValueError("n must be non-negative")
        generator = ensure_rng(rng)
        columns = {name: self.marginals[name].sample(n, generator) for name in self.schema.names}
        records = (
            tuple(columns[name][i] for name in self.schema.names) for i in range(n)
        )
        return Dataset(self.schema, records, validate=False)

    # -- probabilities -------------------------------------------------------------

    def record_probability(self, record: Record | Sequence[object]) -> float:
        """P(x = record) under the product measure."""
        values = record.values if isinstance(record, Record) else tuple(record)
        probability = 1.0
        for name, value in zip(self.schema.names, values):
            probability *= self.marginals[name].probability(value)
        return probability

    def conjunction_weight(self, conditions: Mapping[str, set | Callable[[Hashable], bool]]) -> float:
        """Exact weight of a conjunctive predicate.

        ``conditions`` maps attribute names to allowed-value sets (or
        membership callables); attributes not mentioned are unconstrained.
        The weight is the product of the per-attribute set probabilities —
        exact because the marginals are independent.
        """
        unknown = [name for name in conditions if name not in self.schema]
        if unknown:
            raise KeyError(f"conditions reference unknown attributes: {unknown}")
        weight = 1.0
        for name, allowed in conditions.items():
            weight *= self.marginals[name].probability_of_set(allowed)
        return weight

    def estimate_weight(
        self,
        predicate: Callable[[Record], bool],
        samples: int = 20_000,
        rng: RngSeed = None,
    ) -> float:
        """Monte-Carlo weight estimate for arbitrary predicates."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        generator = ensure_rng(rng)
        data = self.sample(samples, generator)
        return data.match_count(predicate) / samples

    def min_entropy(self) -> float:
        """Min-entropy of a full record, in bits (sum of marginal min-entropies).

        This is the resource the Leftover Hash Lemma consumes when building
        negligible-weight predicates (paper, Section 2.2 and footnote 12).
        """
        return sum(marginal.min_entropy() for marginal in self.marginals.values())

    def __repr__(self) -> str:
        return f"ProductDistribution(schema={self.schema.names})"


def uniform_distribution(schema: Schema) -> ProductDistribution:
    """Shorthand for :meth:`ProductDistribution.uniform`."""
    return ProductDistribution.uniform(schema)


def bernoulli_schema(name: str = "bit") -> Schema:
    """The binary data domain X = {0,1} used by the reconstruction attacks."""
    from repro.data.schema import Attribute, AttributeKind

    return Schema([Attribute(name, IntegerDomain(0, 1), AttributeKind.SENSITIVE)])


def bernoulli_distribution(p: float = 0.5, name: str = "bit") -> ProductDistribution:
    """Distribution over {0,1} with P(1) = p (Dinur-Nissim data model)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0,1], got {p}")
    schema = bernoulli_schema(name)
    domain = schema.attribute(name).domain
    marginal = AttributeDistribution(domain, {0: 1.0 - p, 1: p})
    return ProductDistribution(schema, {name: marginal})


def categorical_uniform(name: str, values: Sequence[Hashable]) -> AttributeDistribution:
    """Uniform marginal over an ad-hoc categorical domain (test convenience)."""
    return AttributeDistribution.uniform(CategoricalDomain(values))


def uniform_bits_schema(width: int, prefix: str = "b") -> Schema:
    """A schema of ``width`` binary attributes (a {0,1}^d record domain)."""
    from repro.data.schema import Attribute, AttributeKind

    if width <= 0:
        raise ValueError("width must be positive")
    return Schema(
        [
            Attribute(f"{prefix}{i}", IntegerDomain(0, 1), AttributeKind.QUASI_IDENTIFIER)
            for i in range(width)
        ]
    )


def uniform_bits_distribution(width: int, prefix: str = "b") -> ProductDistribution:
    """Uniform distribution over {0,1}^width — min-entropy = width bits.

    The workhorse data model for PSO experiments: wide enough that
    hash-based predicates achieve their analytic weights (Leftover Hash
    Lemma regime) and that within-class attribute agreement makes
    k-anonymized class predicates negligible (Theorem 2.10's "typical
    dataset ... many more attributes" setting).
    """
    return ProductDistribution.uniform(uniform_bits_schema(width, prefix))
