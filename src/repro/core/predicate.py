"""First-class predicates ``p : X -> {0,1}`` and their weights.

The paper's attacker outputs a *predicate* over the data universe, and the
PSO definition turns on the predicate's **weight**
``w_D(p) = Pr_{x ~ D}[p(x) = 1]`` (Section 2.2).  Three routes to the
weight are supported, tried in order of exactness:

1. **Exact, structural** — a conjunctive predicate (per-attribute
   allowed-value sets) under a product distribution factorizes into
   marginal probabilities.
2. **Analytic** — hash-based predicates carry a design weight (e.g. the
   threshold of a hash cut, justified by the Leftover Hash Lemma).
3. **Monte Carlo** — anything else is estimated by sampling, with a
   Clopper-Pearson upper bound available for safe negligibility claims.

Conjunction (``p & q``) merges structure when it can (intersecting allowed
sets attribute-wise) so weights stay exact as predicates are refined — the
exact manipulation the Theorem 2.10 attacker performs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Mapping

import numpy as np

from repro.data.dataset import Dataset, Record
from repro.data.distributions import ProductDistribution
from repro.utils.rng import RngSeed, derive_rng, ensure_rng
from repro.utils.stats import clopper_pearson_interval

#: Structural form: attribute name -> frozenset of allowed raw values.
AttributeConditions = Mapping[str, frozenset]


# -- Monte-Carlo weight-bound cache ------------------------------------------------
#
# Repeated PSO trials against the same adversary keep asking for the weight
# bound of equivalent predicates, and the Monte-Carlo route re-samples
# 4k-20k records every time.  The cache below memoizes that route, keyed by
# predicate identity (its description), distribution identity
# (:meth:`ProductDistribution.cache_token`), and the sampling parameters.
# Cached values are computed with an RNG *derived from the key*, so each
# value is a pure function of its key: serial, threaded, and multi-process
# runs agree bit-for-bit no matter which worker populated the cache first.

_WEIGHT_BOUND_CACHE: OrderedDict[tuple, float] = OrderedDict()
_WEIGHT_BOUND_CACHE_LOCK = threading.Lock()
_WEIGHT_BOUND_CACHE_MAX = 4096
_WEIGHT_BOUND_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_weight_bound_cache() -> None:
    """Empty the Monte-Carlo weight-bound cache and reset its counters."""
    with _WEIGHT_BOUND_CACHE_LOCK:
        _WEIGHT_BOUND_CACHE.clear()
        _WEIGHT_BOUND_CACHE_STATS["hits"] = 0
        _WEIGHT_BOUND_CACHE_STATS["misses"] = 0


def weight_bound_cache_info() -> dict[str, int]:
    """Cache statistics: ``{"hits", "misses", "size"}`` (for benchmarks/tests)."""
    with _WEIGHT_BOUND_CACHE_LOCK:
        return {
            "hits": _WEIGHT_BOUND_CACHE_STATS["hits"],
            "misses": _WEIGHT_BOUND_CACHE_STATS["misses"],
            "size": len(_WEIGHT_BOUND_CACHE),
        }


def _cache_get(key: tuple) -> float | None:
    with _WEIGHT_BOUND_CACHE_LOCK:
        value = _WEIGHT_BOUND_CACHE.get(key)
        if value is None:
            _WEIGHT_BOUND_CACHE_STATS["misses"] += 1
            return None
        _WEIGHT_BOUND_CACHE.move_to_end(key)
        _WEIGHT_BOUND_CACHE_STATS["hits"] += 1
        return value


def _cache_put(key: tuple, value: float) -> None:
    with _WEIGHT_BOUND_CACHE_LOCK:
        _WEIGHT_BOUND_CACHE[key] = value
        _WEIGHT_BOUND_CACHE.move_to_end(key)
        while len(_WEIGHT_BOUND_CACHE) > _WEIGHT_BOUND_CACHE_MAX:
            _WEIGHT_BOUND_CACHE.popitem(last=False)


class Predicate:
    """A predicate over records, with optional structure for exact weights.

    Args:
        fn: the membership function (``Record -> bool``).
        description: human-readable rendering for reports.
        conditions: when the predicate is a conjunction of per-attribute
            set-membership tests, the attribute -> allowed-values mapping
            (enables exact weights under product distributions).
        analytic_weight: a *designed* weight for hash-style predicates whose
            exact weight is computationally inaccessible but known by
            construction (Leftover Hash Lemma); treated as exact by
            :meth:`weight_bound` for such predicates.
    """

    def __init__(
        self,
        fn: Callable[[Record], bool],
        description: str,
        conditions: AttributeConditions | None = None,
        analytic_weight: float | None = None,
        components: tuple["Predicate", ...] | None = None,
    ):
        self._fn = fn
        self.description = description
        self.conditions = (
            {name: frozenset(allowed) for name, allowed in conditions.items()}
            if conditions is not None
            else None
        )
        if analytic_weight is not None and not 0.0 <= analytic_weight <= 1.0:
            raise ValueError("analytic_weight must lie in [0, 1]")
        self.analytic_weight = analytic_weight
        #: For conjunctions: the conjuncts, so weight bounds can fall back to
        #: min over components instead of Monte Carlo.
        self.components = components

    def __call__(self, record: Record) -> bool:
        return bool(self._fn(record))

    def match_mask(self, dataset: Dataset) -> np.ndarray:
        """Boolean mask of matching rows — the batched evaluation path.

        Structural predicates evaluate column-wise without building
        :class:`Record` objects; conjunctions narrow the candidate set
        conjunct by conjunct, so expensive opaque conjuncts (hash
        refinements) only ever run on the few rows their structural
        siblings left alive; opaque predicates fall back to the function,
        applied only to still-candidate rows.
        """
        mask = np.ones(len(dataset), dtype=bool)
        self._narrow(dataset, mask)
        return mask

    def _narrow(self, dataset: Dataset, mask: np.ndarray) -> None:
        """Clear mask entries for rows this predicate rejects (in place)."""
        if self.conditions is not None:
            mask &= dataset.conditions_mask(self.conditions)
            return
        if self.components:
            for component in self.components:
                if not mask.any():
                    return
                component._narrow(dataset, mask)
            return
        for index in np.flatnonzero(mask):
            if not self._fn(dataset[int(index)]):
                mask[index] = False

    def __and__(self, other: "Predicate") -> "Predicate":
        """Conjunction; merges structure and analytic weights when sound.

        * two structural predicates merge attribute-wise (intersection);
        * analytic weights multiply — correct when the two predicates are
          independent under ``D`` (hash predicates with distinct salts are,
          by design), and an upper bound regardless of which conjunct is
          looser, so negligibility claims via :meth:`weight_bound` stay
          conservative through :func:`min` in the fallback path.
        """
        merged_conditions: dict[str, frozenset] | None = None
        if self.conditions is not None and other.conditions is not None:
            merged_conditions = dict(self.conditions)
            for name, allowed in other.conditions.items():
                if name in merged_conditions:
                    merged_conditions[name] = merged_conditions[name] & allowed
                else:
                    merged_conditions[name] = allowed

        analytic: float | None = None
        if self.analytic_weight is not None and other.analytic_weight is not None:
            analytic = self.analytic_weight * other.analytic_weight

        return Predicate(
            lambda record: self(record) and other(record),
            f"({self.description}) AND ({other.description})",
            conditions=merged_conditions,
            analytic_weight=analytic,
            components=(self, other),
        )

    # -- weights ------------------------------------------------------------------

    def weight(
        self,
        distribution: ProductDistribution,
        samples: int = 20_000,
        rng: RngSeed = None,
    ) -> float:
        """Best-available point value of ``w_D(p)``.

        Exact for structural predicates under product distributions; the
        analytic weight when one is attached; Monte Carlo otherwise.
        """
        if self.conditions is not None:
            return distribution.conjunction_weight(self.conditions)
        if self.analytic_weight is not None:
            return self.analytic_weight
        return distribution.estimate_weight(self, samples=samples, rng=rng)

    def weight_bound(
        self,
        distribution: ProductDistribution,
        samples: int = 20_000,
        confidence: float = 0.999,
        rng: RngSeed = None,
        cache: bool = True,
    ) -> float:
        """A safe *upper bound* on ``w_D(p)`` for negligibility claims.

        Exact and analytic weights are returned as-is; conjunctions without
        merged structure fall back to the minimum over their conjuncts'
        bounds (the paper's own argument: "the weight of p AND p' is bounded
        by the weight of p"); Monte-Carlo weights are replaced by their
        Clopper-Pearson upper confidence bound, so a lucky all-zeros sample
        cannot masquerade as weight zero.

        The Monte-Carlo route is memoized (``cache=True``) under a key of
        predicate description + distribution identity + sampling
        parameters, and the cached estimate is drawn with a key-derived
        RNG; ``rng`` only steers the computation when ``cache=False`` (or
        when the distribution exposes no identity token).  Key-derived
        sampling makes each cached value a pure function of its key, which
        is what keeps parallel and serial game runs bit-identical.
        """
        if self.conditions is not None:
            return distribution.conjunction_weight(self.conditions)
        if self.analytic_weight is not None:
            return self.analytic_weight
        if self.components:
            return min(
                component.weight_bound(distribution, samples, confidence, rng, cache)
                for component in self.components
            )
        key: tuple | None = None
        if cache:
            distribution_token = getattr(distribution, "cache_token", None)
            if distribution_token is not None:
                key = (self.description, distribution_token, int(samples), float(confidence))
                cached = _cache_get(key)
                if cached is not None:
                    return cached
        generator = derive_rng(0, "weight-bound", key) if key is not None else ensure_rng(rng)
        data = distribution.sample(samples, generator)
        successes = data.match_count(self)
        _lower, upper = clopper_pearson_interval(successes, samples, confidence)
        if key is not None:
            _cache_put(key, upper)
        return upper

    def __repr__(self) -> str:
        return f"Predicate({self.description!r})"


def attribute_predicate(name: str, allowed: frozenset | set | list | tuple | Hashable) -> Predicate:
    """The predicate "record's ``name`` lies in ``allowed``".

    ``allowed`` may be a single value or a collection.  Structural, so its
    weight is exact under product distributions.
    """
    if isinstance(allowed, (set, frozenset, list, tuple)):
        allowed_set = frozenset(allowed)
    else:
        allowed_set = frozenset([allowed])
    if not allowed_set:
        raise ValueError("allowed set must be non-empty")
    if len(allowed_set) == 1:
        (value,) = allowed_set
        label = f"{name} = {value!r}"
    else:
        label = f"{name} in {{{', '.join(sorted(repr(v) for v in allowed_set))}}}"
    return Predicate(
        lambda record: record[name] in allowed_set,
        label,
        conditions={name: allowed_set},
    )


def predicate_from_conditions(conditions: AttributeConditions) -> Predicate:
    """Conjunctive predicate from an attribute -> allowed-values mapping."""
    if not conditions:
        raise ValueError("need at least one condition")
    frozen = {name: frozenset(allowed) for name, allowed in conditions.items()}
    for name, allowed in frozen.items():
        if not allowed:
            raise ValueError(f"empty allowed set for attribute {name!r}")
    label = " AND ".join(
        f"{name} in {{{', '.join(sorted(repr(v) for v in allowed))}}}"
        for name, allowed in sorted(frozen.items())
    )
    return Predicate(
        lambda record: all(record[name] in allowed for name, allowed in frozen.items()),
        label,
        conditions=frozen,
    )


def generalized_record_predicate(generalized_record) -> Predicate:
    """The equivalence-class predicate of the Theorem 2.10 attack.

    Maps a :class:`~repro.data.generalized.GeneralizedRecord` to the
    conjunction "every attribute's raw value lies in the released cover
    set" — the paper's example is ``ZIP in {12340..12349} AND Age in
    {30..39} AND Disease in PULM``.  Structural, so exact-weight.
    """
    conditions = {
        name: frozenset(generalized_record[name].covers)
        for name in generalized_record.schema.names
    }
    return predicate_from_conditions(conditions)
