"""Mechanisms ``M : X^n -> Y`` for the PSO security game.

These wrap the library's substrates behind the single interface the game
(Definition 2.4) quantifies over.  The roster mirrors the paper's cast:

* :class:`CountMechanism` — the paper's ``M#q`` (Theorem 2.5);
* :class:`PostProcessedMechanism` — ``f(M(x))`` (Theorem 2.6);
* :class:`ComposedMechanism` — ``(M_1(x), ..., M_l(x))`` (Theorems 2.7/2.8);
* :class:`DPCountMechanism` — the Laplace count (Theorems 1.3 and 2.9);
* :class:`KAnonymityMechanism` — a k-anonymizer release (Theorem 2.10);
* :class:`ConstantMechanism` / :class:`IdentityMechanism` — the two
  privacy extremes, for calibrating experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.core.predicate import Predicate
from repro.data.dataset import Dataset
from repro.dp.laplace import LaplaceMechanism
from repro.utils.rng import RngSeed, ensure_rng


class Mechanism(ABC):
    """An anonymization mechanism in the sense of Section 2.2."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable mechanism name for reports."""

    @abstractmethod
    def release(self, dataset: Dataset, rng: RngSeed = None) -> object:
        """Compute the published output ``y = M(x)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CountMechanism(Mechanism):
    """The paper's counting mechanism ``M#q(x) = sum_i q(x_i)``.

    Exact — deliberately not differentially private — yet PSO-secure
    (Theorem 2.5): a single number reveals too little to isolate with a
    negligible-weight predicate.
    """

    def __init__(self, query: Predicate):
        self.query = query

    @property
    def name(self) -> str:
        return f"M#[{self.query.description}]"

    def release(self, dataset: Dataset, rng: RngSeed = None) -> int:
        return dataset.count(self.query)


class DPCountMechanism(Mechanism):
    """An epsilon-DP Laplace count of ``q``-satisfying records (Thm 1.3)."""

    def __init__(self, query: Predicate, epsilon: float):
        self.query = query
        self.laplace = LaplaceMechanism(epsilon, sensitivity=1.0)

    @property
    def epsilon(self) -> float:
        """The privacy-loss parameter."""
        return self.laplace.epsilon

    @property
    def name(self) -> str:
        return f"Lap-count(eps={self.epsilon})[{self.query.description}]"

    def release(self, dataset: Dataset, rng: RngSeed = None) -> float:
        return self.laplace.release(dataset.count(self.query), rng)


class PostProcessedMechanism(Mechanism):
    """``x -> f(M(x))`` — the object of Theorem 2.6.

    Post-processing cannot create PSO risk: the processed output is a
    function of information the attacker already had.
    """

    def __init__(self, inner: Mechanism, fn: Callable[[object], object], label: str = "f"):
        self.inner = inner
        self.fn = fn
        self.label = label

    @property
    def name(self) -> str:
        return f"{self.label}({self.inner.name})"

    def release(self, dataset: Dataset, rng: RngSeed = None) -> object:
        return self.fn(self.inner.release(dataset, rng))


class ComposedMechanism(Mechanism):
    """``x -> (M_1(x), ..., M_l(x))`` — the object of Theorems 2.7/2.8.

    Each component sees the same dataset; the output is the tuple of
    component outputs.  Independent randomness per component.
    """

    def __init__(self, mechanisms: Sequence[Mechanism]):
        if not mechanisms:
            raise ValueError("need at least one component mechanism")
        self.mechanisms = tuple(mechanisms)

    def __len__(self) -> int:
        return len(self.mechanisms)

    @property
    def name(self) -> str:
        if len(self.mechanisms) <= 3:
            inner = ", ".join(m.name for m in self.mechanisms)
        else:
            inner = f"{self.mechanisms[0].name}, ... x{len(self.mechanisms)}"
        return f"({inner})"

    def release(self, dataset: Dataset, rng: RngSeed = None) -> tuple:
        generator = ensure_rng(rng)
        return tuple(m.release(dataset, generator) for m in self.mechanisms)


class KAnonymityMechanism(Mechanism):
    """Release a k-anonymized version of the dataset (Theorem 2.10's target).

    ``anonymizer`` is any object with an ``anonymize(dataset)`` method
    returning a :class:`~repro.data.generalized.GeneralizedDataset` —
    Mondrian and Datafly both qualify.
    """

    def __init__(self, anonymizer, label: str | None = None):
        if not hasattr(anonymizer, "anonymize"):
            raise TypeError("anonymizer must expose an anonymize(dataset) method")
        self.anonymizer = anonymizer
        self.label = label or type(anonymizer).__name__

    @property
    def name(self) -> str:
        return f"{self.label}(k={getattr(self.anonymizer, 'k', '?')})"

    def release(self, dataset: Dataset, rng: RngSeed = None) -> object:
        return self.anonymizer.anonymize(dataset)


class ConstantMechanism(Mechanism):
    """Ignores the data entirely — the maximally private mechanism.

    Against it, *any* attacker degenerates to the trivial (data-independent)
    attacker of Section 2.2; used to calibrate the ~37% baseline.
    """

    def __init__(self, value: object = None):
        self.value = value

    @property
    def name(self) -> str:
        return "constant"

    def release(self, dataset: Dataset, rng: RngSeed = None) -> object:
        return self.value


class IdentityMechanism(Mechanism):
    """Releases the raw dataset — the maximally non-private mechanism.

    An attacker seeing ``x`` itself singles out at will (pick any unique
    record, hash it down to negligible weight); the game should report
    success probability near 1.  Exists to sanity-check the harness.
    """

    @property
    def name(self) -> str:
        return "identity"

    def release(self, dataset: Dataset, rng: RngSeed = None) -> Dataset:
        return dataset
