"""The PSO security game — Definition 2.4 as a Monte-Carlo experiment.

One trial of the game:

1. sample ``x ~ D^n``;
2. publish ``y := M(x)``;
3. the adversary outputs a predicate ``p := A(y)``;
4. the adversary **wins** iff ``p`` isolates in ``x``
   (``sum_i p(x_i) = 1``) *and* ``w_D(p)`` is negligible
   (operationally: at most ``n**-negligible_exponent``).

The mechanism *prevents predicate singling out* when every adversary's win
probability is negligible; the game estimates one adversary's win rate with
a Wilson interval, alongside the two diagnostic rates the paper's
discussion needs — isolation ignoring the weight condition (the trivial
attacker's ~37% lives here) and the weight-condition pass rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.mechanisms import Mechanism
from repro.core.predicate import Predicate
from repro.data.distributions import ProductDistribution
from repro.utils.negligible import (
    baseline_isolation_probability,
    negligible_weight_threshold,
)
from repro.utils.parallel import parallel_map
from repro.utils.rng import RngSeed, spawn_rngs
from repro.utils.stats import BinomialEstimate, estimate_proportion


@dataclass(frozen=True)
class PSOContext:
    """What the adversary legitimately knows when attacking.

    Per Section 2.2 the adversary knows the data-generation model (``D`` may
    be unknown in general; our attackers use only its *schema* and
    min-entropy, which is the weaker knowledge the definition grants) and
    the dataset size ``n``.

    ``mode`` selects which weight regime counts as a win (the paper's
    footnote 11): ``"light"`` — the default, weight must be negligible
    (below ``n**-negligible_exponent``); ``"heavy"`` — the analogous but
    "less natural" regime, weight must be ``omega(log n / n)``
    (operationally: at least ``heavy_coefficient * ln(n) / n``).  In both
    regimes a data-independent predicate isolates with negligible
    probability, so either win condition demands real leakage.
    """

    n: int
    distribution: ProductDistribution
    negligible_exponent: float = 2.0
    mode: str = "light"
    heavy_coefficient: float = 4.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.mode not in ("light", "heavy"):
            raise ValueError(f"unknown PSO mode: {self.mode!r}")
        if self.heavy_coefficient <= 1.0:
            raise ValueError("heavy_coefficient must exceed 1")

    @property
    def weight_threshold(self) -> float:
        """The finite-n negligibility cutoff for light-mode predicate weights."""
        return negligible_weight_threshold(self.n, self.negligible_exponent)

    @property
    def heavy_threshold(self) -> float:
        """The finite-n floor for heavy-mode predicate weights."""
        return min(1.0, self.heavy_coefficient * math.log(self.n) / self.n)

    def weight_qualifies(self, weight: float) -> bool:
        """Whether a predicate weight satisfies this mode's win condition."""
        if self.mode == "light":
            return weight <= self.weight_threshold
        return weight >= self.heavy_threshold


@runtime_checkable
class Adversary(Protocol):
    """A PSO adversary: sees the mechanism output, emits a predicate."""

    @property
    def name(self) -> str:
        """Adversary name for reports."""
        ...

    def attack(self, output: object, context: PSOContext, rng) -> Predicate | None:
        """Produce a predicate from the published output (None = abstain)."""
        ...


@dataclass(frozen=True)
class PSOTrial:
    """One trial's outcome (kept for diagnostics and tests)."""

    isolated: bool
    weight_bound: float
    weight_negligible: bool
    abstained: bool

    @property
    def succeeded(self) -> bool:
        """Whether the adversary won this trial (Definition 2.4's event)."""
        return self.isolated and self.weight_negligible


@dataclass(frozen=True)
class PSOGameResult:
    """Aggregated game outcome with confidence intervals."""

    mechanism_name: str
    adversary_name: str
    n: int
    weight_threshold: float
    trials: tuple[PSOTrial, ...]

    def _rate(self, successes: int) -> BinomialEstimate:
        return estimate_proportion(successes, len(self.trials))

    @property
    def success(self) -> BinomialEstimate:
        """Win rate: isolation with negligible weight (the PSO event)."""
        return self._rate(sum(1 for t in self.trials if t.succeeded))

    @property
    def isolation_rate(self) -> BinomialEstimate:
        """Isolation rate ignoring the weight condition (diagnostic)."""
        return self._rate(sum(1 for t in self.trials if t.isolated))

    @property
    def negligible_weight_rate(self) -> BinomialEstimate:
        """How often the adversary's predicate met the weight condition."""
        return self._rate(sum(1 for t in self.trials if t.weight_negligible))

    @property
    def baseline(self) -> float:
        """The best data-independent isolation probability (~37% at w=1/n)."""
        return baseline_isolation_probability(self.n)

    def beats_baseline(self) -> bool:
        """Whether the win rate significantly exceeds what *no* output allows.

        A data-independent predicate that satisfies the weight condition
        isolates with probability at most ``n * threshold`` — compare
        against that, not against the 37% of the non-negligible baseline.
        """
        trivial_win_probability = min(1.0, self.n * self.weight_threshold)
        return self.success.lower > trivial_win_probability

    def __str__(self) -> str:
        return (
            f"PSO game [{self.mechanism_name} vs {self.adversary_name}] "
            f"n={self.n}: success {self.success}, "
            f"isolation {self.isolation_rate.estimate:.3f}, "
            f"weight-ok {self.negligible_weight_rate.estimate:.3f}"
        )


class PSOGame:
    """Runs repeated trials of Definition 2.4's experiment.

    Args:
        distribution: the data distribution ``D``.
        n: dataset size.
        mechanism: the mechanism under attack.
        adversary: the attacker.
        negligible_exponent: finite-n negligibility exponent (see
            :mod:`repro.utils.negligible`).
        weight_samples: Monte-Carlo sample size for predicates whose weight
            has no exact/analytic route (rare; structural and hash
            predicates avoid it).
    """

    def __init__(
        self,
        distribution: ProductDistribution,
        n: int,
        mechanism: Mechanism,
        adversary: Adversary,
        negligible_exponent: float = 2.0,
        weight_samples: int = 4_000,
        mode: str = "light",
    ):
        self.context = PSOContext(
            n=n,
            distribution=distribution,
            negligible_exponent=negligible_exponent,
            mode=mode,
        )
        self.mechanism = mechanism
        self.adversary = adversary
        self.weight_samples = int(weight_samples)

    def run_trial(self, rng: RngSeed = None) -> PSOTrial:
        """Play the game once."""
        data_rng, mech_rng, adv_rng, weight_rng = spawn_rngs(rng, 4)
        data = self.context.distribution.sample(self.context.n, data_rng)
        output = self.mechanism.release(data, mech_rng)
        predicate = self.adversary.attack(output, self.context, adv_rng)
        if predicate is None:
            return PSOTrial(
                isolated=False,
                weight_bound=1.0,
                weight_negligible=False,
                abstained=True,
            )
        isolated = data.match_count(predicate) == 1
        weight_bound = predicate.weight_bound(
            self.context.distribution, samples=self.weight_samples, rng=weight_rng
        )
        return PSOTrial(
            isolated=isolated,
            weight_bound=weight_bound,
            weight_negligible=self.context.weight_qualifies(weight_bound),
            abstained=False,
        )

    def run(
        self,
        trials: int,
        rng: RngSeed = None,
        jobs: int = 1,
        backend: str = "auto",
    ) -> PSOGameResult:
        """Play ``trials`` independent games and aggregate.

        Args:
            trials: number of independent games.
            rng: master seed; it fans out into one stream per trial.
            jobs: worker count for trial execution (``1`` = in-process
                serial loop; ``-1`` = all cores).  For a fixed ``rng`` the
                result is bit-identical for every ``jobs`` value and
                backend — trials are pure functions of their spawned
                stream, and work-splitting is deterministic.
            backend: executor backend (see :mod:`repro.utils.parallel`).
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        streams = spawn_rngs(rng, trials)
        outcomes = tuple(parallel_map(self.run_trial, streams, jobs=jobs, backend=backend))
        return PSOGameResult(
            mechanism_name=self.mechanism.name,
            adversary_name=self.adversary.name,
            n=self.context.n,
            weight_threshold=self.context.weight_threshold,
            trials=outcomes,
        )
