"""PSO adversaries.

The cast, in order of appearance in the paper:

* :class:`TrivialAttacker` — Section 2.2's data-independent attacker (the
  birthday example): a fresh weight-``w`` hash predicate, no look at the
  output.  At ``w = 1/n`` it isolates ~37% of the time but *fails* the
  weight condition; at negligible ``w`` it passes the weight condition but
  isolates with negligible probability.  Definition 2.4 is calibrated so
  this attacker never wins — which the games verify.
* :class:`IdentityAttacker` — a sanity-check adversary for the raw-data
  release: reads a unique record straight out of the output.
* :class:`CompositionAttacker` — the Theorem 2.8 adversary: from the
  counts of a fixed (data-independent) family of hash-threshold and
  hash-bit queries, it learns enough bits of one record to isolate it with
  a negligible-weight predicate.
* :class:`KAnonymityPSOAttacker` — the Theorem 2.10 adversary: turns an
  equivalence class of the k-anonymized release into an exact-weight
  conjunctive predicate and refines it with a weight-``1/k'`` hash cut.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.leftover_hash import (
    hash_bit_equals_predicate,
    hash_bit_predicate,
    hash_threshold_predicate,
)
from repro.core.mechanisms import ComposedMechanism, CountMechanism
from repro.core.predicate import Predicate, predicate_from_conditions
from repro.core.pso import PSOContext
from repro.data.dataset import Dataset
from repro.data.generalized import GeneralizedDataset


def _fresh_salt(prefix: str, rng: np.random.Generator) -> str:
    """A per-attack salt so repeated trials use independent hash functions."""
    return f"{prefix}-{int(rng.integers(0, 2**62)):x}"


class TrivialAttacker:
    """The data-independent attacker of Section 2.2.

    Args:
        weight: the target predicate weight.  ``"optimal"`` uses ``1/n``
            (maximizes isolation probability, ~37%, but is not negligible);
            ``"negligible"`` uses the game's weight threshold (passes the
            weight test but almost never isolates); a float uses that value.
    """

    def __init__(self, weight: float | str = "optimal"):
        if isinstance(weight, str) and weight not in ("optimal", "negligible"):
            raise ValueError(f"unknown weight preset: {weight!r}")
        if isinstance(weight, float) and not 0.0 < weight <= 1.0:
            raise ValueError(f"weight must lie in (0, 1], got {weight}")
        self.weight = weight

    @property
    def name(self) -> str:
        return f"trivial(w={self.weight})"

    def attack(self, output: object, context: PSOContext, rng) -> Predicate:
        """Ignore the output; emit a fresh hash predicate of the target weight."""
        if self.weight == "optimal":
            target = 1.0 / context.n
        elif self.weight == "negligible":
            target = context.weight_threshold
        else:
            target = float(self.weight)
        return hash_threshold_predicate(_fresh_salt("trivial", rng), target)


class IdentityAttacker:
    """Reads a unique record out of a raw-data release (sanity check).

    Wins almost surely against :class:`~repro.core.mechanisms.IdentityMechanism`
    on any distribution without heavy atoms: pick a record unique in the
    data, output the conjunction of all its attribute values.
    """

    @property
    def name(self) -> str:
        return "identity-reader"

    def attack(self, output: object, context: PSOContext, rng) -> Predicate | None:
        if not isinstance(output, Dataset):
            return None
        counts: dict[tuple, int] = {}
        for row in output.rows:
            counts[row] = counts.get(row, 0) + 1
        for row, multiplicity in counts.items():
            if multiplicity == 1:
                conditions = {
                    name: frozenset([value])
                    for name, value in zip(output.schema.names, row)
                }
                return predicate_from_conditions(conditions)
        return None


class CountExploitingAttacker:
    """A best-effort adversary against single-count releases (Theorem 2.5).

    Theorem 2.5 quantifies over *all* adversaries; games can only sample
    some.  This one actually uses the output: it folds the released count
    into its hash salt, so the emitted negligible-weight predicate is a
    genuine function of ``y = M(x)``.  Information-theoretically a single
    count carries ~log n bits about which records exist — not enough to
    point a negligible-weight predicate at one of them, which is exactly
    what the game shows: this attacker does no better than the trivial one.
    """

    def __init__(self, weight: str = "negligible"):
        if weight not in ("negligible", "optimal"):
            raise ValueError(f"unknown weight preset: {weight!r}")
        self.weight = weight

    @property
    def name(self) -> str:
        return f"count-exploiting(w={self.weight})"

    def attack(self, output: object, context: PSOContext, rng) -> Predicate:
        target = (
            context.weight_threshold
            if self.weight == "negligible"
            else 1.0 / context.n
        )
        salt = f"count-exploit-{output!r}-{_fresh_salt('ce', rng)}"
        return hash_threshold_predicate(salt, target)


@dataclass(frozen=True)
class CompositionSuite:
    """A matched (mechanism, adversary) pair for the Theorem 2.8 attack.

    ``mechanism`` composes ``num_counts`` individual count mechanisms —
    each of which, standing alone, prevents PSO by Theorem 2.5.
    """

    mechanism: ComposedMechanism
    adversary: "CompositionAttacker"

    @property
    def num_counts(self) -> int:
        """Number of composed count mechanisms (the theorem's l)."""
        return len(self.mechanism)


class CompositionAttacker:
    """The Theorem 2.8 adversary (see :func:`build_composition_suite`).

    Strategy: the published counts include, for a shared hash ``h`` and a
    geometric ladder of thresholds ``t_0 < t_1 < ...``, the counts
    ``c_j = #{i : h(x_i) < t_j}``.  The attacker finds a level with
    ``c_j = 1`` — there is one with constant probability, because the
    ladder brackets the minimum hash value — at which point exactly one
    (unknown) record sits below ``t_j``.  The remaining counts
    ``#{i : h(x_i) < t_j and g_b(x_i) = 1}`` then equal that record's
    ``g_b`` bits, and the conjunction "h(x) < t_j and g matches those
    bits" isolates it with analytic weight ``t_j * 2^-B`` — negligible.
    """

    def __init__(self, salt: str, thresholds: tuple[float, ...], bits: int):
        if not thresholds:
            raise ValueError("need at least one threshold level")
        if list(thresholds) != sorted(thresholds):
            raise ValueError("thresholds must be ascending")
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.salt = salt
        self.thresholds = thresholds
        self.bits = bits

    @property
    def name(self) -> str:
        return f"composition(L={len(self.thresholds)}, B={self.bits})"

    def attack(self, output: object, context: PSOContext, rng) -> Predicate | None:
        if not isinstance(output, tuple):
            return None
        levels = len(self.thresholds)
        expected = levels + levels * self.bits
        if len(output) != expected:
            return None
        counts = np.asarray(output)
        hits = np.flatnonzero(counts[:levels] == 1)
        if hits.size == 0:
            return None
        target_level = int(hits[0])
        predicate = hash_threshold_predicate(
            f"{self.salt}-h", self.thresholds[target_level]
        )
        offset = levels + target_level * self.bits
        bit_values = (counts[offset : offset + self.bits] >= 1).astype(int)
        for bit, value in enumerate(bit_values):
            predicate = predicate & hash_bit_equals_predicate(
                f"{self.salt}-g{bit}", 0, int(value)
            )
        return predicate


def build_composition_suite(
    n: int,
    negligible_exponent: float = 2.0,
    salt: str = "thm2.8",
) -> CompositionSuite:
    """Construct the Theorem 2.8 counterexample for dataset size ``n``.

    Returns ``l = L * (1 + B)`` count mechanisms with
    ``L ~ log2(n)`` threshold levels and ``B ~ 2 log2(n)`` bit probes —
    ``omega(log n)`` mechanisms, matching the theorem — plus the adversary
    that exploits their composition.
    """
    if n <= 1:
        raise ValueError("n must exceed 1")
    levels = max(2, math.ceil(math.log2(8 * n)))
    thresholds = tuple(min(0.5, (2.0**j) / (8.0 * n)) for j in range(levels))
    bits = math.ceil(negligible_exponent * math.log2(n)) + 4

    threshold_queries = [
        hash_threshold_predicate(f"{salt}-h", threshold) for threshold in thresholds
    ]
    # The bit probes conjoin each level's threshold predicate with a shared
    # bank of hash-bit predicates; both factors are built once and reused
    # rather than re-derived per (level, bit) pair.
    bit_predicates = [hash_bit_predicate(f"{salt}-g{bit}", 0) for bit in range(bits)]
    queries = list(threshold_queries)
    for base in threshold_queries:
        queries.extend(base & bit_predicate for bit_predicate in bit_predicates)

    mechanism = ComposedMechanism([CountMechanism(query) for query in queries])
    adversary = CompositionAttacker(salt=salt, thresholds=thresholds, bits=bits)
    return CompositionSuite(mechanism=mechanism, adversary=adversary)


class KAnonymityPSOAttacker:
    """The Theorem 2.10 adversary against k-anonymized releases.

    Modes:

    * ``"refine"`` — the paper's attack verbatim: choose an equivalence
      class (released rows identical on every attribute) whose conjunctive
      predicate ``p`` has negligible exact weight and ``k' >= 2`` members,
      and output ``p AND p'`` for a fresh hash predicate ``p'`` of weight
      ``1/k'``.  Succeeds with probability ``(1 - 1/k')^(k'-1) ~ 37%``.
    * ``"singleton"`` — the Cohen-strengthened variant [12]: when a
      negligible-weight class has exactly one member, its predicate already
      isolates; success approaches 100%.
    * ``"auto"`` (default) — singleton when available, refine otherwise.
    """

    def __init__(self, mode: str = "auto"):
        if mode not in ("auto", "refine", "singleton"):
            raise ValueError(f"unknown mode: {mode!r}")
        self.mode = mode

    @property
    def name(self) -> str:
        return f"kanon-pso({self.mode})"

    def attack(self, output: object, context: PSOContext, rng) -> Predicate | None:
        if not isinstance(output, GeneralizedDataset) or len(output) == 0:
            return None
        schema = output.schema
        candidates = []  # (weight, class_size, conditions)
        for key, indices in output.equivalence_classes().items():
            conditions = {
                name: frozenset(value.covers)
                for name, value in zip(schema.names, key)
            }
            weight = context.distribution.conjunction_weight(conditions)
            candidates.append((weight, len(indices), conditions))
        if not candidates:
            return None

        eligible = [c for c in candidates if c[0] <= context.weight_threshold]
        pool = eligible or candidates  # degrade honestly when nothing qualifies
        singletons = [c for c in pool if c[1] == 1]
        multis = [c for c in pool if c[1] >= 2]

        if self.mode == "singleton" or (self.mode == "auto" and singletons):
            if not singletons:
                return None
            weight, _size, conditions = min(singletons, key=lambda c: c[0])
            return predicate_from_conditions(conditions)

        if not multis:
            return None
        # Largest class: its refinement success (1 - 1/k')^(k'-1) is closest
        # to the paper's asymptotic 1/e; ties broken by smaller weight.
        weight, class_size, conditions = max(multis, key=lambda c: (c[1], -c[0]))
        class_predicate = predicate_from_conditions(conditions)
        refinement = hash_threshold_predicate(
            _fresh_salt("kanon-refine", rng), 1.0 / class_size
        )
        return class_predicate & refinement
