"""The Section 2 theorems as executable, falsifiable checks.

Each function runs the relevant PSO game (or DP verification) and returns a
:class:`TheoremCheck` recording the theorem's claim, the measurement, and a
pass/fail verdict.  These are the technical premises the legal layer
(:mod:`repro.legal.theorems`) consumes: Legal Theorem 2.1 is only derivable
from a *failed-security* measurement, per the paper's insistence that such
statements be mathematically falsifiable (Section 2.4.3).

Default parameters are sized to run in seconds; the benchmark harness
re-runs them at larger scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.anonymity.agreement import AgreementAnonymizer
from repro.core.attackers import (
    KAnonymityPSOAttacker,
    TrivialAttacker,
    build_composition_suite,
)
from repro.core.leftover_hash import hash_bit_predicate
from repro.core.mechanisms import (
    ComposedMechanism,
    CountMechanism,
    DPCountMechanism,
    KAnonymityMechanism,
    PostProcessedMechanism,
)
from repro.core.pso import PSOGame, PSOGameResult
from repro.data.distributions import uniform_bits_distribution
from repro.dp.laplace import LaplaceMechanism
from repro.dp.verify import verify_spec
from repro.utils.parallel import parallel_map
from repro.utils.rng import RngSeed, derive_rng


@dataclass(frozen=True)
class TheoremCheck:
    """An executable theorem's verdict.

    Attributes:
        theorem: the paper's theorem number.
        claim: the claim in one sentence.
        passed: whether the measurement is consistent with the claim.
        measurements: named measured quantities backing the verdict.
    """

    theorem: str
    claim: str
    passed: bool
    measurements: dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] Theorem {self.theorem}: {self.claim}"


def _secure_upper_bound(result: PSOGameResult, slack: float = 0.03) -> float:
    """Success ceiling below which we call a mechanism empirically PSO-secure.

    The theoretical win ceiling for *any* weight-compliant data-independent
    predicate is ``n * threshold``; add Monte-Carlo slack for the finite
    trial count.
    """
    return min(1.0, result.n * result.weight_threshold) + slack


def check_count_mechanism_pso_security(
    n: int = 200,
    width: int = 64,
    trials: int = 150,
    rng: RngSeed = 0,
    jobs: int = 1,
) -> TheoremCheck:
    """Theorem 2.5: the counting mechanism M#q prevents predicate singling out.

    Plays the game against the trivial attacker at both weight presets (no
    attacker can do better against a single exact count; the count is a
    symmetric function carrying ~log n bits).
    """
    distribution = uniform_bits_distribution(width)
    mechanism = CountMechanism(hash_bit_predicate("thm2.5-q", 0))
    results = {}
    passed = True
    for preset in ("negligible", "optimal"):
        game = PSOGame(distribution, n, mechanism, TrivialAttacker(preset))
        result = game.run(trials, derive_rng(rng, "thm2.5", preset), jobs=jobs)
        results[f"success[{preset}]"] = str(result.success)
        passed = passed and result.success.estimate <= _secure_upper_bound(result)
    return TheoremCheck(
        theorem="2.5",
        claim="M#q prevents predicate singling out",
        passed=passed,
        measurements={"n": n, "trials": trials, **results},
    )


def check_post_processing_robustness(
    n: int = 200,
    width: int = 64,
    trials: int = 150,
    rng: RngSeed = 0,
    jobs: int = 1,
) -> TheoremCheck:
    """Theorem 2.6: post-processing preserves security against PSO.

    Attacks ``f(M#q(x))`` for a lossy f (parity) and checks the win rate
    stays at the secure ceiling, like the unprocessed mechanism's.
    """
    distribution = uniform_bits_distribution(width)
    base = CountMechanism(hash_bit_predicate("thm2.6-q", 0))
    processed = PostProcessedMechanism(base, lambda count: count % 2, label="parity")
    game = PSOGame(distribution, n, processed, TrivialAttacker("negligible"))
    result = game.run(trials, derive_rng(rng, "thm2.6"), jobs=jobs)
    passed = result.success.estimate <= _secure_upper_bound(result)
    return TheoremCheck(
        theorem="2.6",
        claim="post-processing a PSO-secure mechanism stays PSO-secure",
        passed=passed,
        measurements={"n": n, "trials": trials, "success": str(result.success)},
    )


def check_composition_attack(
    n: int = 256,
    width: int = 64,
    trials: int = 80,
    min_success: float = 0.2,
    rng: RngSeed = 0,
    jobs: int = 1,
) -> TheoremCheck:
    """Theorem 2.8: omega(log n) count mechanisms compose to enable PSO.

    Runs the constructive attack of :func:`build_composition_suite` and
    requires its win rate to significantly exceed the secure ceiling (which
    is ~n^-1 here) — the paper's incomposability phenomenon.
    """
    distribution = uniform_bits_distribution(width)
    suite = build_composition_suite(n)
    game = PSOGame(distribution, n, suite.mechanism, suite.adversary)
    result = game.run(trials, derive_rng(rng, "thm2.8"), jobs=jobs)
    passed = result.success.lower >= min_success and result.beats_baseline()
    return TheoremCheck(
        theorem="2.8",
        claim="composing omega(log n) count mechanisms fails to prevent PSO",
        passed=passed,
        measurements={
            "n": n,
            "trials": trials,
            "num_count_mechanisms": suite.num_counts,
            "success": str(result.success),
            "weight_threshold": result.weight_threshold,
        },
    )


def check_dp_implies_pso_security(
    epsilon: float = 1.0,
    n: int = 256,
    width: int = 64,
    trials: int = 80,
    rng: RngSeed = 0,
    jobs: int = 1,
) -> TheoremCheck:
    """Theorem 2.9: an epsilon-DP mechanism prevents predicate singling out.

    The sharpest test available: re-run the Theorem 2.8 composition attack,
    but release every count through the Laplace mechanism with the total
    budget split across counts (so the composed release is epsilon-DP).
    The very attack that wins against exact counts must collapse.
    """
    distribution = uniform_bits_distribution(width)
    suite = build_composition_suite(n)
    per_count_epsilon = epsilon / suite.num_counts
    dp_counts = [
        DPCountMechanism(component.query, per_count_epsilon)
        for component in suite.mechanism.mechanisms
    ]
    dp_mechanism = ComposedMechanism(dp_counts)
    game = PSOGame(distribution, n, dp_mechanism, suite.adversary)
    result = game.run(trials, derive_rng(rng, "thm2.9"), jobs=jobs)
    passed = result.success.estimate <= _secure_upper_bound(result)
    return TheoremCheck(
        theorem="2.9",
        claim="epsilon-DP implies security against predicate singling out",
        passed=passed,
        measurements={
            "n": n,
            "trials": trials,
            "epsilon_total": epsilon,
            "per_count_epsilon": per_count_epsilon,
            "success": str(result.success),
        },
    )


def check_kanonymity_fails_pso(
    k: int = 4,
    n: int = 250,
    width: int = 128,
    trials: int = 100,
    rng: RngSeed = 0,
    jobs: int = 1,
) -> TheoremCheck:
    """Theorem 2.10: optimizing k-anonymizers enable PSO w.p. ~37%.

    Runs the refinement attack against the agreement anonymizer on wide
    data.  The expected success is ``(1 - 1/k')^(k'-1)`` for class size
    ``k' = k`` — between 1/e and 1/2 — and must dwarf the secure ceiling.
    """
    distribution = uniform_bits_distribution(width)
    mechanism = KAnonymityMechanism(AgreementAnonymizer(k), label="agreement")
    adversary = KAnonymityPSOAttacker(mode="refine")
    game = PSOGame(distribution, n, mechanism, adversary)
    result = game.run(trials, derive_rng(rng, "thm2.10"), jobs=jobs)
    from repro.core.analysis import refinement_success_probability

    expected = refinement_success_probability(k)
    passed = (
        result.beats_baseline()
        and abs(result.success.estimate - expected) <= 0.15
    )
    return TheoremCheck(
        theorem="2.10",
        claim="k-anonymity enables predicate singling out w.p. ~37%",
        passed=passed,
        measurements={
            "k": k,
            "n": n,
            "trials": trials,
            "success": str(result.success),
            "expected_(1-1/k)^(k-1)": expected,
        },
    )


def check_cohen_singleton_attack(
    k: int = 4,
    n: int = 250,
    width: int = 96,
    secret_values: int = 50,
    trials: int = 80,
    rng: RngSeed = 0,
    jobs: int = 1,
) -> TheoremCheck:
    """Cohen [12]: generalization-based k-anonymity allows PSO w.p. ~100%.

    A standard k-anonymizer generalizes only the quasi-identifiers and
    releases the sensitive column raw; the full released rows then split
    each QI class into (mostly) singletons of negligible weight, and the
    attacker isolates without needing any refinement — success approaches
    100%, the strengthening of Theorem 2.10 cited in Section 2.3.4.
    """
    from repro.data.domain import CategoricalDomain
    from repro.data.distributions import ProductDistribution, uniform_bits_schema
    from repro.data.schema import Attribute, AttributeKind, Schema

    bits_schema = uniform_bits_schema(width)
    schema = Schema(
        list(bits_schema.attributes)
        + [
            Attribute(
                "secret", CategoricalDomain(range(secret_values)), AttributeKind.SENSITIVE
            )
        ]
    )
    distribution = ProductDistribution.uniform(schema)
    mechanism = KAnonymityMechanism(AgreementAnonymizer(k), label="agreement")
    adversary = KAnonymityPSOAttacker(mode="singleton")
    game = PSOGame(distribution, n, mechanism, adversary)
    result = game.run(trials, derive_rng(rng, "cohen"), jobs=jobs)
    passed = result.success.lower >= 0.8
    return TheoremCheck(
        theorem="2.10+ (Cohen [12])",
        claim="generalization-based k-anonymity allows PSO w.p. ~100%",
        passed=passed,
        measurements={
            "k": k,
            "n": n,
            "trials": trials,
            "success": str(result.success),
        },
    )


def check_ldiversity_fails_pso(
    k: int = 4,
    l: int = 2,
    n: int = 250,
    width: int = 96,
    secret_values: int = 50,
    trials: int = 60,
    rng: RngSeed = 0,
    jobs: int = 1,
) -> TheoremCheck:
    """Footnote 3: the k-anonymity PSO analysis extends to l-diversity.

    Runs the Cohen singleton attack against releases and counts a trial as a
    *footnote-3 success* only when the release was simultaneously
    k-anonymous and distinct-l-diverse and the attacker won — so the
    verdict speaks about l-diverse releases specifically, not k-anonymity
    in general.
    """
    from repro.anonymity.checks import distinct_l_diversity, is_k_anonymous
    from repro.core.attackers import KAnonymityPSOAttacker as _Attacker
    from repro.data.domain import CategoricalDomain
    from repro.data.distributions import ProductDistribution, uniform_bits_schema
    from repro.data.schema import Attribute, AttributeKind, Schema
    from repro.utils.rng import spawn_rngs
    from repro.utils.stats import estimate_proportion

    bits_schema = uniform_bits_schema(width)
    schema = Schema(
        list(bits_schema.attributes)
        + [
            Attribute(
                "secret", CategoricalDomain(range(secret_values)), AttributeKind.SENSITIVE
            )
        ]
    )
    distribution = ProductDistribution.uniform(schema)
    anonymizer = AgreementAnonymizer(k)
    adversary = _Attacker(mode="singleton")
    context_game = PSOGame(
        distribution, n, KAnonymityMechanism(anonymizer, label="agreement"), adversary
    )

    def footnote3_trial(stream) -> tuple[bool, bool]:
        """One trial: (release was l-diverse, attack additionally won)."""
        data_rng, adv_rng = spawn_rngs(stream, 2)
        data = distribution.sample(n, data_rng)
        release = anonymizer.anonymize(data)
        if not (
            is_k_anonymous(release, k)
            and distinct_l_diversity(release, "secret") >= l
        ):
            return False, False  # this release is out of the claim's scope
        predicate = adversary.attack(release, context_game.context, adv_rng)
        if predicate is None:
            return True, False
        matches = data.count(predicate)
        weight = predicate.weight_bound(distribution)
        won = matches == 1 and weight <= context_game.context.weight_threshold
        return True, won

    outcomes = parallel_map(
        footnote3_trial, spawn_rngs(derive_rng(rng, "footnote3"), trials), jobs=jobs
    )
    diverse_trials = sum(diverse for diverse, _won in outcomes)
    diverse_and_broken = sum(won for _diverse, won in outcomes)

    if diverse_trials == 0:
        return TheoremCheck(
            theorem="footnote 3",
            claim="l-diverse k-anonymous releases remain PSO-vulnerable",
            passed=False,
            measurements={"note": "no trial produced an l-diverse release"},
        )
    success = estimate_proportion(diverse_and_broken, diverse_trials)
    return TheoremCheck(
        theorem="footnote 3",
        claim="l-diverse k-anonymous releases remain PSO-vulnerable",
        passed=success.lower >= 0.8,
        measurements={
            "k": k,
            "l": l,
            "n": n,
            "l_diverse_trials": diverse_trials,
            "success_on_diverse_releases": str(success),
        },
    )


def check_laplace_is_dp(
    epsilon: float = 1.0,
    trials: int = 4_000,
    rng: RngSeed = 0,
) -> TheoremCheck:
    """Theorem 1.3: the Laplace mechanism is epsilon-differentially private.

    Empirical verification on a neighboring pair of counting inputs.
    """
    mechanism = LaplaceMechanism(epsilon, sensitivity=1.0)
    x = np.array([1, 0, 1, 1, 0])
    x_prime = np.array([1, 0, 1, 0, 0])  # one record changed
    # The spec under test is the same object an accountant would charge:
    # kernel, sensitivity, and claimed epsilon travel together.
    verdict = verify_spec(
        mechanism.spec(),
        x,
        x_prime,
        trials=trials,
        rng=derive_rng(rng, "thm1.3"),
    )
    return TheoremCheck(
        theorem="1.3",
        claim="the Laplace mechanism is epsilon-differentially private",
        passed=verdict.consistent,
        measurements={
            "epsilon": epsilon,
            "trials": trials,
            "max_observed_log_ratio": verdict.max_observed_log_ratio,
            "events": len(verdict.checks),
        },
    )


def run_all_checks(rng: RngSeed = 0, jobs: int = 1) -> list[TheoremCheck]:
    """Run every theorem check at default scale (the legal layer's input).

    ``jobs`` fans each check's Monte-Carlo trials across workers; verdicts
    and measurements are identical to a serial run for a fixed ``rng``.
    """
    return [
        check_laplace_is_dp(rng=rng),
        check_count_mechanism_pso_security(rng=rng, jobs=jobs),
        check_post_processing_robustness(rng=rng, jobs=jobs),
        check_composition_attack(rng=rng, jobs=jobs),
        check_dp_implies_pso_security(rng=rng, jobs=jobs),
        check_kanonymity_fails_pso(rng=rng, jobs=jobs),
        check_cohen_singleton_attack(rng=rng, jobs=jobs),
        check_ldiversity_fails_pso(rng=rng, jobs=jobs),
    ]
