"""Negligible-weight predicates via hashing (the Leftover Hash Lemma device).

The paper twice leans on the Leftover Hash Lemma [27]:

* Section 2.2 — "if D has moderate min-entropy ... one can construct a
  predicate p such that Pr_{x~D}[p(x) = 1] = 1/n";
* footnote 12 — the Theorem 2.10 attacker refines an equivalence class
  with a fresh predicate of weight ``1/k'`` built the same way.

Concretely: a salted cryptographic hash of the record's values behaves as
a strong extractor on any distribution with enough min-entropy, so the
predicate "h(x) < threshold" has weight ~ ``threshold`` *for every such D
simultaneously* — the attacker needs no knowledge of D beyond its entropy.
We use SHA-256, which is deterministic across runs and platforms (unlike
Python's builtin ``hash``).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.core.predicate import Predicate
from repro.data.dataset import Record

#: Resolution of the hash-to-unit-interval map (bits).
_UNIT_BITS = 64
_UNIT_DENOMINATOR = 2**_UNIT_BITS


@lru_cache(maxsize=1 << 17)
def _cached_digest(salt: str, values: tuple) -> bytes:
    """SHA-256 digest of a record's value tuple, memoized.

    Composed mechanisms hash each record under the same salt hundreds of
    times per release; keying the cache on the (hashable) value tuple makes
    repeats cost one dict lookup, with serialization only on a miss.
    """
    material = repr(values).encode("utf-8")
    return hashlib.sha256(salt.encode("utf-8") + b"\x00" + material).digest()


class RecordHasher:
    """A salted, deterministic hash of record values.

    Distinct salts give (by the random-oracle heuristic backing the LHL
    usage) independent functions — which is why conjunctions of hash
    predicates with distinct salts may multiply their analytic weights.
    """

    def __init__(self, salt: str):
        if not salt:
            raise ValueError("salt must be non-empty")
        self.salt = salt

    def _digest(self, record: Record) -> bytes:
        return _cached_digest(self.salt, tuple(record.values))

    def unit(self, record: Record) -> float:
        """Map the record to [0, 1) with 64-bit resolution."""
        digest = self._digest(record)
        return int.from_bytes(digest[:8], "big") / _UNIT_DENOMINATOR

    def bit(self, record: Record, index: int) -> int:
        """The ``index``-th bit of the record's hash (0 <= index < 192).

        Bits beyond the first 64 are disjoint from the material used by
        :meth:`unit`, so bit predicates are independent of threshold
        predicates *with the same salt* as long as ``index >= 64``.
        """
        if not 0 <= index < 192:
            raise ValueError(f"bit index must lie in [0, 192), got {index}")
        digest = self._digest(record)
        byte_index, bit_offset = divmod(index, 8)
        return (digest[byte_index] >> bit_offset) & 1


def hash_threshold_predicate(salt: str, threshold: float) -> Predicate:
    """The predicate ``h_salt(x) < threshold`` with analytic weight ``threshold``.

    Under any distribution whose min-entropy comfortably exceeds
    ``log2(1/threshold)`` the true weight is within o(threshold) of the
    analytic value — this is the LHL guarantee the paper invokes.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must lie in (0, 1], got {threshold}")
    hasher = RecordHasher(salt)
    return Predicate(
        lambda record: hasher.unit(record) < threshold,
        f"h_{salt}(x) < {threshold:.3e}",
        analytic_weight=threshold,
    )


def hash_bit_predicate(salt: str, index: int) -> Predicate:
    """The predicate "bit ``index`` of ``h_salt(x)`` is 1" (weight 1/2)."""
    hasher = RecordHasher(salt)
    # Probe validity eagerly so bad indices fail at construction time.
    if not 0 <= index < 192:
        raise ValueError(f"bit index must lie in [0, 192), got {index}")
    return Predicate(
        lambda record: hasher.bit(record, index) == 1,
        f"bit_{index}(h_{salt}(x)) = 1",
        analytic_weight=0.5,
    )


def hash_bit_equals_predicate(salt: str, index: int, value: int) -> Predicate:
    """The predicate "bit ``index`` of ``h_salt(x)`` equals ``value``"."""
    if value not in (0, 1):
        raise ValueError(f"value must be 0 or 1, got {value}")
    hasher = RecordHasher(salt)
    if not 0 <= index < 192:
        raise ValueError(f"bit index must lie in [0, 192), got {index}")
    return Predicate(
        lambda record: hasher.bit(record, index) == value,
        f"bit_{index}(h_{salt}(x)) = {value}",
        analytic_weight=0.5,
    )


def isolating_weight_predicate(salt: str, n: int) -> Predicate:
    """The Section 2.2 trivial-attacker predicate: weight exactly ``1/n``.

    Chosen independently of the data, it isolates with probability
    ``n * (1/n) * (1 - 1/n)^(n-1) -> 1/e ~ 37%`` — the paper's birthday
    example, generalized via the LHL to any high-min-entropy distribution.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return hash_threshold_predicate(salt, 1.0 / n)
