"""Closed-form companions to the PSO experiments.

The experiments overlay Monte-Carlo measurements on analytic predictions;
this module is where those predictions live, so tests can assert the two
agree and readers can see exactly which formula each experiment is tracking.

All formulas follow Section 2 of the paper and the constructions in
:mod:`repro.core.attackers` / :mod:`repro.anonymity.agreement`.
"""

from __future__ import annotations

import math

from repro.utils.negligible import isolation_probability


def refinement_success_probability(class_size: int) -> float:
    """Theorem 2.10's success rate: ``(1 - 1/k')^(k'-1)``.

    A fresh weight-``1/k'`` predicate isolates within a class of ``k'``
    records with exactly this probability; it decreases from 1/2 (k' = 2)
    towards ``1/e ~ 36.8%`` — the paper's "approximately 37%".
    """
    if class_size < 1:
        raise ValueError("class_size must be positive")
    if class_size == 1:
        return 1.0  # the singleton class is already isolated
    return (1.0 - 1.0 / class_size) ** (class_size - 1)


def expected_agreement_bits(width: int, k: int, n: int) -> float:
    """Expected per-class agreement of the sorted agreement anonymizer.

    A group of ``k`` uniform ``width``-bit records agrees on a random
    attribute with probability ``2^(1-k)``; sorting additionally aligns
    roughly ``log2(n / k)`` prefix bits.  The released class predicate's
    weight is about ``2^-agreement``, which is what must dip below the
    negligibility cutoff for Theorem 2.10's attack to qualify.
    """
    if width <= 0 or k <= 0 or n <= 0:
        raise ValueError("width, k and n must be positive")
    prefix = max(0.0, math.log2(max(n / k, 1.0)))
    prefix = min(prefix, float(width))
    random_agreement = (width - prefix) * 2.0 ** (1 - k)
    return prefix + random_agreement


def required_width_for_negligibility(k: int, n: int, exponent: float = 2.0) -> int:
    """Data width needed so the Theorem 2.10 class predicate is negligible.

    Solves ``expected_agreement_bits(width, k, n) >= exponent * log2(n)``
    with a 2x safety margin — the ``d = omega(2^k log n)`` requirement the
    E12 width schedule implements.
    """
    if exponent <= 1:
        raise ValueError("exponent must exceed 1")
    target = 2.0 * exponent * math.log2(n)
    prefix = max(0.0, math.log2(max(n / k, 1.0)))
    residual = max(target - prefix, 0.0)
    width = prefix + residual * 2.0 ** (k - 1)
    return int(math.ceil(width))


def composition_attack_success_bound(n: int) -> float:
    """A crude lower bound on the Theorem 2.8 attack's success probability.

    The attack wins whenever some threshold level of its geometric ladder
    holds exactly one record.  The ladder brackets the minimum hash value,
    and the count at the bracketing level is 1 unless a second record lands
    within a factor-2 window of the minimum; a standard extreme-value
    computation puts that probability at a constant.  We return the
    conservative constant 1/4 for n >= 8 — the experiments measure 0.6-0.9.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    return 0.25 if n >= 8 else 0.1


def trivial_attacker_ceiling(n: int, exponent: float = 2.0) -> float:
    """The best win rate of any weight-compliant data-independent attacker.

    A predicate of weight ``w <= n^-exponent`` chosen without seeing the
    output isolates with probability ``n*w*(1-w)^(n-1) <= n^(1-exponent)``;
    games call a mechanism broken only when an attacker clears this ceiling.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    weight = float(n) ** (-exponent)
    return isolation_probability(n, min(weight, 1.0))
