"""Isolation — Definition 2.1 — and the trivial-attacker arithmetic.

A predicate *isolates* in ``x = (x_1, ..., x_n)`` when it evaluates to 1 on
exactly one record.  Note the definition acts on record *values*: a
predicate cannot refer to a record's position ("the first record"), and two
identical records can never be isolated by any predicate.

Matching is evaluated through the dataset's batched path
(:meth:`~repro.data.dataset.Dataset.match_mask`): structured predicates go
column-wise without per-record Python objects, opaque callables fall back
to a loop.  :func:`estimate_isolation_rate` is the Monte-Carlo isolation
estimator, trial-parallel via ``jobs=``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.dataset import Dataset, Record
from repro.data.distributions import ProductDistribution
from repro.utils.negligible import (
    baseline_isolation_probability,
    isolation_probability,
    optimal_isolation_weight,
)
from repro.utils.parallel import parallel_map
from repro.utils.rng import RngSeed, spawn_rngs
from repro.utils.stats import BinomialEstimate, estimate_proportion

__all__ = [
    "baseline_isolation_probability",
    "estimate_isolation_rate",
    "isolates",
    "isolation_probability",
    "matching_count",
    "matching_indices",
    "optimal_isolation_weight",
]


def matching_count(predicate: Callable[[Record], bool], dataset: Dataset) -> int:
    """``sum_i p(x_i)`` — how many records the predicate matches."""
    return dataset.match_count(predicate)


def matching_indices(predicate: Callable[[Record], bool], dataset: Dataset) -> list[int]:
    """Indices of the matched records (diagnostic; attacks never see these)."""
    return [int(i) for i in np.flatnonzero(dataset.match_mask(predicate))]


def isolates(predicate: Callable[[Record], bool], dataset: Dataset) -> bool:
    """Definition 2.1: ``p`` isolates in ``x`` iff ``sum_i p(x_i) = 1``."""
    return dataset.match_count(predicate) == 1


def estimate_isolation_rate(
    predicate: Callable[[Record], bool],
    distribution: ProductDistribution,
    n: int,
    trials: int,
    rng: RngSeed = None,
    jobs: int = 1,
    backend: str = "auto",
) -> BinomialEstimate:
    """Monte-Carlo estimate of ``Pr_{x ~ D^n}[p isolates in x]``.

    The quantity behind the paper's ~37% birthday example: a fixed
    weight-``1/n`` predicate isolates in a fresh dataset with probability
    ``n * w * (1-w)^(n-1)``.  One dataset is sampled per trial from an
    independent spawned stream, so for a fixed ``rng`` the estimate is
    identical for every ``jobs`` value and backend.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")

    def one_trial(stream) -> bool:
        return isolates(predicate, distribution.sample(n, stream))

    wins = parallel_map(one_trial, spawn_rngs(rng, trials), jobs=jobs, backend=backend)
    return estimate_proportion(sum(wins), trials)
