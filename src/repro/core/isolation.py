"""Isolation — Definition 2.1 — and the trivial-attacker arithmetic.

A predicate *isolates* in ``x = (x_1, ..., x_n)`` when it evaluates to 1 on
exactly one record.  Note the definition acts on record *values*: a
predicate cannot refer to a record's position ("the first record"), and two
identical records can never be isolated by any predicate.
"""

from __future__ import annotations

from typing import Callable

from repro.data.dataset import Dataset, Record
from repro.utils.negligible import (
    baseline_isolation_probability,
    isolation_probability,
    optimal_isolation_weight,
)

__all__ = [
    "baseline_isolation_probability",
    "isolates",
    "isolation_probability",
    "matching_count",
    "matching_indices",
    "optimal_isolation_weight",
]


def matching_count(predicate: Callable[[Record], bool], dataset: Dataset) -> int:
    """``sum_i p(x_i)`` — how many records the predicate matches."""
    return dataset.count(predicate)


def matching_indices(predicate: Callable[[Record], bool], dataset: Dataset) -> list[int]:
    """Indices of the matched records (diagnostic; attacks never see these)."""
    return [i for i in range(len(dataset)) if predicate(dataset[i])]


def isolates(predicate: Callable[[Record], bool], dataset: Dataset) -> bool:
    """Definition 2.1: ``p`` isolates in ``x`` iff ``sum_i p(x_i) = 1``."""
    # Short-circuit at 2 matches: no need to scan the whole dataset.
    matches = 0
    for record in dataset:
        if predicate(record):
            matches += 1
            if matches > 1:
                return False
    return matches == 1
