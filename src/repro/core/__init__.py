"""The paper's primary contribution: predicate singling out, executable.

Section 2 of the paper formalizes the GDPR's "singling out" as *predicate
singling out* (PSO): an attacker observing a mechanism's output wins by
producing a predicate of negligible weight that isolates — evaluates to 1
on exactly one record of the hidden dataset (Definitions 2.1-2.4).

* :mod:`repro.core.predicate` — first-class predicates ``p : X -> {0,1}``
  with exact/bounded/Monte-Carlo weight computation.
* :mod:`repro.core.leftover_hash` — negligible-weight predicates via
  universal hashing (the paper's Leftover-Hash-Lemma device).
* :mod:`repro.core.isolation` — Definition 2.1 and the trivial-attacker
  baseline arithmetic of Section 2.2.
* :mod:`repro.core.mechanisms` — the mechanisms the theorems quantify
  over: counts (M#q), post-processed and composed mechanisms, DP releases,
  k-anonymizers.
* :mod:`repro.core.attackers` — the adversaries: the trivial baseline,
  the Theorem 2.10 k-anonymity attacker, the Theorem 2.8 composition
  attacker.
* :mod:`repro.core.pso` — the PSO security game (Definition 2.4) as a
  Monte-Carlo experiment with confidence intervals.
* :mod:`repro.core.theorems` — each theorem of Section 2 as an executable,
  falsifiable check.
"""

from repro.core.analysis import (
    composition_attack_success_bound,
    expected_agreement_bits,
    refinement_success_probability,
    required_width_for_negligibility,
    trivial_attacker_ceiling,
)
from repro.core.attackers import (
    CompositionAttacker,
    CountExploitingAttacker,
    KAnonymityPSOAttacker,
    TrivialAttacker,
)
from repro.core.isolation import isolates, matching_count
from repro.core.leftover_hash import (
    RecordHasher,
    hash_bit_predicate,
    hash_threshold_predicate,
)
from repro.core.mechanisms import (
    ComposedMechanism,
    ConstantMechanism,
    CountMechanism,
    DPCountMechanism,
    IdentityMechanism,
    KAnonymityMechanism,
    Mechanism,
    PostProcessedMechanism,
)
from repro.core.predicate import AttributeConditions, Predicate, attribute_predicate
from repro.core.pso import PSOContext, PSOGame, PSOGameResult
from repro.core.theorems import (
    TheoremCheck,
    check_cohen_singleton_attack,
    check_composition_attack,
    check_count_mechanism_pso_security,
    check_dp_implies_pso_security,
    check_kanonymity_fails_pso,
    check_laplace_is_dp,
    check_ldiversity_fails_pso,
    check_post_processing_robustness,
    run_all_checks,
)

__all__ = [
    "AttributeConditions",
    "ComposedMechanism",
    "CompositionAttacker",
    "CountExploitingAttacker",
    "ConstantMechanism",
    "CountMechanism",
    "DPCountMechanism",
    "IdentityMechanism",
    "KAnonymityMechanism",
    "KAnonymityPSOAttacker",
    "Mechanism",
    "PSOContext",
    "PSOGame",
    "PSOGameResult",
    "PostProcessedMechanism",
    "Predicate",
    "RecordHasher",
    "TheoremCheck",
    "TrivialAttacker",
    "attribute_predicate",
    "check_cohen_singleton_attack",
    "check_composition_attack",
    "check_count_mechanism_pso_security",
    "check_dp_implies_pso_security",
    "check_kanonymity_fails_pso",
    "check_laplace_is_dp",
    "check_ldiversity_fails_pso",
    "check_post_processing_robustness",
    "composition_attack_success_bound",
    "expected_agreement_bits",
    "refinement_success_probability",
    "required_width_for_negligibility",
    "run_all_checks",
    "trivial_attacker_ceiling",
    "hash_bit_predicate",
    "hash_threshold_predicate",
    "isolates",
    "matching_count",
]
