"""The naive baseline: independent resampling of attribute marginals.

This is the kind of ad-hoc "anonymized extract" the paper's Diffix and
swapping discussions warn about: each attribute is resampled from its
empirical marginal (optionally within groups such as census blocks), so
every one-way marginal is approximately preserved — and so is every
uniqueness pattern those marginals induce.  No noise is added and nothing
is charged to an accountant; the release's :class:`~repro.privacy.kernels.
MechanismSpec` says so explicitly (``dp=False``, :class:`~repro.privacy.
kernels.ZeroKernel`).  :mod:`repro.synth.evaluation` (experiment E19)
shows the consequence: linkage re-identification still succeeds against
this baseline while the DP generators drive it to chance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.privacy.accounting import PrivacySpend
from repro.privacy.kernels import MechanismSpec, ZeroKernel
from repro.synth.base import SyntheticRelease, Synthesizer

__all__ = ["IndependentSynthesizer"]


class IndependentSynthesizer(Synthesizer):
    """Resample each attribute independently from its empirical marginal.

    Args:
        attributes: the attributes to resample; defaults to every attribute
            not used for grouping.
        group_by: optional attributes defining strata (e.g. ``("block",)``)
            — marginals are estimated and resampled within each stratum,
            which preserves strictly *more* structure (and leaks more).
    """

    name = "independent"

    def __init__(
        self,
        attributes: Sequence[str] | None = None,
        group_by: Sequence[str] | None = None,
    ):
        self.attributes = tuple(attributes) if attributes is not None else None
        self.group_by = tuple(group_by) if group_by is not None else ()
        if self.attributes is not None:
            overlap = set(self.attributes) & set(self.group_by)
            if overlap:
                raise ValueError(
                    f"attributes {sorted(overlap)} cannot be both resampled "
                    "and grouped on"
                )

    @property
    def spec(self) -> MechanismSpec:
        return MechanismSpec(
            name="independent-marginals",
            kernel=ZeroKernel(),
            spend=PrivacySpend(0.0, label="independent"),
            sensitivity=1.0,
            dp=False,
        )

    def _synthesize(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> SyntheticRelease:
        attributes = self.attributes
        if attributes is None:
            attributes = tuple(
                name for name in dataset.schema.names if name not in self.group_by
            )
        names = tuple(self.group_by) + tuple(attributes)
        schema = dataset.schema.project(names)

        if self.group_by:
            groups = dataset.group_by(self.group_by)
            group_items = sorted(groups.items())
        else:
            group_items = [((), list(range(len(dataset))))]

        columns = {name: dataset.column(name) for name in attributes}
        records: list[tuple] = []
        for key, row_indices in group_items:
            size = len(row_indices)
            resampled = []
            for name in attributes:
                column = columns[name]
                draws = rng.integers(0, size, size=size)
                resampled.append([column[row_indices[int(i)]] for i in draws])
            for row in zip(*resampled):
                records.append(tuple(key) + tuple(row))
        return SyntheticRelease(
            data=Dataset(schema, records, validate=False),
            spec=self.spec,
        )
