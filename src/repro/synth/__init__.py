"""Synthetic-data release — publishing, not just answering.

The interactive stack (PR 3/4) answers queries under a budget; this
subsystem *publishes* whole datasets under one pre-paid budget and then
turns the repo's own attack suite on the result::

    repro.synth.domain        CellDomain (dataset <-> histogram), integerize
        |
    repro.synth.base          Synthesizer ABC + SyntheticRelease
        |                     (MechanismSpec identity, accountant charging)
        +-- mwem              MWEM over a batched Workload (DP)
        +-- hierarchical      TopDown-style two-level geometric noise + LP
        +-- independent       naive marginals baseline (not DP)
        +-- binary            MWEM on {0,1}^n, the QueryServer fallback
        |
    repro.synth.evaluation    E4 uniqueness / E5 linkage / E7 reconstruction
                              re-run against the release + workload error

Every generator draws noise exclusively through
:mod:`repro.privacy.kernels`, charges its whole spend through a
:class:`~repro.privacy.accounting.PrivacyAccountant` before sampling, and
stamps its release with the auditable
:class:`~repro.privacy.kernels.MechanismSpec`.  Experiment E19 runs the
full publish-then-attack loop.
"""

from repro.synth.base import SyntheticRelease, Synthesizer
from repro.synth.binary import BinaryRelease, synthesize_binary
from repro.synth.domain import CellDomain, integerize
from repro.synth.evaluation import (
    SyntheticEvaluation,
    baseline_linkage,
    evaluate_release,
)
from repro.synth.hierarchical import HierarchicalSynthesizer
from repro.synth.independent import IndependentSynthesizer
from repro.synth.mwem import MWEMSynthesizer, run_mwem, workload_error

__all__ = [
    "BinaryRelease",
    "CellDomain",
    "HierarchicalSynthesizer",
    "IndependentSynthesizer",
    "MWEMSynthesizer",
    "SyntheticEvaluation",
    "SyntheticRelease",
    "Synthesizer",
    "baseline_linkage",
    "evaluate_release",
    "integerize",
    "run_mwem",
    "synthesize_binary",
    "workload_error",
]
