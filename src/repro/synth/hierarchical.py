"""TopDown-style hierarchical release over the census-block microdata.

A scaled-down model of the Census Bureau's 2020 TopDown Algorithm — the
system the paper presents as the Bureau's answer to database
reconstruction.  The pipeline is the same three stages:

1. **Measure**: histogram the microdata at two geographic levels — one
   national table and one per-block table over (sex, age bin, race,
   ethnicity) cells — and perturb every count with two-sided geometric
   noise (:class:`~repro.privacy.kernels.GeometricKernel`).  Each level is
   calibrated at ``epsilon / 2``; within a level the blocks partition the
   records, so the block tables compose in parallel and the whole release
   is ``epsilon``-DP.
2. **Post-process**: noisy counts are negative and inconsistent across
   levels.  One least-l1 LP (:func:`repro.reconstruction.lp_decode.
   solve_least_l1` with an unbounded-above box) fits a non-negative
   fractional histogram whose block tables sum to the national table —
   the same solver the reconstruction *attack* uses, now as a defense's
   estimator.
3. **Expand**: per-block histograms are integerized by largest-remainder
   rounding (:func:`~repro.synth.domain.integerize`) and expanded into
   records, drawing each person's age uniformly inside their age bin.

The block structure and attribute domains are treated as public, as in
the real TopDown; only the counts are protected.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse

from repro.data.dataset import Dataset
from repro.privacy.accounting import PrivacySpend
from repro.privacy.kernels import GeometricKernel, MechanismSpec
from repro.reconstruction.lp_decode import DEFAULT_LP_SOLVER, solve_least_l1
from repro.synth.base import SyntheticRelease, Synthesizer
from repro.synth.domain import CellDomain, integerize

__all__ = ["HierarchicalSynthesizer"]

#: The census attributes the hierarchy is built over, in cell-index order.
_CENSUS_ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")


class HierarchicalSynthesizer(Synthesizer):
    """Two-level geometric-noise release with LP consistency fitting.

    Args:
        epsilon: total privacy budget; half measures the national table,
            half the per-block tables (parallel across blocks).
        age_bin_width: width of the age bins the hierarchy tabulates
            (coarser bins shrink the LP; ages are re-drawn uniformly
            within their bin on expansion).
        solver: HiGHS algorithm for the consistency LP.
    """

    name = "hierarchical"

    def __init__(
        self,
        epsilon: float,
        age_bin_width: int = 10,
        solver: str = DEFAULT_LP_SOLVER,
    ):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if age_bin_width < 1:
            raise ValueError(f"age_bin_width must be >= 1, got {age_bin_width}")
        self.epsilon = float(epsilon)
        self.age_bin_width = int(age_bin_width)
        self.solver = solver

    @property
    def spec(self) -> MechanismSpec:
        return MechanismSpec(
            name=(
                f"hierarchical(eps={self.epsilon}, "
                f"age_bin={self.age_bin_width})"
            ),
            kernel=GeometricKernel.calibrate(self.epsilon / 2.0, sensitivity=1.0),
            spend=PrivacySpend(self.epsilon, label="hierarchical"),
            sensitivity=1.0,
            dp=True,
        )

    def _synthesize(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> SyntheticRelease:
        for name in _CENSUS_ATTRIBUTES:
            if name not in dataset.schema:
                raise ValueError(
                    f"hierarchical synthesis needs attribute {name!r} "
                    "(a data.censusblocks-style schema)"
                )
        schema = dataset.schema.project(_CENSUS_ATTRIBUTES)
        blocks = tuple(dataset.schema.attribute("block").domain)
        sexes = tuple(dataset.schema.attribute("sex").domain)
        races = tuple(dataset.schema.attribute("race").domain)
        ethnicities = tuple(dataset.schema.attribute("ethnicity").domain)
        age_domain = dataset.schema.attribute("age").domain
        low, high = int(age_domain.low), int(age_domain.high)  # type: ignore[attr-defined]
        bins = tuple(
            (lo, min(lo + self.age_bin_width - 1, high))
            for lo in range(low, high + 1, self.age_bin_width)
        )
        domain = CellDomain(
            ("block", "sex", "age_bin", "race", "ethnicity"),
            (blocks, sexes, bins, races, ethnicities),
        )
        num_blocks = len(blocks)
        cells_per_block = domain.size // num_blocks

        # Histogram the truth at both levels (block-major cell order).
        block_index = {value: i for i, value in enumerate(blocks)}
        indices = np.zeros(len(dataset), dtype=np.int64)
        for name, levels in (
            ("block", block_index),
            ("sex", {value: i for i, value in enumerate(sexes)}),
            ("age", {age: (age - low) // self.age_bin_width for age in range(low, high + 1)}),
            ("race", {value: i for i, value in enumerate(races)}),
            ("ethnicity", {value: i for i, value in enumerate(ethnicities)}),
        ):
            width = len(bins) if name == "age" else len(set(levels.values()))
            column = dataset.column(name)
            positions = np.fromiter(
                (levels[value] for value in column),
                dtype=np.int64,
                count=len(column),
            )
            indices = indices * width + positions
        counts = np.bincount(indices, minlength=domain.size).astype(np.float64)
        per_block = counts.reshape(num_blocks, cells_per_block)
        national = per_block.sum(axis=0)

        # Measure: geometric noise, national table first, then each block
        # in block order (C-order draw over the (blocks, cells) array).
        kernel = GeometricKernel.calibrate(self.epsilon / 2.0, sensitivity=1.0)
        noisy_national = national + kernel.sample_n(rng, cells_per_block)
        noisy_blocks = per_block + kernel.sample_n(
            rng, (num_blocks, cells_per_block)
        )

        # Post-process: least-l1 fit of a non-negative histogram whose
        # block tables are near the noisy block counts and sum to the
        # noisy national counts.
        identity = scipy.sparse.identity(domain.size, format="csr")
        summation = scipy.sparse.hstack(
            [scipy.sparse.identity(cells_per_block, format="csr")] * num_blocks,
            format="csr",
        )
        system = scipy.sparse.vstack([identity, summation], format="csr")
        targets = np.concatenate([noisy_blocks.ravel(), noisy_national])
        fitted = solve_least_l1(
            system, targets, lower=0.0, upper=None, solver=self.solver
        )

        # Expand: integerize each block and draw ages inside their bins.
        histogram = np.zeros(domain.size, dtype=np.int64)
        records: list[tuple] = []
        for b, block in enumerate(blocks):
            segment = fitted[b * cells_per_block : (b + 1) * cells_per_block]
            total = int(round(float(segment.sum())))
            if total <= 0:
                continue
            block_hist = integerize(segment, total)
            histogram[b * cells_per_block : (b + 1) * cells_per_block] = block_hist
            for cell_offset in np.flatnonzero(block_hist):
                count = int(block_hist[cell_offset])
                _, sex, (bin_lo, bin_hi), race, ethnicity = domain.cell(
                    int(b * cells_per_block + cell_offset)
                )
                ages = rng.integers(bin_lo, bin_hi + 1, size=count)
                records.extend(
                    (block, sex, int(age), race, ethnicity) for age in ages
                )
        return SyntheticRelease(
            data=Dataset(schema, records, validate=False),
            spec=self.spec,
            histogram=histogram,
            domain=domain,
        )
