"""MWEM: multiplicative weights + exponential mechanism synthesis.

Hardt-Ligett-McSherry's MWEM is the workhorse DP synthetic-data algorithm
and the natural consumer of the PR 2 batched query engine: the workload is
a packed :class:`~repro.queries.workload.Workload` over the cell domain,
so every round scores *all* queries with one sparse matvec.  Per round the
algorithm

1. selects the worst-approximated workload query with the exponential
   mechanism (:class:`repro.dp.exponential.ExponentialMechanism`, half the
   round's budget),
2. measures it with Laplace noise (:class:`repro.privacy.kernels.
   LaplaceKernel` calibrated at the other half), and
3. re-weights the synthetic histogram multiplicatively toward the
   measurement (:func:`multiplicative_update`, fully vectorized).

The released distribution is the average of the per-round histograms (the
standard variant with the provable error bound); records are sampled from
it with one multinomial draw.  Privacy: each round is ``epsilon / rounds``-
DP (half selection, half measurement; counting-query sensitivity 1), so
the whole synthesis is ``epsilon``-DP by basic composition.  The record
count is treated as public, as in the original analysis.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.exponential import ExponentialMechanism
from repro.privacy.accounting import PrivacySpend
from repro.privacy.kernels import LaplaceKernel, MechanismSpec
from repro.queries.workload import Workload
from repro.synth.base import SyntheticRelease, Synthesizer
from repro.synth.domain import CellDomain

__all__ = ["MWEMSynthesizer", "multiplicative_update", "run_mwem", "workload_error"]


def multiplicative_update(
    weights: np.ndarray, mask: np.ndarray, gap: float, total: float
) -> np.ndarray:
    """One MWEM re-weighting step, vectorized.

    Cells inside the measured query's ``mask`` are scaled by
    ``exp(gap / (2 * total))`` (``gap`` = noisy measurement minus current
    estimate), cells outside are untouched, and the histogram is
    renormalized back to ``total``.  ``benchmarks/bench_synth.py`` measures
    this path against an explicit per-cell Python loop and asserts they
    agree to the last float.
    """
    updated = np.where(
        mask, weights * np.exp(gap / (2.0 * total)), weights
    )
    return updated * (total / updated.sum())


def workload_error(
    workload: Workload, histogram: np.ndarray, synthetic: np.ndarray
) -> float:
    """Mean absolute per-query error between two histograms, per record.

    ``mean(|A h - A s|) / total`` — the scale-free fitting error MWEM's
    guarantee bounds; one sparse matvec per histogram.
    """
    matrix = workload.matrix(sparse=True)
    total = float(np.asarray(histogram, dtype=np.float64).sum())
    if total <= 0:
        raise ValueError("histogram must have positive total")
    gaps = matrix @ np.asarray(histogram, dtype=np.float64) - matrix @ np.asarray(
        synthetic, dtype=np.float64
    )
    return float(np.abs(gaps).mean() / total)


def run_mwem(
    histogram: np.ndarray,
    workload: Workload,
    epsilon: float,
    rounds: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, tuple[float, ...]]:
    """The MWEM core: fit a synthetic histogram to ``histogram``.

    Returns the averaged synthetic histogram (float, same total as the
    input) and the per-round workload-error trace of the running average.
    All noise flows through :class:`LaplaceKernel` and the exponential
    mechanism's selection probabilities; ``rng`` only ever supplies the
    underlying uniform draws.
    """
    histogram = np.asarray(histogram, dtype=np.float64)
    if histogram.ndim != 1:
        raise ValueError("histogram must be one-dimensional")
    if workload.n != histogram.size:
        raise ValueError(
            f"workload addresses n={workload.n} cells, histogram has "
            f"{histogram.size}"
        )
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    total = float(histogram.sum())
    if total <= 0:
        raise ValueError("histogram must contain at least one record")

    per_round = epsilon / rounds
    selector = ExponentialMechanism(per_round / 2.0, score_sensitivity=1.0)
    measure_kernel = LaplaceKernel.calibrate(per_round / 2.0, sensitivity=1.0)

    matrix = workload.matrix(sparse=True)
    true_answers = matrix @ histogram
    weights = np.full(histogram.size, total / histogram.size, dtype=np.float64)
    averaged = np.zeros_like(weights)
    trace: list[float] = []
    for round_index in range(1, rounds + 1):
        estimates = matrix @ weights
        scores = np.abs(true_answers - estimates)
        probabilities = selector.selection_probabilities(scores)
        chosen = int(rng.choice(scores.size, p=probabilities))
        measurement = float(true_answers[chosen]) + measure_kernel.sample(rng)
        weights = multiplicative_update(
            weights,
            workload.masks[chosen],
            measurement - float(estimates[chosen]),
            total,
        )
        averaged += weights
        running = averaged / round_index
        trace.append(float(np.abs(true_answers - matrix @ running).mean() / total))
    return averaged / rounds, tuple(trace)


class MWEMSynthesizer(Synthesizer):
    """DP synthetic microdata via MWEM over a packed workload.

    Args:
        workload: the counting-query workload to fit, over the cell domain
            (``workload.n`` must equal the domain size).
        epsilon: total privacy budget of the release.
        rounds: MWEM rounds; each consumes ``epsilon / rounds``.
        attributes: dataset attributes spanning the cell domain (default:
            all non-identifier handling is the caller's job — pass the
            columns to model explicitly).
        domain: a pre-built :class:`CellDomain`; derived from the dataset's
            schema when omitted.
    """

    name = "mwem"

    def __init__(
        self,
        workload: Workload,
        epsilon: float,
        rounds: int = 10,
        attributes: tuple[str, ...] | None = None,
        domain: CellDomain | None = None,
    ):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        if domain is not None and workload.n != domain.size:
            raise ValueError(
                f"workload addresses n={workload.n}, domain has {domain.size} cells"
            )
        self.workload = workload
        self.epsilon = float(epsilon)
        self.rounds = int(rounds)
        self.attributes = tuple(attributes) if attributes is not None else None
        self.domain = domain

    @property
    def spec(self) -> MechanismSpec:
        return MechanismSpec(
            name=f"mwem(eps={self.epsilon}, rounds={self.rounds})",
            kernel=LaplaceKernel.calibrate(
                self.epsilon / (2.0 * self.rounds), sensitivity=1.0
            ),
            spend=PrivacySpend(self.epsilon, label="mwem"),
            sensitivity=1.0,
            dp=True,
        )

    def _synthesize(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> SyntheticRelease:
        domain = self.domain
        if domain is None:
            domain = CellDomain.from_dataset(dataset, self.attributes)
        if self.workload.n != domain.size:
            raise ValueError(
                f"workload addresses n={self.workload.n}, domain has "
                f"{domain.size} cells"
            )
        histogram = domain.encode(dataset)
        averaged, trace = run_mwem(
            histogram, self.workload, self.epsilon, self.rounds, rng
        )
        total = int(histogram.sum())
        counts = rng.multinomial(total, averaged / averaged.sum())
        return SyntheticRelease(
            data=domain.to_dataset(counts),
            spec=self.spec,
            histogram=counts.astype(np.int64),
            domain=domain,
            error_trace=trace,
        )
