"""Cell domains: the histogram view of a finite-attribute dataset.

Every synthesizer in :mod:`repro.synth` works on the same representation:
a dataset over finitely many attributes is a *histogram* over the product
of the attribute domains.  One cell is one full combination of attribute
values; the histogram counts how many records occupy each cell.  In that
view a :class:`~repro.queries.workload.Workload` over ``n = |cells|``
positions is exactly a batch of linear counting queries — the PR 2 batched
query machinery (one sparse matvec for all answers) applies to microdata
synthesis unchanged.

:class:`CellDomain` owns the two directions of the encoding:

* :meth:`CellDomain.encode` — dataset → integer histogram (mixed-radix
  cell indexing, one vectorized pass);
* :meth:`CellDomain.to_dataset` — integer histogram → synthetic microdata
  (cells expanded in index order, so decoding is deterministic).

:func:`integerize` rounds a non-negative weight vector to an integer
histogram of a prescribed total by the largest-remainder method — the
deterministic post-processing used to turn fractional synthetic
histograms into record counts.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema

__all__ = ["CellDomain", "integerize"]

#: Refuse to build cell domains beyond this many cells (the histogram and
#: every workload column scale with it).
MAX_CELLS = 2_000_000


class CellDomain:
    """The product domain of finitely many named attributes.

    Args:
        names: attribute names, in order.
        levels: per-attribute value tuples; cell ``(v_0, ..., v_k)`` maps to
            the mixed-radix index ``((i_0 * d_1 + i_1) * d_2 + i_2) ...``
            where ``i_j`` is the position of ``v_j`` in ``levels[j]``.
        schema: optional :class:`~repro.data.schema.Schema` covering exactly
            ``names``; required for :meth:`to_dataset`.
    """

    def __init__(
        self,
        names: Sequence[str],
        levels: Sequence[Sequence[Hashable]],
        schema: Schema | None = None,
    ):
        if len(names) != len(levels):
            raise ValueError("names and levels must align")
        if not names:
            raise ValueError("a cell domain needs at least one attribute")
        self.names: tuple[str, ...] = tuple(names)
        self.levels: tuple[tuple[Hashable, ...], ...] = tuple(
            tuple(level) for level in levels
        )
        for name, level in zip(self.names, self.levels):
            if not level:
                raise ValueError(f"attribute {name!r} has an empty level set")
            if len(set(level)) != len(level):
                raise ValueError(f"attribute {name!r} has duplicate levels")
        size = 1
        for level in self.levels:
            size *= len(level)
        if size > MAX_CELLS:
            raise ValueError(
                f"cell domain has {size:,} cells, above the cap of "
                f"{MAX_CELLS:,}; project out an attribute or bin it"
            )
        self.size = int(size)
        self.schema = schema
        self._index_maps: tuple[dict[Hashable, int], ...] = tuple(
            {value: i for i, value in enumerate(level)} for level in self.levels
        )
        # Mixed-radix place values, most-significant attribute first.
        radices = np.ones(len(self.levels), dtype=np.int64)
        for j in range(len(self.levels) - 2, -1, -1):
            radices[j] = radices[j + 1] * len(self.levels[j + 1])
        self._radices = radices

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, names: Sequence[str] | None = None
    ) -> "CellDomain":
        """The cell domain spanned by a dataset's (enumerable) schema domains.

        ``names`` defaults to every attribute; identifier columns (e.g.
        ``person_id``) should be excluded by the caller — a synthesizer
        that kept them would be a copy machine, not a release.
        """
        if names is None:
            names = dataset.schema.names
        levels = []
        for name in names:
            domain = dataset.schema.attribute(name).domain
            if not domain.is_enumerable:
                raise ValueError(f"attribute {name!r} has a non-enumerable domain")
            levels.append(tuple(domain))
        return cls(names, levels, schema=dataset.schema.project(names))

    def index_of(self, values: Sequence[Hashable]) -> int:
        """Mixed-radix cell index of one value combination."""
        if len(values) != len(self.names):
            raise ValueError(f"expected {len(self.names)} values, got {len(values)}")
        index = 0
        for value, index_map, name in zip(values, self._index_maps, self.names):
            try:
                level = index_map[value]
            except KeyError:
                raise ValueError(f"{value!r} is not a level of {name!r}") from None
            index = index * len(index_map) + level
        return int(index)

    def cell(self, index: int) -> tuple[Hashable, ...]:
        """The value combination at ``index`` (inverse of :meth:`index_of`)."""
        if not 0 <= index < self.size:
            raise ValueError(f"cell index {index} out of range [0, {self.size})")
        values = []
        for level in reversed(self.levels):
            index, position = divmod(index, len(level))
            values.append(level[position])
        return tuple(reversed(values))

    def cell_indices(self, dataset: Dataset) -> np.ndarray:
        """The cell index of every record, in row order."""
        indices = np.zeros(len(dataset), dtype=np.int64)
        for name, index_map in zip(self.names, self._index_maps):
            column = dataset.column(name)
            try:
                positions = np.fromiter(
                    (index_map[value] for value in column),
                    dtype=np.int64,
                    count=len(column),
                )
            except KeyError as error:
                raise ValueError(
                    f"value {error.args[0]!r} of attribute {name!r} is outside "
                    "the cell domain"
                ) from None
            indices = indices * len(index_map) + positions
        return indices

    def encode(self, dataset: Dataset) -> np.ndarray:
        """The dataset's cell histogram (int64, length :attr:`size`)."""
        return np.bincount(self.cell_indices(dataset), minlength=self.size).astype(
            np.int64
        )

    def decode(self, histogram: np.ndarray) -> list[tuple[Hashable, ...]]:
        """Expand an integer histogram into records, in cell-index order."""
        histogram = np.asarray(histogram)
        if histogram.shape != (self.size,):
            raise ValueError(
                f"histogram has shape {histogram.shape}, domain has {self.size} cells"
            )
        if np.any(histogram < 0):
            raise ValueError("histogram counts must be non-negative")
        records: list[tuple[Hashable, ...]] = []
        for index in np.flatnonzero(histogram):
            records.extend([self.cell(int(index))] * int(histogram[index]))
        return records

    def to_dataset(self, histogram: np.ndarray) -> Dataset:
        """An integer histogram as synthetic microdata over :attr:`schema`."""
        if self.schema is None:
            raise ValueError(
                "this CellDomain carries no schema; build it with from_dataset"
            )
        return Dataset(self.schema, self.decode(histogram), validate=False)

    def __repr__(self) -> str:
        shape = " x ".join(str(len(level)) for level in self.levels)
        return f"CellDomain({', '.join(self.names)}; {shape} = {self.size} cells)"


def integerize(weights: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative weights to an integer histogram summing to ``total``.

    Largest-remainder rounding: scale to the target total, take floors, and
    hand the remaining units to the cells with the largest fractional parts
    (ties broken by cell index, so the result is deterministic).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        return np.zeros(weights.size, dtype=np.int64)
    mass = float(weights.sum())
    if mass <= 0:
        raise ValueError("weights must have positive mass when total > 0")
    scaled = weights * (total / mass)
    base = np.floor(scaled).astype(np.int64)
    leftover = int(total - base.sum())
    if leftover > 0:
        order = np.argsort(-(scaled - base), kind="stable")
        base[order[:leftover]] += 1
    return base
