"""The synthesizer interface and the release record it produces.

A :class:`Synthesizer` turns a private dataset into a
:class:`SyntheticRelease`: synthetic microdata plus the released histogram
it was expanded from and — crucially — the :class:`~repro.privacy.kernels.
MechanismSpec` that is the release's auditable identity.  The spec carries
the privacy spend the synthesis costs; :meth:`Synthesizer.synthesize`
charges that spend through a :class:`~repro.privacy.accounting.
PrivacyAccountant` *before* any noise is drawn, all-or-nothing: a refused
charge raises :class:`~repro.privacy.accounting.BudgetExhausted` and
nothing is synthesized; a synthesis that fails after the charge rolls the
reservation back.

The one-release-one-spec discipline mirrors the query layer: the epsilon
the accountant recorded, the kernel the synthesizer sampled, and the claim
an auditor would verify are the same object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.privacy.accounting import PrivacyAccountant
from repro.privacy.kernels import MechanismSpec
from repro.synth.domain import CellDomain
from repro.utils.rng import RngSeed, ensure_rng

__all__ = ["SyntheticRelease", "Synthesizer"]


@dataclass(frozen=True)
class SyntheticRelease:
    """One published synthetic dataset and its provenance.

    Attributes:
        data: the synthetic microdata (safe to hand to an analyst — or an
            attacker; :mod:`repro.synth.evaluation` does exactly that).
        spec: the auditable mechanism identity; ``spec.spend`` is what the
            accountant was charged for this release.
        histogram: the released integer cell histogram ``data`` was expanded
            from (``None`` for synthesizers that generate records directly).
        domain: the cell domain ``histogram`` is indexed by.
        error_trace: optional per-round workload error of the fitting loop
            (MWEM records it; see :mod:`repro.synth.mwem`).
    """

    data: Dataset
    spec: MechanismSpec
    histogram: np.ndarray | None = None
    domain: CellDomain | None = None
    error_trace: tuple[float, ...] = field(default=(), compare=False)

    def __len__(self) -> int:
        return len(self.data)


class Synthesizer(ABC):
    """Base class of every synthetic-data generator.

    Subclasses implement :meth:`_synthesize` (the generation itself) and
    the :attr:`spec` property (the mechanism identity, including the spend
    to charge); :meth:`synthesize` wraps both with the accountant
    discipline shared by all generators.
    """

    #: Short stable identifier, e.g. ``"mwem"`` — used in spec names.
    name: str = "synthesizer"

    @property
    @abstractmethod
    def spec(self) -> MechanismSpec:
        """The release's mechanism identity (kernel, spend, DP claim)."""

    @abstractmethod
    def _synthesize(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> SyntheticRelease:
        """Generate the release; all randomness comes from ``rng``."""

    def synthesize(
        self,
        dataset: Dataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngSeed = None,
    ) -> SyntheticRelease:
        """Produce one release, charging ``accountant`` all-or-nothing.

        The whole release is one charge of ``spec.spend`` (synthesis is a
        single mechanism invocation however many rounds it runs inside).
        The reservation happens *before* generation — a refused budget
        leaks nothing, not even the random-stream state — and is rolled
        back if generation itself fails.
        """
        generator = ensure_rng(rng)
        spec = self.spec
        if accountant is not None:
            accountant.reserve(
                1, spec.spend.epsilon, spec.spend.delta, label=spec.name
            )
        try:
            release = self._synthesize(dataset, generator)
        except BaseException:
            if accountant is not None:
                accountant.rollback(1, spec.spend.epsilon, spec.spend.delta)
            raise
        return release

    def __repr__(self) -> str:
        return f"{type(self).__name__}(spec={self.spec.name!r})"
