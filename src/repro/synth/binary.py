"""Synthetic releases of binary vectors — the Dinur-Nissim data model.

The interactive stack (PR 3/4) serves subset-count queries over a secret
``x in {0,1}^n``.  This module runs the same MWEM core as
:mod:`repro.synth.mwem` on that model: the vector *is* an ``n``-cell
histogram whose total is the (public) number of ones, a
:class:`~repro.queries.workload.Workload` is already the query family, and
the released object is a synthetic bit vector obtained by top-k rounding
of the fitted weights.  :class:`~repro.service.server.QueryServer` uses it
for its ``synthetic_fallback`` mode: once an analyst's interactive budget
is gone, further queries are answered *exactly* on the synthetic vector —
free post-processing of one pre-paid DP release instead of a hard cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.privacy.accounting import PrivacyAccountant, PrivacySpend
from repro.privacy.kernels import LaplaceKernel, MechanismSpec
from repro.queries.workload import Workload
from repro.synth.mwem import run_mwem
from repro.utils.rng import RngSeed, ensure_rng

__all__ = ["BinaryRelease", "synthesize_binary"]


@dataclass(frozen=True)
class BinaryRelease:
    """A synthetic bit vector and the mechanism identity that paid for it.

    Attributes:
        vector: the released ``{0,1}^n`` vector (int64).
        spec: the auditable mechanism identity; ``spec.spend`` is the whole
            release's privacy cost — answers computed *on* the vector are
            post-processing and cost nothing further.
        error_trace: per-round workload error of the MWEM fit.
    """

    vector: np.ndarray
    spec: MechanismSpec
    error_trace: tuple[float, ...] = field(default=(), compare=False)

    @property
    def n(self) -> int:
        return int(self.vector.size)

    def answer(self, mask: np.ndarray) -> int:
        """Exact subset count on the synthetic vector (post-processing)."""
        mask = np.asarray(mask)
        if mask.shape != self.vector.shape:
            raise ValueError(
                f"mask has shape {mask.shape}, release has n={self.n}"
            )
        return int(self.vector[mask.astype(bool)].sum())

    def answer_workload(self, workload: Workload) -> np.ndarray:
        """Exact answers to a whole workload on the synthetic vector."""
        if workload.n != self.n:
            raise ValueError(
                f"workload addresses n={workload.n}, release has n={self.n}"
            )
        return np.asarray(
            workload.matrix(sparse=True) @ self.vector, dtype=np.int64
        )


def synthesize_binary(
    data: np.ndarray,
    epsilon: float,
    rounds: int = 10,
    *,
    workload: Workload | None = None,
    num_queries: int | None = None,
    density: float = 0.5,
    accountant: PrivacyAccountant | None = None,
    rng: RngSeed = None,
) -> BinaryRelease:
    """One MWEM release of a secret bit vector.

    The fitting workload is either supplied or drawn as ``num_queries``
    (default ``4 n``) random subsets from ``rng``; the number of ones is
    treated as public (it is MWEM's histogram total).  When ``accountant``
    is given the full ``epsilon`` is reserved before any noise is drawn
    and rolled back if synthesis fails, exactly as
    :meth:`repro.synth.base.Synthesizer.synthesize` does.
    """
    data = np.asarray(data)
    if data.ndim != 1:
        raise ValueError("data must be a one-dimensional bit vector")
    if not np.isin(data, (0, 1)).all():
        raise ValueError("data must be a {0,1} vector")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    n = data.size
    generator = ensure_rng(rng)
    spec = MechanismSpec(
        name=f"mwem-binary(eps={epsilon}, rounds={rounds})",
        kernel=LaplaceKernel.calibrate(epsilon / (2.0 * rounds), sensitivity=1.0),
        spend=PrivacySpend(float(epsilon), label="mwem-binary"),
        sensitivity=1.0,
        dp=True,
    )
    if accountant is not None:
        accountant.reserve(1, spec.spend.epsilon, spec.spend.delta, label=spec.name)
    try:
        if workload is None:
            if num_queries is None:
                num_queries = 4 * n
            workload = Workload.random(n, num_queries, density=density, rng=generator)
        elif workload.n != n:
            raise ValueError(f"workload addresses n={workload.n}, data has n={n}")
        ones = int(data.sum())
        if ones == 0 or ones == n:
            # Degenerate vectors have nothing to fit; the (public) total
            # determines the release outright.
            vector = np.full(n, 1 if ones else 0, dtype=np.int64)
            trace: tuple[float, ...] = ()
        else:
            averaged, trace = run_mwem(
                data.astype(np.float64), workload, epsilon, rounds, generator
            )
            order = np.argsort(-averaged, kind="stable")
            vector = np.zeros(n, dtype=np.int64)
            vector[order[:ones]] = 1
    except BaseException:
        if accountant is not None:
            accountant.rollback(1, spec.spend.epsilon, spec.spend.delta)
        raise
    return BinaryRelease(vector=vector, spec=spec, error_trace=trace)
