"""Attack-side evaluation of synthetic releases.

A release is only as good as the attacks it survives.  This module closes
the loop by re-running the repo's attack suite *against the synthetic
output* of a :class:`~repro.synth.base.Synthesizer`:

* **Uniqueness** (E4): what fraction of synthetic records is singled out
  by the census quasi-identifiers — the raw material of linkage.
* **Linkage** (E5/E7): join the identified commercial file directly
  against the published synthetic microdata with
  :func:`repro.reconstruction.census_solver.reidentify_records`; a
  confirmed match means the release still pins a real person's sensitive
  attributes to their identity.
* **Reconstruction** (E7): tabulate the synthetic data census-style,
  reconstruct it with the block solver, and link the reconstruction — the
  attacker's best strategy when only tables of the release are published.
* **Workload error** (the Fundamental Law's other side): how far the
  release's answers drift from the truth on a counting-query workload.

Experiment E19 sweeps these metrics over the three generators and over
epsilon, reproducing the paper's trade-off: utility (workload error)
improves with budget while the DP releases hold re-identification at the
baseline the independent-marginals release fails to reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.uniqueness import uniqueness_profile
from repro.data.dataset import Dataset
from repro.queries.workload import Workload
from repro.reconstruction.census_solver import (
    CensusReconstructionResult,
    ReconstructedRecord,
    ReidentificationResult,
    reconstruct_census,
    reidentify,
    reidentify_records,
)
from repro.reconstruction.tabulation import tabulate_blocks
from repro.synth.base import SyntheticRelease
from repro.synth.domain import CellDomain
from repro.synth.mwem import workload_error

__all__ = [
    "SyntheticEvaluation",
    "baseline_linkage",
    "census_records",
    "evaluate_release",
]

#: Default quasi-identifier sets for the uniqueness profile — the census
#: analogue of Sweeney's (ZIP, birth date, sex).
DEFAULT_QI_SETS: tuple[tuple[str, ...], ...] = (
    ("block", "sex", "age"),
    ("block", "sex", "age", "race", "ethnicity"),
)

_RECORD_ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")


@dataclass(frozen=True)
class SyntheticEvaluation:
    """Every attack metric for one release, side by side.

    Attributes:
        name: the release's mechanism name (``release.spec.name``).
        epsilon: the privacy budget the release was charged.
        records: number of synthetic records.
        uniqueness: QI-set -> unique fraction on the synthetic data.
        linkage: commercial-file linkage against the synthetic microdata.
        reconstruction: block-solver reconstruction of the synthetic
            tables, scored against the *true* microdata (``None`` when the
            reconstruction step is skipped).
        reconstruction_linkage: linkage of the reconstructed records
            (``None`` when skipped).
        workload_error: mean per-record workload error vs the truth
            (``None`` when no workload/domain was supplied).
    """

    name: str
    epsilon: float
    records: int
    uniqueness: dict[tuple[str, ...], float]
    linkage: ReidentificationResult
    reconstruction: CensusReconstructionResult | None = None
    reconstruction_linkage: ReidentificationResult | None = None
    workload_error: float | None = None


def census_records(dataset: Dataset) -> list[ReconstructedRecord]:
    """A dataset's rows as (block, sex, age, race, ethnicity) tuples.

    The common currency of the linkage attacks — reconstructed records and
    synthetic records are matched by the same
    :func:`~repro.reconstruction.census_solver.reidentify_records` join.
    """
    for name in _RECORD_ATTRIBUTES:
        if name not in dataset.schema:
            raise ValueError(f"dataset is missing census attribute {name!r}")
    indices = [dataset.schema.index_of(name) for name in _RECORD_ATTRIBUTES]
    return [
        (int(row[indices[0]]), row[indices[1]], int(row[indices[2]]),  # type: ignore[arg-type]
         row[indices[3]], row[indices[4]])
        for row in dataset.rows
    ]


def baseline_linkage(
    truth: Dataset, commercial: Dataset, age_tolerance: int = 1
) -> ReidentificationResult:
    """The no-protection reference: link the commercial file against the
    raw microdata itself.

    This is the most an attacker could extract from any release of this
    data; E19 scores each synthesizer by how far below it the release's
    own linkage rate lands.
    """
    return reidentify_records(
        census_records(truth), commercial, truth, age_tolerance
    )


def evaluate_release(
    release: SyntheticRelease,
    truth: Dataset,
    commercial: Dataset,
    *,
    workload: Workload | None = None,
    domain: CellDomain | None = None,
    qi_sets: Sequence[Sequence[str]] = DEFAULT_QI_SETS,
    age_tolerance: int = 1,
    reconstruct: bool = True,
) -> SyntheticEvaluation:
    """Run the attack suite against one synthetic release.

    Args:
        release: the release under attack.
        truth: the private microdata the release was synthesized from
            (ground truth for scoring; must carry ``person_id``).
        commercial: the identified commercial file
            (:func:`repro.data.censusblocks.commercial_database`).
        workload: counting-query workload for the utility metric; needs a
            cell ``domain`` (explicit, or the release's own) whose
            attributes exist in both the truth and the synthetic data.
        domain: cell domain used to histogram both datasets for the
            workload-error metric; defaults to ``release.domain``.
        qi_sets: quasi-identifier sets for the uniqueness profile.
        age_tolerance: linkage age slack (the paper's "age +-1").
        reconstruct: also tabulate + reconstruct the synthetic data (the
            E7 attack on the release's tables); skip for speed.
    """
    synthetic = release.data
    if len(synthetic) == 0:
        uniqueness = {tuple(qi): 0.0 for qi in qi_sets}
    else:
        uniqueness = uniqueness_profile(synthetic, qi_sets)
    linkage = reidentify_records(
        census_records(synthetic), commercial, truth, age_tolerance
    )

    reconstruction = None
    reconstruction_linkage = None
    if reconstruct and len(synthetic) > 0:
        tables = tabulate_blocks(synthetic)
        reconstruction = reconstruct_census(tables, truth=truth)
        reconstruction_linkage = reidentify(
            reconstruction, commercial, truth, age_tolerance
        )

    error = None
    if workload is not None:
        if domain is None:
            domain = release.domain
        if domain is None:
            raise ValueError(
                "workload error needs a cell domain; pass domain= or use a "
                "release that carries one"
            )
        usable = all(name in truth.schema for name in domain.names)
        if not usable:
            raise ValueError(
                "the cell domain's attributes must exist in the truth data "
                f"(domain has {domain.names})"
            )
        true_histogram = domain.encode(truth)
        if release.histogram is not None and release.domain is domain:
            synthetic_histogram = release.histogram
        else:
            synthetic_histogram = domain.encode(synthetic)
        error = workload_error(workload, true_histogram, synthetic_histogram)

    return SyntheticEvaluation(
        name=release.spec.name,
        epsilon=release.spec.spend.epsilon,
        records=len(synthetic),
        uniqueness=dict(uniqueness),
        linkage=linkage,
        reconstruction=reconstruction,
        reconstruction_linkage=reconstruction_linkage,
        workload_error=error,
    )
