"""The Gaussian mechanism for (epsilon, delta)-differential privacy.

Included because the paper's discussion of DP as an emerging standard
covers approximate DP deployments (the 2020 Census uses discrete Gaussian
noise).  The classical calibration ``sigma = sensitivity *
sqrt(2 ln(1.25/delta)) / epsilon`` gives (epsilon, delta)-DP for
``epsilon <= 1``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngSeed, ensure_rng


class GaussianMechanism:
    """Additive Gaussian noise calibrated for (epsilon, delta)-DP."""

    def __init__(self, epsilon: float, delta: float, sensitivity: float = 1.0):
        if not 0 < epsilon <= 1:
            raise ValueError(
                f"the classical Gaussian calibration requires 0 < epsilon <= 1, got {epsilon}"
            )
        if not 0 < delta < 1:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.sensitivity = float(sensitivity)

    @property
    def sigma(self) -> float:
        """The calibrated noise standard deviation."""
        return self.sensitivity * np.sqrt(2.0 * np.log(1.25 / self.delta)) / self.epsilon

    def release(self, true_value: float, rng: RngSeed = None) -> float:
        """One noisy release of ``true_value``."""
        generator = ensure_rng(rng)
        return float(true_value + generator.normal(0.0, self.sigma))

    def release_many(self, true_value: float, count: int, rng: RngSeed = None) -> np.ndarray:
        """``count`` independent releases (each spends the budget)."""
        if count <= 0:
            raise ValueError("count must be positive")
        generator = ensure_rng(rng)
        return true_value + generator.normal(0.0, self.sigma, size=count)

    def __repr__(self) -> str:
        return (
            f"GaussianMechanism(epsilon={self.epsilon}, delta={self.delta}, "
            f"sensitivity={self.sensitivity})"
        )
