"""The Gaussian mechanism for (epsilon, delta)-differential privacy.

Included because the paper's discussion of DP as an emerging standard
covers approximate DP deployments (the 2020 Census uses discrete Gaussian
noise).  The classical calibration ``sigma = sensitivity *
sqrt(2 ln(1.25/delta)) / epsilon`` gives (epsilon, delta)-DP for
``epsilon <= 1``.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.accounting import PrivacySpend
from repro.privacy.kernels import GaussianKernel, MechanismSpec
from repro.utils.rng import RngSeed, ensure_rng


class GaussianMechanism:
    """Additive Gaussian noise calibrated for (epsilon, delta)-DP.

    The ``sigma`` calibration and the sampling live on a
    :class:`~repro.privacy.kernels.GaussianKernel` built once at
    construction; this class contributes the statistic and the
    (epsilon, delta) claim.
    """

    def __init__(self, epsilon: float, delta: float, sensitivity: float = 1.0):
        self.kernel = GaussianKernel.calibrate(epsilon, delta, sensitivity)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.sensitivity = float(sensitivity)

    @property
    def sigma(self) -> float:
        """The calibrated noise standard deviation."""
        return self.kernel.sigma

    def spec(self) -> MechanismSpec:
        """The mechanism's auditable identity: kernel + per-release spend."""
        return MechanismSpec(
            name=f"gaussian(eps={self.epsilon}, delta={self.delta})",
            kernel=self.kernel,
            spend=PrivacySpend(self.epsilon, self.delta),
            sensitivity=self.sensitivity,
            dp=True,
        )

    def release(self, true_value: float, rng: RngSeed = None) -> float:
        """One noisy release of ``true_value``."""
        generator = ensure_rng(rng)
        return float(true_value + self.kernel.sample(generator))

    def release_many(self, true_value: float, count: int, rng: RngSeed = None) -> np.ndarray:
        """``count`` independent releases (each spends the budget)."""
        if count <= 0:
            raise ValueError("count must be positive")
        generator = ensure_rng(rng)
        return true_value + self.kernel.sample_n(generator, count)

    def __repr__(self) -> str:
        return (
            f"GaussianMechanism(epsilon={self.epsilon}, delta={self.delta}, "
            f"sensitivity={self.sensitivity})"
        )
