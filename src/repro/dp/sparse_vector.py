"""The sparse vector technique (AboveThreshold).

The canonical answer to the Fundamental Law's "too many questions" horn:
instead of paying for every query, AboveThreshold privately reports *which*
of a long adaptive query stream first exceeds a threshold, paying only for
the (noisy) threshold comparison and the single positive report.  Included
as substrate completeness for the DP layer — it is the standard building
block for answering large workloads under a budget that the reconstruction
experiments show bounded-noise mechanisms cannot survive.

Implementation follows Dwork-Roth (Algorithm 1, AboveThreshold): the
threshold is perturbed once with Lap(2/eps), each query answer with
Lap(4/eps); the mechanism halts at the first reported positive and is
eps-DP for sensitivity-1 queries regardless of the stream length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.privacy.kernels import LaplaceKernel
from repro.utils.rng import RngSeed, ensure_rng


@dataclass(frozen=True)
class SparseVectorOutcome:
    """What AboveThreshold reported.

    Attributes:
        index: position of the first above-threshold query, or None if the
            stream ended below threshold everywhere.
        queries_processed: how many queries were consumed.
    """

    index: int | None
    queries_processed: int

    @property
    def halted(self) -> bool:
        """Whether a positive was reported."""
        return self.index is not None


class AboveThreshold:
    """One-shot sparse vector: report the first query exceeding ``threshold``.

    Args:
        epsilon: the total privacy budget of the run.
        threshold: the (public) comparison threshold.
        sensitivity: per-query global sensitivity (counts: 1).
    """

    def __init__(self, epsilon: float, threshold: float, sensitivity: float = 1.0):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self.epsilon = float(epsilon)
        self.threshold = float(threshold)
        self.sensitivity = float(sensitivity)
        # Dwork-Roth Algorithm 1 split: Lap(2 sens/eps) on the threshold,
        # Lap(4 sens/eps) on each answer — both drawn by privacy kernels.
        self._threshold_kernel = LaplaceKernel(2.0 * self.sensitivity / self.epsilon)
        self._answer_kernel = LaplaceKernel(4.0 * self.sensitivity / self.epsilon)

    def run(
        self,
        answers: Iterable[float],
        rng: RngSeed = None,
        max_queries: int | None = None,
    ) -> SparseVectorOutcome:
        """Consume true query answers; stop at the first noisy positive.

        ``answers`` may be any iterable (including a generator of adaptive
        queries); ``max_queries`` caps consumption for unbounded streams.
        """
        generator = ensure_rng(rng)
        noisy_threshold = self.threshold + self._threshold_kernel.sample(generator)
        processed = 0
        for index, answer in enumerate(answers):
            if max_queries is not None and index >= max_queries:
                break
            processed += 1
            noisy_answer = answer + self._answer_kernel.sample(generator)
            if noisy_answer >= noisy_threshold:
                return SparseVectorOutcome(index=index, queries_processed=processed)
        return SparseVectorOutcome(index=None, queries_processed=processed)


def sparse_count_queries(
    dataset,
    predicates: Iterable[Callable],
    epsilon: float,
    threshold: float,
    rng: RngSeed = None,
) -> SparseVectorOutcome:
    """AboveThreshold over counting queries on a Dataset.

    Convenience wrapper: streams ``dataset.count(p)`` for each predicate
    into :class:`AboveThreshold`.
    """

    def answers() -> Iterator[float]:
        for predicate in predicates:
            yield float(dataset.count(predicate))

    return AboveThreshold(epsilon, threshold).run(answers(), rng=rng)
