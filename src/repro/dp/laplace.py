"""The Laplace mechanism (paper, Theorem 1.3) and its discrete sibling.

``M_Lap(x) = f(x) + Lap(sensitivity / epsilon)`` is epsilon-DP for any
statistic ``f`` of global sensitivity ``sensitivity``.  The paper
instantiates it for counting: ``f(x) = sum_i x_i`` over ``x in {0,1}^n`` has
sensitivity 1.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.dataset import Dataset, Record
from repro.privacy.accounting import PrivacySpend
from repro.privacy.kernels import GeometricKernel, LaplaceKernel, MechanismSpec
from repro.utils.rng import RngSeed, ensure_rng


class LaplaceMechanism:
    """Additive Laplace noise calibrated to sensitivity/epsilon.

    All sampling delegates to a :class:`~repro.privacy.kernels.LaplaceKernel`
    calibrated once at construction — the mechanism owns the statistic and
    the privacy claim, the kernel owns the noise.

    Attributes:
        epsilon: the privacy-loss parameter (> 0).
        sensitivity: the statistic's global sensitivity (> 0).
        kernel: the calibrated noise kernel.
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0):
        self.kernel = LaplaceKernel.calibrate(epsilon, sensitivity)
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)

    @property
    def scale(self) -> float:
        """The Laplace scale parameter ``b = sensitivity / epsilon``."""
        return self.kernel.scale

    def spec(self) -> MechanismSpec:
        """The mechanism's auditable identity: kernel + per-release spend."""
        return MechanismSpec(
            name=f"laplace(eps={self.epsilon})",
            kernel=self.kernel,
            spend=PrivacySpend(self.epsilon),
            sensitivity=self.sensitivity,
            dp=True,
        )

    def release(self, true_value: float, rng: RngSeed = None) -> float:
        """One noisy release of ``true_value``."""
        generator = ensure_rng(rng)
        return float(true_value + self.kernel.sample(generator))

    def release_many(self, true_value: float, count: int, rng: RngSeed = None) -> np.ndarray:
        """``count`` independent releases (each spends epsilon!)."""
        if count <= 0:
            raise ValueError("count must be positive")
        generator = ensure_rng(rng)
        return true_value + self.kernel.sample_n(generator, count)

    def expected_absolute_error(self) -> float:
        """E|noise| = scale (the mechanism's accuracy cost)."""
        return self.scale

    def error_quantile(self, probability: float) -> float:
        """The |noise| bound holding with the given probability.

        ``P(|Lap(b)| <= b * ln(1/(1-probability)))``; used by utility
        analyses to trade epsilon against accuracy.
        """
        if not 0 < probability < 1:
            raise ValueError("probability must lie in (0, 1)")
        return float(self.scale * np.log(1.0 / (1.0 - probability)))

    def __repr__(self) -> str:
        return f"LaplaceMechanism(epsilon={self.epsilon}, sensitivity={self.sensitivity})"


class GeometricMechanism:
    """The two-sided geometric ("discrete Laplace") mechanism.

    Integer-valued counterpart of the Laplace mechanism: adds noise with
    ``P(k) proportional to exp(-epsilon * |k| / sensitivity)`` over the
    integers.  Epsilon-DP for integer statistics of the given sensitivity,
    and the natural choice for counts when the output must stay integral.
    """

    def __init__(self, epsilon: float, sensitivity: int = 1):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.sensitivity = int(sensitivity)
        self.kernel = GeometricKernel.calibrate(self.epsilon, self.sensitivity)

    def spec(self) -> MechanismSpec:
        """The mechanism's auditable identity: kernel + per-release spend."""
        return MechanismSpec(
            name=f"geometric(eps={self.epsilon})",
            kernel=self.kernel,
            spend=PrivacySpend(self.epsilon),
            sensitivity=float(self.sensitivity),
            dp=True,
        )

    def release(self, true_value: int, rng: RngSeed = None) -> int:
        """One noisy integer release of ``true_value``."""
        generator = ensure_rng(rng)
        return int(true_value + int(self.kernel.sample(generator)))

    def __repr__(self) -> str:
        return f"GeometricMechanism(epsilon={self.epsilon}, sensitivity={self.sensitivity})"


def private_count(
    dataset: Dataset,
    predicate: Callable[[Record], bool],
    epsilon: float,
    rng: RngSeed = None,
) -> float:
    """Epsilon-DP count of records satisfying ``predicate``.

    The differentially private version of the paper's counting mechanism
    ``M#q``; a count has sensitivity 1 under record replacement.
    """
    mechanism = LaplaceMechanism(epsilon, sensitivity=1.0)
    return mechanism.release(dataset.count(predicate), rng)
