"""The exponential mechanism for private selection.

Selects a candidate from a finite set with probability proportional to
``exp(epsilon * score / (2 * score_sensitivity))``; epsilon-DP for any
score function of the stated sensitivity.  Used by the DP k-anonymity-style
"private partitioning" example and exercised in the PSO experiments as a
non-numeric DP release.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.utils.rng import RngSeed, ensure_rng

Candidate = TypeVar("Candidate")


class ExponentialMechanism:
    """Private selection over a finite candidate set."""

    def __init__(self, epsilon: float, score_sensitivity: float = 1.0):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if score_sensitivity <= 0:
            raise ValueError(f"score_sensitivity must be positive, got {score_sensitivity}")
        self.epsilon = float(epsilon)
        self.score_sensitivity = float(score_sensitivity)

    def selection_probabilities(self, scores: Sequence[float]) -> np.ndarray:
        """The mechanism's output distribution for the given scores."""
        scores = np.asarray(scores, dtype=float)
        if scores.size == 0:
            raise ValueError("need at least one candidate")
        logits = self.epsilon * scores / (2.0 * self.score_sensitivity)
        logits -= logits.max()  # stability
        weights = np.exp(logits)
        return weights / weights.sum()

    def select(
        self,
        candidates: Sequence[Candidate],
        score: Callable[[Candidate], float],
        rng: RngSeed = None,
    ) -> Candidate:
        """Draw one candidate with exponential-mechanism probabilities."""
        if not candidates:
            raise ValueError("need at least one candidate")
        generator = ensure_rng(rng)
        probabilities = self.selection_probabilities([score(c) for c in candidates])
        index = generator.choice(len(candidates), p=probabilities)
        return candidates[int(index)]

    def __repr__(self) -> str:
        return (
            f"ExponentialMechanism(epsilon={self.epsilon}, "
            f"score_sensitivity={self.score_sensitivity})"
        )
