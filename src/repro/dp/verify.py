"""Empirical differential-privacy verification.

The paper's program is that claims like Theorem 1.3 ("the Laplace mechanism
is epsilon-DP") should be *falsifiable*.  This module provides the
measurement: run a mechanism many times on two neighboring datasets, and
test Definition 1.2's inequality ``Pr[M(x) in T] <= e^eps * Pr[M(x') in T]``
over a family of events ``T`` using exact (Clopper-Pearson) confidence
bounds.

A verdict can *certify a violation* (statistically significant breach of
the inequality) but can only ever report *consistency* — not prove privacy;
that asymmetry is inherent to black-box testing and is reported explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.privacy.kernels import MechanismSpec
from repro.utils.rng import RngSeed, ensure_rng, spawn_rngs
from repro.utils.stats import clopper_pearson_interval

Output = TypeVar("Output")

#: A randomized mechanism under test: (data, rng) -> output.
MechanismFn = Callable[[object, np.random.Generator], Output]

#: An output event T subseteq Y, as a membership test.
Event = Callable[[Output], bool]


@dataclass(frozen=True)
class EventCheck:
    """Per-event verification outcome.

    Attributes:
        label: human-readable event description.
        p_x: empirical Pr[M(x) in T].
        p_x_prime: empirical Pr[M(x') in T].
        log_ratio: log(p_x / p_x_prime) point estimate (inf-safe).
        violation_certified: whether the confidence bounds prove the
            DP inequality fails in either direction.
    """

    label: str
    p_x: float
    p_x_prime: float
    log_ratio: float
    violation_certified: bool


@dataclass(frozen=True)
class DPVerdict:
    """Outcome of an empirical DP check.

    ``consistent`` means no event certified a violation — evidence for, not
    proof of, the claimed epsilon.
    """

    epsilon_claimed: float
    trials: int
    checks: tuple[EventCheck, ...]

    @property
    def consistent(self) -> bool:
        """Whether every event check passed."""
        return not any(check.violation_certified for check in self.checks)

    @property
    def max_observed_log_ratio(self) -> float:
        """Largest finite |log probability ratio| observed across events."""
        finite = [abs(c.log_ratio) for c in self.checks if np.isfinite(c.log_ratio)]
        return max(finite) if finite else 0.0

    def __str__(self) -> str:
        status = "consistent with" if self.consistent else "VIOLATES"
        return (
            f"DPVerdict: {status} eps={self.epsilon_claimed} "
            f"(max |log-ratio| {self.max_observed_log_ratio:.3f} over "
            f"{len(self.checks)} events, {self.trials} trials/side)"
        )


def verify_dp(
    mechanism: MechanismFn,
    x: object,
    x_prime: object,
    epsilon: float,
    events: Sequence[tuple[str, Event]] | None = None,
    trials: int = 4_000,
    confidence: float = 0.999,
    num_auto_events: int = 12,
    rng: RngSeed = None,
) -> DPVerdict:
    """Empirically test whether ``mechanism`` is epsilon-DP on a pair.

    Args:
        mechanism: the mechanism under test, ``(data, rng) -> output``.
        x: a dataset.
        x_prime: a neighboring dataset (differs in one record — the caller
            is responsible for neighborliness).
        epsilon: the claimed privacy parameter.
        events: labelled output events to test.  When omitted, threshold
            events are auto-built from pooled numeric outputs (quantile
            cuts), which is the right default for additive-noise mechanisms.
        trials: samples per dataset.
        confidence: per-event confidence for the Clopper-Pearson bounds
            (keep high — many events are tested).
        num_auto_events: number of auto-generated threshold events.
        rng: randomness.

    Returns:
        A :class:`DPVerdict`; ``consistent`` is False only when some event's
        bounds certify ``Pr[M(x) in T] > e^eps * Pr[M(x') in T]`` (or the
        symmetric inequality).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng_x, rng_x_prime = spawn_rngs(rng, 2)

    samples_x = [mechanism(x, rng_x) for _ in range(trials)]
    samples_x_prime = [mechanism(x_prime, rng_x_prime) for _ in range(trials)]

    if events is None:
        events = _auto_threshold_events(samples_x, samples_x_prime, num_auto_events)

    checks = []
    bound = float(np.exp(epsilon))
    for label, event in events:
        count_x = sum(1 for s in samples_x if event(s))
        count_x_prime = sum(1 for s in samples_x_prime if event(s))
        p_x = count_x / trials
        p_x_prime = count_x_prime / trials
        lo_x, hi_x = clopper_pearson_interval(count_x, trials, confidence)
        lo_xp, hi_xp = clopper_pearson_interval(count_x_prime, trials, confidence)
        # A violation is certified when even the most favorable reading of
        # the sampling error cannot satisfy the DP inequality.
        violates_forward = lo_x > bound * hi_xp
        violates_backward = lo_xp > bound * hi_x
        if p_x > 0 and p_x_prime > 0:
            log_ratio = float(np.log(p_x / p_x_prime))
        elif p_x == p_x_prime:
            log_ratio = 0.0
        else:
            log_ratio = float("inf") if p_x > 0 else float("-inf")
        checks.append(
            EventCheck(
                label=label,
                p_x=p_x,
                p_x_prime=p_x_prime,
                log_ratio=log_ratio,
                violation_certified=bool(violates_forward or violates_backward),
            )
        )
    return DPVerdict(epsilon_claimed=float(epsilon), trials=trials, checks=tuple(checks))


def _auto_threshold_events(
    samples_x: Sequence[object],
    samples_x_prime: Sequence[object],
    count: int,
) -> list[tuple[str, Event]]:
    """Threshold events at pooled quantiles of numeric outputs."""
    try:
        pooled = np.asarray(list(samples_x) + list(samples_x_prime), dtype=float)
    except (TypeError, ValueError):
        raise TypeError(
            "outputs are not numeric; pass explicit events to verify_dp"
        ) from None
    quantiles = np.linspace(0.05, 0.95, count)
    thresholds = np.quantile(pooled, quantiles)
    events: list[tuple[str, Event]] = []
    for threshold in np.unique(thresholds):
        events.append(
            (
                f"output <= {threshold:.4g}",
                (lambda t: lambda value: float(value) <= t)(float(threshold)),
            )
        )
    return events


def verify_spec(
    spec: MechanismSpec,
    x: object,
    x_prime: object,
    *,
    statistic: Callable[[object], float] | None = None,
    events: Sequence[tuple[str, Event]] | None = None,
    trials: int = 4_000,
    confidence: float = 0.999,
    num_auto_events: int = 12,
    rng: RngSeed = None,
) -> DPVerdict:
    """Empirically test the exact object the accountant charges.

    Builds the additive-noise mechanism ``statistic(data) + spec.kernel``
    noise (``statistic`` defaults to the subset-count ``sum``, the paper's
    counting query) and runs :func:`verify_dp` against ``spec.spend.epsilon``
    — so the epsilon under test is, by construction, the epsilon the service
    accountant charges for this spec, and the noise is drawn by the same
    kernel the answerers sample.  This closes the mechanism/accounting drift
    loop: there is no second object whose privacy could silently diverge.
    """
    if not spec.dp:
        raise ValueError(f"spec {spec.name!r} makes no DP claim to verify")
    kernel = spec.kernel

    def mechanism(data: object, generator: np.random.Generator) -> float:
        true_value = float(statistic(data)) if statistic is not None else float(np.sum(data))
        return float(true_value + kernel.sample(generator))

    return verify_dp(
        mechanism,
        x,
        x_prime,
        epsilon=spec.spend.epsilon,
        events=events,
        trials=trials,
        confidence=confidence,
        num_auto_events=num_auto_events,
        rng=rng,
    )
