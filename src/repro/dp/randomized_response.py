"""Randomized response — the oldest differentially private mechanism.

Each respondent reports their true bit with probability
``e^eps / (1 + e^eps)`` and the flipped bit otherwise.  The *local* model:
even the data collector never sees true values, so the released vector of
responses is epsilon-DP per record.  Included both as a substrate mechanism
and as the canonical example of a per-record (rather than aggregate)
release for the PSO experiments.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.accounting import PrivacySpend
from repro.privacy.kernels import MechanismSpec, RandomizedResponseKernel
from repro.utils.rng import RngSeed, ensure_rng


class RandomizedResponse:
    """Binary randomized response with privacy parameter epsilon.

    The flip coin lives on a
    :class:`~repro.privacy.kernels.RandomizedResponseKernel`; this class
    applies the flips to data and carries the debiasing estimator.
    """

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.kernel = RandomizedResponseKernel.calibrate(self.epsilon)

    @property
    def truth_probability(self) -> float:
        """Probability of reporting the true bit: e^eps / (1 + e^eps)."""
        return self.kernel.truth_probability

    def spec(self) -> MechanismSpec:
        """The mechanism's auditable identity: kernel + per-release spend."""
        return MechanismSpec(
            name=f"randomized-response(eps={self.epsilon})",
            kernel=self.kernel,
            spend=PrivacySpend(self.epsilon),
            dp=True,
        )

    def release(self, bits: np.ndarray, rng: RngSeed = None) -> np.ndarray:
        """Perturb a 0/1 vector record-by-record."""
        bits = np.asarray(bits)
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("randomized response operates on 0/1 data")
        generator = ensure_rng(rng)
        # The kernel draws flip indicators from the identical uniforms the
        # old keep-mask drew (flip = not keep), so releases are bit-identical.
        flips = self.kernel.sample_n(generator, bits.shape).astype(bool)
        return np.where(flips, 1 - bits, bits).astype(np.int64)

    def estimate_count(self, responses: np.ndarray) -> float:
        """Debias the sum of responses into an unbiased count estimate.

        With truth probability ``p``, ``E[sum responses] = p * k +
        (1 - p) * (n - k)`` for true count ``k``; inverting gives the
        standard estimator.
        """
        responses = np.asarray(responses)
        if not np.isin(responses, (0, 1)).all():
            raise ValueError("responses must be 0/1")
        n = responses.size
        p = self.truth_probability
        if n == 0:
            raise ValueError("need at least one response")
        return float((responses.sum() - (1.0 - p) * n) / (2.0 * p - 1.0))

    def estimator_standard_error(self, n: int) -> float:
        """Standard error of :meth:`estimate_count` at worst-case data."""
        if n <= 0:
            raise ValueError("n must be positive")
        p = self.truth_probability
        return float(np.sqrt(n * p * (1.0 - p)) / abs(2.0 * p - 1.0))

    def __repr__(self) -> str:
        return f"RandomizedResponse(epsilon={self.epsilon})"
