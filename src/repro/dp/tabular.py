"""Differentially private release of census-style block tables.

The defense the 2020 Census actually adopted after the reconstruction the
paper recounts: publish the same table system, but with calibrated noise on
every count instead of (or in addition to) the legacy SDC.  Each block's
tables are released under a per-block budget split evenly across that
block's cells (counts have sensitivity 1 under record addition/removal, so
Laplace noise at scale cells/epsilon makes the block's release epsilon-DP
by basic composition).

Noisy tables are post-processed back to a consistent non-negative integer
system (rounding, clipping, total-fitting) — post-processing is free under
DP — so the downstream reconstruction code can consume them unchanged.
"""

from __future__ import annotations

from typing import Mapping

from repro.dp.laplace import LaplaceMechanism
from repro.reconstruction.tabulation import BlockTables, _fit_total
from repro.utils.rng import RngSeed, ensure_rng


def dp_block_tables(
    tables: BlockTables,
    epsilon: float,
    rng: RngSeed = None,
) -> BlockTables:
    """Release one block's table system under an epsilon budget.

    The budget is split evenly over every cell of the three tables; the
    noisy sex-by-age table defines the block total, and the other tables
    are fitted to it so the output is internally consistent.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    generator = ensure_rng(rng)
    cells = (
        len(tables.sex_by_age)
        + len(tables.race_by_ethnicity)
        + len(tables.sex_by_race)
    )
    mechanism = LaplaceMechanism(epsilon / max(cells, 1), sensitivity=1.0)

    def noisy(table: Mapping) -> dict:
        return {
            key: max(0, round(mechanism.release(count, generator)))
            for key, count in table.items()
        }

    sex_by_age = noisy(tables.sex_by_age)
    total = sum(sex_by_age.values())
    return BlockTables(
        block=tables.block,
        total=total,
        sex_by_age=sex_by_age,
        race_by_ethnicity=_fit_total(noisy(tables.race_by_ethnicity), total),
        sex_by_race=_fit_total(noisy(tables.sex_by_race), total),
    )


def dp_tabulation(
    tables: dict[int, BlockTables],
    epsilon_per_block: float,
    rng: RngSeed = None,
) -> dict[int, BlockTables]:
    """DP-release every block's tables (parallel composition across blocks).

    Blocks partition the population, so a shared ``epsilon_per_block``
    budget gives the whole publication epsilon_per_block-DP — the parallel
    composition that makes geographic table systems affordable.
    """
    generator = ensure_rng(rng)
    return {
        block: dp_block_tables(block_tables, epsilon_per_block, generator)
        for block, block_tables in sorted(tables.items())
    }
