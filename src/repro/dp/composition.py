"""Composition of differential privacy guarantees (re-export shim).

The composition math and the accountant moved to
:mod:`repro.privacy.accounting` in PR 4, where they are shared with the
service layer's multi-analyst accountants (one ledger implementation, no
drift between layers).  This module remains so that
``from repro.dp.composition import PrivacyAccountant`` keeps working.

Note the unified :class:`~repro.privacy.accounting.PrivacyAccountant`
raises :class:`~repro.privacy.accounting.BudgetExhausted` — a
``RuntimeError`` subclass, so existing ``except RuntimeError`` handlers
are unaffected — and additionally offers all-or-nothing
``reserve``/``rollback`` batch charging and an optional query-count
budget.

Importing this module emits a :class:`DeprecationWarning` — import from
:mod:`repro.privacy.accounting` instead.
"""

import warnings

warnings.warn(
    "repro.dp.composition is deprecated; import the composition math and "
    "accountant from repro.privacy.accounting instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.privacy.accounting import (  # noqa: E402
    BudgetExhausted,
    PrivacyAccountant,
    PrivacySpend,
    advanced_composition,
    basic_composition,
)

__all__ = [
    "BudgetExhausted",
    "PrivacyAccountant",
    "PrivacySpend",
    "advanced_composition",
    "basic_composition",
]
