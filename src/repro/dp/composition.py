"""Composition of differential privacy guarantees.

Section 1.1 of the paper singles out closure under composition as the
property separating differential privacy from k-anonymity ("the result of
applying two or more differentially private analyses ... preserves
differential privacy, albeit with worse privacy loss parameter").  This
module provides basic and advanced composition bounds and a
:class:`PrivacyAccountant` that tracks spends across an analysis session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PrivacySpend:
    """One (epsilon, delta) charge with an optional label for auditing."""

    epsilon: float
    delta: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not 0 <= self.delta < 1:
            raise ValueError("delta must lie in [0, 1)")


def basic_composition(spends: list[PrivacySpend]) -> tuple[float, float]:
    """Sequential (basic) composition: epsilons and deltas add."""
    if not spends:
        return 0.0, 0.0
    return (
        float(sum(s.epsilon for s in spends)),
        float(sum(s.delta for s in spends)),
    )


def advanced_composition(
    epsilon: float, k: int, delta_prime: float
) -> tuple[float, float]:
    """Advanced composition of ``k`` epsilon-DP mechanisms.

    Returns the (epsilon', k*0 + delta') guarantee with
    ``epsilon' = sqrt(2 k ln(1/delta')) * epsilon + k * epsilon *
    (e^epsilon - 1)`` — the sqrt(k) scaling that makes high-query-count
    DP analyses feasible at all.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if k <= 0:
        raise ValueError("k must be positive")
    if not 0 < delta_prime < 1:
        raise ValueError("delta_prime must lie in (0, 1)")
    epsilon_total = float(
        np.sqrt(2.0 * k * np.log(1.0 / delta_prime)) * epsilon
        + k * epsilon * (np.exp(epsilon) - 1.0)
    )
    return epsilon_total, float(delta_prime)


class PrivacyAccountant:
    """Tracks (epsilon, delta) spends and enforces an optional budget.

    The accountant is deliberately simple — basic composition with an
    advanced-composition *report* — because its role in this reproduction
    is to make the paper's composition property observable, not to be a
    state-of-the-art accountant.
    """

    def __init__(self, epsilon_budget: float | None = None, delta_budget: float = 0.0):
        if epsilon_budget is not None and epsilon_budget <= 0:
            raise ValueError("epsilon_budget must be positive when set")
        if delta_budget < 0 or delta_budget >= 1:
            raise ValueError("delta_budget must lie in [0, 1)")
        self.epsilon_budget = epsilon_budget
        self.delta_budget = delta_budget
        self._spends: list[PrivacySpend] = []

    @property
    def spends(self) -> tuple[PrivacySpend, ...]:
        """All charges so far, in order."""
        return tuple(self._spends)

    def spend(self, epsilon: float, delta: float = 0.0, label: str = "") -> PrivacySpend:
        """Record one charge; raises ``RuntimeError`` when over budget."""
        charge = PrivacySpend(epsilon=epsilon, delta=delta, label=label)
        total_epsilon, total_delta = basic_composition([*self._spends, charge])
        if self.epsilon_budget is not None and total_epsilon > self.epsilon_budget + 1e-12:
            raise RuntimeError(
                f"privacy budget exceeded: spend of eps={epsilon} would total "
                f"{total_epsilon:.4f} > budget {self.epsilon_budget}"
            )
        if total_delta > self.delta_budget + 1e-15:
            raise RuntimeError(
                f"delta budget exceeded: total {total_delta} > {self.delta_budget}"
            )
        self._spends.append(charge)
        return charge

    def total(self) -> tuple[float, float]:
        """Current (epsilon, delta) under basic composition."""
        return basic_composition(self._spends)

    def remaining_epsilon(self) -> float | None:
        """Unspent epsilon, or ``None`` for an unlimited accountant."""
        if self.epsilon_budget is None:
            return None
        return self.epsilon_budget - self.total()[0]

    def advanced_total(self, delta_prime: float = 1e-6) -> tuple[float, float]:
        """The advanced-composition view of homogeneous spends.

        Only valid when all recorded spends are pure and share one epsilon;
        raises otherwise (heterogeneous advanced composition is out of
        scope for this reproduction).
        """
        if not self._spends:
            return 0.0, 0.0
        epsilons = {s.epsilon for s in self._spends}
        if len(epsilons) != 1 or any(s.delta > 0 for s in self._spends):
            raise ValueError(
                "advanced_total requires homogeneous pure-DP spends"
            )
        return advanced_composition(epsilons.pop(), len(self._spends), delta_prime)

    def __repr__(self) -> str:
        epsilon, delta = self.total()
        return (
            f"PrivacyAccountant(spent=({epsilon:.4f}, {delta:.2e}), "
            f"budget={self.epsilon_budget})"
        )
