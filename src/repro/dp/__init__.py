"""Differential privacy substrate.

Implements Definition 1.2 (epsilon-DP) and the mechanisms the paper's
analysis relies on, plus the two properties Section 1.1 highlights —
post-processing immunity and composition — as an accountant, and an
*empirical verifier* so Theorem 1.3 ("the Laplace mechanism is
epsilon-differentially private") is checked by measurement rather than
assumed.
"""

from repro.privacy.accounting import (
    BudgetExhausted,
    PrivacyAccountant,
    PrivacySpend,
    advanced_composition,
    basic_composition,
)
from repro.dp.exponential import ExponentialMechanism
from repro.dp.gaussian import GaussianMechanism
from repro.dp.laplace import GeometricMechanism, LaplaceMechanism, private_count
from repro.dp.randomized_response import RandomizedResponse
from repro.dp.sparse_vector import AboveThreshold, SparseVectorOutcome, sparse_count_queries
from repro.dp.tabular import dp_block_tables, dp_tabulation
from repro.dp.verify import DPVerdict, verify_dp, verify_spec

__all__ = [
    "AboveThreshold",
    "BudgetExhausted",
    "DPVerdict",
    "ExponentialMechanism",
    "GaussianMechanism",
    "GeometricMechanism",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "PrivacySpend",
    "RandomizedResponse",
    "SparseVectorOutcome",
    "advanced_composition",
    "basic_composition",
    "dp_block_tables",
    "dp_tabulation",
    "private_count",
    "sparse_count_queries",
    "verify_dp",
    "verify_spec",
]
