"""The paper's legal theorems, derived from measured technical premises.

Section 2.4's outputs:

* **Legal Theorem 2.1** — k-anonymity (and its variants) fails to prevent
  singling out as required by the GDPR;
* **Legal Corollary 2.1** — hence k-anonymity does not meet the GDPR
  anonymization standard;
* the **differential privacy assessment** — DP passes the necessary
  condition; compliance would need further analysis (deliberately *not* a
  theorem);
* the **Article 29 Working Party comparison** (Section 2.4.3) — where the
  analysis disagrees with the 2014 Opinion on Anonymisation Techniques.
"""

from __future__ import annotations

from repro.core.theorems import (
    TheoremCheck,
    check_cohen_singleton_attack,
    check_dp_implies_pso_security,
    check_kanonymity_fails_pso,
    check_laplace_is_dp,
)
from repro.legal.claims import (
    LegalClaim,
    LegalVerdict,
    ModelingAssumption,
    TechnicalPremise,
    derive,
)
from repro.legal.concepts import (
    ARTICLE_29_WP_OPINIONS,
    SinglingOutAnswer,
    WorkingPartyAssessment,
)
from repro.utils.rng import RngSeed
from repro.utils.tables import Table

#: A1: the paper's central modeling step (Section 2.2).
ASSUMPTION_PSO_NECESSARY = ModelingAssumption(
    identifier="A1",
    statement=(
        "Security against predicate singling out (PSO) is a weaker-or-equal "
        "requirement than the GDPR's 'prevent singling out'; hence failing "
        "PSO security implies failing the GDPR requirement, while satisfying "
        "it is only a necessary condition."
    ),
    source="GDPR Recital 26; Article 29 WP Opinion 04/2007",
)

#: A2: preventing singling out is necessary for the anonymization exception.
ASSUMPTION_SINGLING_OUT_NECESSARY = ModelingAssumption(
    identifier="A2",
    statement=(
        "Preventing singling out is necessary (though possibly insufficient) "
        "for personal data to count as 'rendered anonymous' under Recital 26."
    ),
    source="GDPR Recital 26",
)

#: A3: the footnote-3 extension to k-anonymity's variants.
ASSUMPTION_VARIANTS = ModelingAssumption(
    identifier="A3",
    statement=(
        "The PSO analysis of k-anonymity applies unchanged to its variants "
        "l-diversity and t-closeness, whose outputs are also partitioned "
        "into equivalence classes of generalized records."
    ),
    source="paper footnote 3; [28, 29]",
)


def legal_theorem_2_1(
    kanon_evidence: TheoremCheck | None = None,
    cohen_evidence: TheoremCheck | None = None,
    ldiversity_evidence: TheoremCheck | None = None,
    rng: RngSeed = 0,
) -> LegalVerdict:
    """Legal Theorem 2.1: k-anonymity fails to prevent GDPR singling out.

    Evidence defaults to running the Theorem 2.10 and Cohen checks at
    default scale; pass pre-computed checks to reuse benchmark runs.  When
    ``ldiversity_evidence`` (the footnote-3 check) is supplied, the
    extension to l-diversity rests on a measurement instead of on
    assumption A3 alone.
    """
    if kanon_evidence is None:
        kanon_evidence = check_kanonymity_fails_pso(rng=rng)
    if cohen_evidence is None:
        cohen_evidence = check_cohen_singleton_attack(rng=rng)
    premises = [
        TechnicalPremise(
            identifier="T2.10",
            statement=(
                "Information-optimizing k-anonymizers admit a PSO attack "
                "succeeding with probability ~37% (measured)"
            ),
            evidence=kanon_evidence,
        ),
        TechnicalPremise(
            identifier="T2.10+",
            statement=(
                "Generalization-based k-anonymizers admit a PSO attack "
                "succeeding with probability ~100% (Cohen [12], measured)"
            ),
            evidence=cohen_evidence,
        ),
    ]
    if ldiversity_evidence is not None:
        premises.append(
            TechnicalPremise(
                identifier="T-fn3",
                statement=(
                    "Releases that are simultaneously k-anonymous and "
                    "distinct-l-diverse admit the same PSO attack (measured)"
                ),
                evidence=ldiversity_evidence,
            )
        )
    claim = LegalClaim(
        identifier="Legal Theorem 2.1",
        conclusion=(
            "k-anonymity (similarly, l-diversity and t-closeness) fails to "
            "prevent singling out as required by the GDPR."
        ),
        rule=(
            "T2.10 (and T2.10+) show k-anonymity fails PSO security; by A1, "
            "failing the weaker PSO requirement implies failing the GDPR "
            "requirement; A3 extends the construction to the variants."
        ),
    )
    return derive(
        claim,
        [ASSUMPTION_PSO_NECESSARY, ASSUMPTION_VARIANTS],
        premises,
    )


def legal_corollary_2_1(theorem: LegalVerdict | None = None, rng: RngSeed = 0) -> LegalVerdict:
    """Legal Corollary 2.1: k-anonymity does not meet the GDPR anonymization standard."""
    if theorem is None:
        theorem = legal_theorem_2_1(rng=rng)
    claim = LegalClaim(
        identifier="Legal Corollary 2.1",
        conclusion=(
            "k-anonymity (similarly, l-diversity and t-closeness) does not "
            "meet the GDPR standard for anonymization."
        ),
        rule=(
            "Legal Theorem 2.1 establishes failure to prevent singling out; "
            "by A2, preventing singling out is necessary for the Recital 26 "
            "anonymization exception."
        ),
    )
    return derive(
        claim,
        [*theorem.assumptions, ASSUMPTION_SINGLING_OUT_NECESSARY],
        list(theorem.premises),
    )


def differential_privacy_assessment(
    dp_evidence: TheoremCheck | None = None,
    laplace_evidence: TheoremCheck | None = None,
    rng: RngSeed = 0,
) -> LegalVerdict:
    """Section 2.4.1: DP satisfies the *necessary* condition — no more.

    Deliberately qualified: the paper stresses that preventing (even full)
    singling out is necessary but not sufficient for the GDPR
    anonymization standard, so no compliance theorem is derivable.
    """
    if dp_evidence is None:
        dp_evidence = check_dp_implies_pso_security(rng=rng)
    if laplace_evidence is None:
        laplace_evidence = check_laplace_is_dp(rng=rng)
    premises = [
        TechnicalPremise(
            identifier="T1.3",
            statement="The Laplace mechanism is epsilon-DP (verified empirically)",
            evidence=laplace_evidence,
        ),
        TechnicalPremise(
            identifier="T2.9",
            statement=(
                "epsilon-DP mechanisms prevent predicate singling out "
                "(measured: the composition attack collapses under DP)"
            ),
            evidence=dp_evidence,
        ),
    ]
    claim = LegalClaim(
        identifier="DP assessment (Section 2.4.1)",
        conclusion=(
            "Differential privacy satisfies the necessary condition of "
            "preventing (predicate) singling out; whether it meets the GDPR "
            "anonymization standard requires further analysis."
        ),
        rule=(
            "T2.9 establishes PSO security; by A1 this meets the weakened "
            "necessary condition only — sufficiency is not derivable from "
            "singling out alone (Recital 26 lists it as one of the 'means "
            "reasonably likely to be used')."
        ),
    )
    return derive(
        claim,
        [ASSUMPTION_PSO_NECESSARY, ASSUMPTION_SINGLING_OUT_NECESSARY],
        premises,
        qualification="necessary condition only; not a compliance determination",
    )


def our_assessment() -> tuple[WorkingPartyAssessment, ...]:
    """This analysis's answers to "Is singling out still a risk?"."""
    return (
        WorkingPartyAssessment("k-anonymity", SinglingOutAnswer.YES),
        WorkingPartyAssessment("l-diversity", SinglingOutAnswer.YES),
        WorkingPartyAssessment("differential privacy", SinglingOutAnswer.NO),
    )


def working_party_comparison() -> Table:
    """Section 2.4.3's comparison with the Article 29 WP opinion, as a table.

    The conflict — the WP says k-anonymity eliminates singling-out risk
    while the measured attacks isolate with probability 37-100% — is the
    paper's argument that such assessments must be mathematically
    falsifiable.
    """
    ours = {assessment.technology: assessment for assessment in our_assessment()}
    table = Table(
        ["technology", "Art. 29 WP (2014)", "this analysis (measured)"],
        title='"Is singling out still a risk?"',
    )
    for wp_row in ARTICLE_29_WP_OPINIONS:
        table.add_row(
            [
                wp_row.technology,
                wp_row.singling_out_still_a_risk.value,
                ours[wp_row.technology].singling_out_still_a_risk.value,
            ]
        )
    return table
