"""Premises, assumptions, and the legal-derivation engine.

The paper's methodology (Section 2.2) is explicit about its logical
structure: PSO security is *weaker* than what the GDPR intends by
preventing singling out, so

* failing to prevent PSO  =>  failing to prevent GDPR singling out
  (the direction Legal Theorem 2.1 uses), while
* preventing PSO gives only a necessary condition — "further inquiry
  would be needed" (the differential-privacy verdict).

The engine enforces the paper's falsifiability discipline: a
:class:`TechnicalPremise` may only be cited once empirical evidence (a
:class:`~repro.core.theorems.TheoremCheck` that *passed*) is attached, and
a :class:`LegalClaim` can only be derived when all of its premises are
established.  Modeling assumptions are carried separately and verbatim in
every verdict — they are the part a court or regulator may dispute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.theorems import TheoremCheck


class DerivationError(RuntimeError):
    """Raised when a legal conclusion is requested without established premises."""


@dataclass(frozen=True)
class ModelingAssumption:
    """An interpretive step from legal text to mathematics.

    Not provable — stated so it can be contested.  Each records the legal
    source it interprets.
    """

    identifier: str
    statement: str
    source: str  #: citation of the interpreted legal text

    def __str__(self) -> str:
        return f"[{self.identifier}] {self.statement} (interpreting {self.source})"


@dataclass
class TechnicalPremise:
    """A mathematical statement whose truth is established by measurement.

    ``evidence`` must be a passed :class:`TheoremCheck` before the premise
    counts as established; attaching failed evidence is allowed (it records
    the refutation) but blocks derivation.
    """

    identifier: str
    statement: str
    evidence: TheoremCheck | None = None

    @property
    def established(self) -> bool:
        """Whether passed empirical evidence is attached."""
        return self.evidence is not None and self.evidence.passed

    def attach(self, evidence: TheoremCheck) -> "TechnicalPremise":
        """Attach evidence (returns self for chaining)."""
        self.evidence = evidence
        return self

    def __str__(self) -> str:
        if self.evidence is None:
            status = "UNVERIFIED"
        else:
            status = "ESTABLISHED" if self.evidence.passed else "REFUTED"
        return f"[{self.identifier}] {self.statement} -- {status}"


@dataclass(frozen=True)
class LegalClaim:
    """A legal conclusion awaiting derivation."""

    identifier: str
    conclusion: str
    rule: str  #: the inference connecting premises to the conclusion


@dataclass(frozen=True)
class LegalVerdict:
    """A derived legal theorem: conclusion plus its full support.

    The verdict is immutable and self-contained — premises with their
    evidence, assumptions with their sources — so it can be audited without
    re-running anything.
    """

    claim: LegalClaim
    assumptions: tuple[ModelingAssumption, ...]
    premises: tuple[TechnicalPremise, ...]
    qualification: str = ""  #: e.g. "necessary but possibly not sufficient"

    def render(self) -> str:
        """A human-readable derivation transcript."""
        lines = [f"LEGAL THEOREM {self.claim.identifier}: {self.claim.conclusion}"]
        if self.qualification:
            lines.append(f"  Qualification: {self.qualification}")
        lines.append("  Modeling assumptions:")
        lines.extend(f"    {assumption}" for assumption in self.assumptions)
        lines.append("  Technical premises:")
        lines.extend(f"    {premise}" for premise in self.premises)
        lines.append(f"  Inference: {self.claim.rule}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def derive(
    claim: LegalClaim,
    assumptions: list[ModelingAssumption],
    premises: list[TechnicalPremise],
    qualification: str = "",
) -> LegalVerdict:
    """Derive a verdict, refusing when any technical premise lacks evidence.

    This is the falsifiability gate of Section 2.4.3: conclusions about
    whether technologies meet legal standards must rest on verifiable —
    and verified — mathematical statements.
    """
    unestablished = [premise for premise in premises if not premise.established]
    if unestablished:
        details = "; ".join(str(premise) for premise in unestablished)
        raise DerivationError(
            f"cannot derive {claim.identifier!r}: unestablished premises: {details}"
        )
    return LegalVerdict(
        claim=claim,
        assumptions=tuple(assumptions),
        premises=tuple(premises),
        qualification=qualification,
    )
