"""HIPAA safe-harbor de-identification (paper, Section 1.2).

"The HIPAA de-identification standard provides two de-identification
methods: (i) by expert determination ... and (ii) by using a safe-harbor
method prescribed in the privacy rule where identifiers are redacted ...
enumerat[ing] 18 identifiers to be redacted including name, geographic
location at a resolution smaller than a state, telephone number, and
medical record numbers."

This module implements the safe-harbor method as a dataset transformation:
callers classify their schema's attributes into safe-harbor categories, and
the redactor removes (or coarsens, for ZIP and dates, per 45 CFR
164.514(b)(2)) the enumerated identifiers.  It exists as a *substrate*:
the library's experiments show that safe-harbor-compliant releases remain
vulnerable to the attacks of Section 1 — the gap between a redaction
checklist and actual anonymity is the paper's opening theme.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.dataset import Dataset

#: The 18 safe-harbor identifier categories of 45 CFR 164.514(b)(2)(i).
SAFE_HARBOR_IDENTIFIERS: tuple[str, ...] = (
    "names",
    "geographic-subdivisions-smaller-than-state",
    "dates-related-to-individual",
    "telephone-numbers",
    "fax-numbers",
    "email-addresses",
    "social-security-numbers",
    "medical-record-numbers",
    "health-plan-numbers",
    "account-numbers",
    "certificate-license-numbers",
    "vehicle-identifiers",
    "device-identifiers",
    "urls",
    "ip-addresses",
    "biometric-identifiers",
    "full-face-photographs",
    "other-unique-identifying-numbers",
)

#: Categories that are coarsened rather than dropped outright.
_COARSENED = {
    "geographic-subdivisions-smaller-than-state",
    "dates-related-to-individual",
}


def safe_harbor_redact(
    dataset: Dataset,
    classification: Mapping[str, str],
    zip_attribute: str | None = None,
    year_attributes: Sequence[str] = (),
) -> Dataset:
    """Apply the safe-harbor method to ``dataset``.

    Args:
        dataset: the identified data.
        classification: attribute name -> safe-harbor category for every
            attribute that falls under one of the 18 categories; attributes
            not listed are retained untouched.
        zip_attribute: a ZIP-code column to coarsen to its first 3 digits
            (the rule's geographic allowance) instead of dropping.
        year_attributes: date-category columns that hold a bare year, which
            the rule permits keeping (ages over 89 aside); they are
            retained.

    Returns:
        The redacted dataset (columns dropped; ZIP coarsened in place).

    Raises:
        ValueError: when a classification names an unknown category.
    """
    for name, category in classification.items():
        if category not in SAFE_HARBOR_IDENTIFIERS:
            raise ValueError(
                f"unknown safe-harbor category {category!r} for attribute {name!r}"
            )
        if name not in dataset.schema:
            raise KeyError(f"classified attribute {name!r} not in the schema")

    keep_anyway = set(year_attributes) | ({zip_attribute} if zip_attribute else set())
    # Everything classified is dropped, except columns explicitly designated
    # for the rule's coarsening allowances (3-digit ZIP, bare years) whose
    # category actually permits coarsening.
    to_drop = [
        name
        for name, category in classification.items()
        if not (name in keep_anyway and category in _COARSENED)
    ]
    redacted = dataset.drop(to_drop) if to_drop else dataset

    if zip_attribute and zip_attribute in redacted.schema:
        # Coarsen ZIP to the initial three digits, per 164.514(b)(2)(i)(B).
        index = redacted.schema.index_of(zip_attribute)
        from repro.data.domain import CategoricalDomain
        from repro.data.schema import Attribute, Schema

        coarse_values = sorted({str(row[index])[:3] + "**" for row in redacted.rows})
        attributes = list(redacted.schema.attributes)
        old = attributes[index]
        attributes[index] = Attribute(old.name, CategoricalDomain(coarse_values), old.kind)
        schema = Schema(attributes)
        rows = [
            tuple(
                str(value)[:3] + "**" if i == index else value
                for i, value in enumerate(row)
            )
            for row in redacted.rows
        ]
        redacted = Dataset(schema, rows, validate=False)
    return redacted


def is_safe_harbor_compliant(
    dataset: Dataset, classification: Mapping[str, str]
) -> bool:
    """Whether no classified identifier column survives un-coarsened.

    A release is compliant when every attribute classified under a
    droppable category is absent, and geographic columns carry no more than
    3-digit ZIP precision (detected by the ``**`` suffix convention of
    :func:`safe_harbor_redact`).
    """
    for name, category in classification.items():
        if category not in SAFE_HARBOR_IDENTIFIERS:
            raise ValueError(f"unknown safe-harbor category {category!r}")
        if name not in dataset.schema:
            continue  # dropped: compliant for this attribute
        if category in _COARSENED:
            values = dataset.column(name)
            if category == "geographic-subdivisions-smaller-than-state":
                if not all(str(value).endswith("**") for value in values):
                    return False
            # Bare years are allowed for date categories; a surviving column
            # under a date category is assumed to be a year column.
            continue
        return False  # a droppable identifier column survived
    return True
