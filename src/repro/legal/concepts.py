"""Structured model of the legal sources the paper interprets.

Section 2.1 grounds the analysis in specific GDPR text (Article 1,
Article 4, Recital 26) and in the Article 29 Working Party's opinion
documents.  Encoding the excerpts as data — with citations — keeps the
derivation chain auditable: every legal theorem can point at the exact
source text its modeling assumptions interpret.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


@dataclass(frozen=True)
class LegalSource:
    """A citable fragment of a legal or quasi-legal text."""

    identifier: str  #: e.g. "GDPR Recital 26"
    text: str  #: the operative excerpt (as quoted by the paper)
    role: str  #: what the analysis uses it for

    def __str__(self) -> str:
        return f"{self.identifier}: {self.text}"


#: The GDPR text the paper's Section 2.1 quotes, keyed by citation.
GDPR_EXCERPTS: dict[str, LegalSource] = {
    "Article 1": LegalSource(
        identifier="GDPR Article 1",
        text=(
            "This Regulation lays down rules relating to the protection of "
            "natural persons with regard to the processing of personal data..."
        ),
        role="establishes that the regulation turns on processing of personal data",
    ),
    "Article 4": LegalSource(
        identifier="GDPR Article 4",
        text=(
            "'Personal data' means any information relating to an identified "
            "or identifiable natural person ('data subject'); an identifiable "
            "natural person is one who can be identified, directly or indirectly"
        ),
        role="defines personal data via identifiability",
    ),
    "Recital 26 (anonymous)": LegalSource(
        identifier="GDPR Recital 26",
        text=(
            "The principles of data protection should therefore not apply to "
            "anonymous information ... or to personal data rendered anonymous "
            "in such a manner that the data subject is not or no longer "
            "identifiable."
        ),
        role="excepts anonymous data from the regulation",
    ),
    "Recital 26 (singling out)": LegalSource(
        identifier="GDPR Recital 26",
        text=(
            "To determine whether a natural person is identifiable, account "
            "should be taken of all the means reasonably likely to be used, "
            "such as singling out, either by the controller or by another "
            "person to identify the natural person directly or indirectly."
        ),
        role=(
            "names singling out as a means of identification; preventing it is "
            "necessary for rendering data anonymous"
        ),
    ),
    "WP Opinion 2007 (singling out)": LegalSource(
        identifier="Article 29 WP Opinion 04/2007 on the Concept of Personal Data",
        text=(
            "the possibility to isolate some or all records which identify an "
            "individual in the dataset"
        ),
        role="the working definition of singling out the paper formalizes as isolation",
    ),
}


#: The US privacy statutes the paper's Section 1.2 surveys, keyed by name.
US_PRIVACY_EXCERPTS: dict[str, LegalSource] = {
    "Title 13": LegalSource(
        identifier="13 U.S.C. § 9",
        text=(
            "[prohibits] any publication whereby the data furnished by any "
            "particular establishment or individual under this title can be "
            "identified"
        ),
        role=(
            "the confidentiality mandate the 2010 Census reconstruction (E7) "
            "showed the published tables violating in effect"
        ),
    ),
    "HIPAA safe harbor": LegalSource(
        identifier="HIPAA Privacy Rule, 45 C.F.R. 164.514(b)(2)",
        text=(
            "enumerates 18 identifiers to be redacted including name, "
            "geographic location at a resolution smaller than a state, "
            "telephone number, and medical record numbers ... [and requires "
            "that the processor] has no actual knowledge that the remaining "
            "information could be used to identify the individual"
        ),
        role=(
            "the redaction-checklist de-identification standard implemented "
            "in repro.legal.hipaa and stress-tested by the linkage experiments"
        ),
    ),
    "FERPA": LegalSource(
        identifier="FERPA, 20 U.S.C. § 1232g",
        text=(
            "protects personally identifiable information in education "
            "records"
        ),
        role=(
            "cited by the paper as another standard amenable to the "
            "legal-theorem methodology (via [34])"
        ),
    ),
    "HIPAA expert determination": LegalSource(
        identifier="HIPAA Privacy Rule, 45 C.F.R. 164.514(b)(1)",
        text=(
            "a person with appropriate knowledge and experience determines "
            "that the identification risk is very small"
        ),
        role=(
            "the alternative de-identification route; the library's "
            "measured attack rates are exactly the evidence such a "
            "determination should weigh"
        ),
    ),
}


class SinglingOutAnswer(Enum):
    """Answers to the WP Opinion's question "Is singling out still a risk?"."""

    NO = "no"
    MAY_NOT = "may not"
    YES = "yes"


@dataclass(frozen=True)
class WorkingPartyAssessment:
    """One row of the Article 29 WP Opinion 05/2014 risk table."""

    technology: str
    singling_out_still_a_risk: SinglingOutAnswer


#: The Article 29 WP's 2014 assessments that Section 2.4.3 disputes.
ARTICLE_29_WP_OPINIONS: tuple[WorkingPartyAssessment, ...] = (
    WorkingPartyAssessment("k-anonymity", SinglingOutAnswer.NO),
    WorkingPartyAssessment("l-diversity", SinglingOutAnswer.NO),
    WorkingPartyAssessment("differential privacy", SinglingOutAnswer.MAY_NOT),
)
