"""The legal reasoning layer: from technical measurements to legal theorems.

Section 2.4 of the paper derives "legal theorems" — rigorous statements
about whether technologies satisfy legal standards — from the technical PSO
results plus explicitly stated modeling assumptions.  This subpackage makes
that derivation executable and, per the paper's Section 2.4.3 position,
*falsifiable*: a legal conclusion can only be derived when every technical
premise carries attached empirical evidence.

* :mod:`repro.legal.concepts` — a structured model of the legal texts the
  paper interprets (GDPR articles/recitals, the Article 29 WP opinions).
* :mod:`repro.legal.hipaa` — the HIPAA safe-harbor de-identification
  method of Section 1.2, as a working redactor and compliance checker.
* :mod:`repro.legal.claims` — premises, modeling assumptions, inference
  rules, and the derivation engine.
* :mod:`repro.legal.theorems` — Legal Theorem 2.1, Legal Corollary 2.1,
  the differential-privacy assessment, and the Article 29 Working Party
  comparison table.
"""

from repro.legal.claims import (
    DerivationError,
    LegalClaim,
    LegalVerdict,
    ModelingAssumption,
    TechnicalPremise,
    derive,
)
from repro.legal.deletion import deletion_certificate, verify_exact_deletion
from repro.legal.concepts import (
    ARTICLE_29_WP_OPINIONS,
    GDPR_EXCERPTS,
    US_PRIVACY_EXCERPTS,
    LegalSource,
    SinglingOutAnswer,
)
from repro.legal.hipaa import SAFE_HARBOR_IDENTIFIERS, is_safe_harbor_compliant, safe_harbor_redact
from repro.legal.theorems import (
    differential_privacy_assessment,
    legal_corollary_2_1,
    legal_theorem_2_1,
    working_party_comparison,
)

__all__ = [
    "ARTICLE_29_WP_OPINIONS",
    "DerivationError",
    "GDPR_EXCERPTS",
    "LegalClaim",
    "LegalSource",
    "LegalVerdict",
    "ModelingAssumption",
    "SAFE_HARBOR_IDENTIFIERS",
    "SinglingOutAnswer",
    "TechnicalPremise",
    "US_PRIVACY_EXCERPTS",
    "deletion_certificate",
    "derive",
    "differential_privacy_assessment",
    "is_safe_harbor_compliant",
    "legal_corollary_2_1",
    "legal_theorem_2_1",
    "safe_harbor_redact",
    "verify_exact_deletion",
    "working_party_comparison",
]
