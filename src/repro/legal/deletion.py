"""The right to deletion, as an executable compliance check.

The paper's Discussion cites Garg, Goldwasser and Vasudevan's formalization
of data deletion in the context of the right to be forgotten [25]: honoring
a deletion request means ending up in (a state indistinguishable from) the
state of never having processed the data.

For the library's count-based models that standard is checkable *exactly*:

* :func:`verify_exact_deletion` — unlearn a document from a trained
  :class:`~repro.lm.ngram.NgramLanguageModel` and compare, parameter by
  parameter, against a model retrained without it;
* :func:`deletion_certificate` — run the check and package the outcome as
  a :class:`~repro.core.theorems.TheoremCheck`, so deletion compliance can
  feed the same evidence pipeline as the other legal claims.

The check also demonstrates the *attack side* of the right: before
deletion, the secret-sharer extraction works; after exact deletion, it
cannot (the model literally equals one that never saw the secret).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.theorems import TheoremCheck
from repro.lm.ngram import NgramLanguageModel


def verify_exact_deletion(
    corpus: Sequence[str],
    delete_index: int,
    order: int = 5,
) -> bool:
    """Whether unlearning document ``delete_index`` equals never training on it.

    Trains on the full corpus, unlearns one document, and compares against
    a fresh model trained on the corpus minus that document.  True iff the
    parameter tables are identical — the [25] ideal, achievable here
    because n-gram training is additive.
    """
    if not 0 <= delete_index < len(corpus):
        raise ValueError(f"delete_index {delete_index} outside the corpus")
    trained = NgramLanguageModel(order=order).fit(corpus)
    trained.unfit(corpus[delete_index])
    retrained = NgramLanguageModel(order=order).fit(
        [doc for i, doc in enumerate(corpus) if i != delete_index]
    )
    return trained.equals_model(retrained)


def deletion_certificate(
    corpus: Sequence[str],
    delete_index: int,
    order: int = 5,
) -> TheoremCheck:
    """Package a deletion verification as evidence for the legal layer."""
    compliant = verify_exact_deletion(corpus, delete_index, order=order)
    return TheoremCheck(
        theorem="deletion ([25])",
        claim=(
            "unlearning the requested document leaves the model identical to "
            "one never trained on it"
        ),
        passed=compliant,
        measurements={
            "corpus_documents": len(corpus),
            "deleted_index": delete_index,
            "model_order": order,
        },
    )
