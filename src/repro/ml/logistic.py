"""Logistic regression from scratch, with optional DP-SGD training.

Plain full-batch gradient descent on the regularized cross-entropy; the
DP-SGD variant clips per-example gradients to ``clip_norm`` and adds
Gaussian noise ``N(0, (noise_multiplier * clip_norm / n)^2)`` to each
averaged-gradient coordinate per step — the standard recipe, with a
teaching-grade (epsilon, delta) report based on the Gaussian mechanism and
advanced composition over steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.privacy.accounting import advanced_composition
from repro.privacy.kernels import GaussianKernel
from repro.utils.rng import RngSeed, ensure_rng


@dataclass(frozen=True)
class DpSgdConfig:
    """DP-SGD training knobs.

    Attributes:
        clip_norm: per-example gradient L2 clip.
        noise_multiplier: Gaussian noise stddev as a multiple of the
            clipped-gradient sensitivity.
        delta: the delta at which the epsilon report is computed.
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0
    delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier <= 0:
            raise ValueError("noise_multiplier must be positive")
        if not 0 < self.delta < 1:
            raise ValueError("delta must lie in (0, 1)")

    def per_step_epsilon(self) -> float:
        """Epsilon of one noisy step via the classical Gaussian-mechanism bound.

        ``sigma = noise_multiplier * sensitivity`` gives
        ``epsilon = sqrt(2 ln(1.25/delta)) / noise_multiplier``.
        """
        return float(np.sqrt(2.0 * np.log(1.25 / self.delta)) / self.noise_multiplier)

    def total_epsilon(self, steps: int) -> float:
        """Advanced-composition epsilon over ``steps`` (teaching-grade)."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        per_step = min(self.per_step_epsilon(), 1.0)  # keep composition sane
        epsilon, _delta = advanced_composition(per_step, steps, self.delta)
        return epsilon


class LogisticRegressionModel:
    """Binary logistic regression trained by (DP-)gradient descent."""

    def __init__(self, l2: float = 1e-3, learning_rate: float = 0.5, epochs: int = 200):
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if learning_rate <= 0 or epochs <= 0:
            raise ValueError("learning_rate and epochs must be positive")
        self.l2 = float(l2)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self.dp_config: DpSgdConfig | None = None

    # -- training -------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        dp: DpSgdConfig | None = None,
        rng: RngSeed = None,
    ) -> "LogisticRegressionModel":
        """Train on (features, labels in {0,1}); returns self."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2 or labels.shape != (features.shape[0],):
            raise ValueError("features must be (n, d), labels (n,)")
        if not np.isin(labels, (0.0, 1.0)).all():
            raise ValueError("labels must be binary")
        n, d = features.shape
        generator = ensure_rng(rng)
        weights = np.zeros(d)
        bias = 0.0
        # DP-SGD noise sigma = noise_multiplier * clip_norm, sampled by the
        # shared Gaussian kernel.
        noise_kernel = (
            GaussianKernel(dp.noise_multiplier * dp.clip_norm) if dp is not None else None
        )
        for _ in range(self.epochs):
            logits = features @ weights + bias
            probabilities = _sigmoid(logits)
            errors = probabilities - labels  # (n,)
            if dp is None:
                gradient_w = features.T @ errors / n + self.l2 * weights
                gradient_b = float(errors.mean())
            else:
                # Per-example gradients: g_i = errors_i * [x_i, 1].
                per_example = np.hstack([features * errors[:, None], errors[:, None]])
                norms = np.linalg.norm(per_example, axis=1)
                scales = np.minimum(1.0, dp.clip_norm / np.maximum(norms, 1e-12))
                clipped = per_example * scales[:, None]
                summed = clipped.sum(axis=0)
                noisy = summed + noise_kernel.sample_n(generator, summed.shape)
                averaged = noisy / n
                gradient_w = averaged[:d] + self.l2 * weights
                gradient_b = float(averaged[d])
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
        self.weights = weights
        self.bias = bias
        self.dp_config = dp
        return self

    def epsilon_report(self) -> float | None:
        """Total training epsilon (advanced composition), or None."""
        if self.dp_config is None:
            return None
        return self.dp_config.total_epsilon(self.epochs)

    # -- inference -------------------------------------------------------------

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1 | x) for each row."""
        self._require_fitted()
        features = np.asarray(features, dtype=float)
        return _sigmoid(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        labels = np.asarray(labels)
        return float((self.predict(features) == labels).mean())

    def per_example_loss(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Cross-entropy loss of each example — the membership-attack signal."""
        self._require_fitted()
        probabilities = np.clip(self.predict_proba(features), 1e-12, 1 - 1e-12)
        labels = np.asarray(labels, dtype=float)
        return -(labels * np.log(probabilities) + (1 - labels) * np.log(1 - probabilities))

    def _require_fitted(self) -> None:
        if self.weights is None:
            raise RuntimeError("model is not fitted; call fit() first")


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


def gaussian_task(
    n: int,
    dimensions: int = 40,
    separation: float = 1.0,
    rng: RngSeed = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A two-Gaussian binary classification task.

    Class means sit ``separation`` apart along a random direction in
    ``dimensions`` dimensions; unit covariance.  Small ``n`` with large
    ``dimensions`` produces the overfitting regime membership attacks feed
    on.
    """
    if n <= 1 or dimensions <= 0:
        raise ValueError("need n > 1 and positive dimensionality")
    generator = ensure_rng(rng)
    direction = generator.normal(size=dimensions)
    direction /= np.linalg.norm(direction)
    labels = generator.integers(0, 2, size=n)
    means = np.where(labels[:, None] == 1, 0.5, -0.5) * separation * direction
    features = means + generator.normal(size=(n, dimensions))
    return features, labels.astype(np.int64)
