"""A minimal machine-learning substrate for the membership attacks.

The paper's Section 1 cites Shokri et al. [40]: membership attacks against
machine learning models "allow to infer whether a person's data was
included in the training set".  Exercising that attack needs a trainable
model whose overfitting can be dialed; this subpackage provides a
from-scratch numpy logistic regression with plain gradient descent and an
optional DP-SGD training mode (per-example gradient clipping + Gaussian
noise), plus a Gaussian-mixture task generator.
"""

from repro.ml.logistic import (
    DpSgdConfig,
    LogisticRegressionModel,
    gaussian_task,
)

__all__ = ["DpSgdConfig", "LogisticRegressionModel", "gaussian_task"]
