"""Census-style table publication.

The 2010 Decennial publication the paper discusses released, for every
census block, a system of overlapping marginal tables (counts by sex and
age, by race and ethnicity, and cross-tabulations).  Those tables — not any
microdata — were the attack surface of the Census reconstruction [24].

We publish the analogous system for the synthetic blocks of
:mod:`repro.data.censusblocks`:

* ``total``          — block population (table P1);
* ``sex_by_age``     — counts by (sex, single-year age) (cf. P12/PCT12);
* ``race_by_ethnicity`` — counts by (race, Hispanic origin) (cf. P5);
* ``sex_by_race``    — counts by (sex, race) (cf. P12 A-I iterations).

The solver in :mod:`repro.reconstruction.census_solver` knows nothing about
the generator — it sees only these tables, exactly like the real attack.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.data.censusblocks import ETHNICITIES, RACES, SEXES
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class BlockTables:
    """The published tables for one census block."""

    block: int
    total: int
    sex_by_age: Mapping[tuple[str, int], int]
    race_by_ethnicity: Mapping[tuple[str, str], int]
    sex_by_race: Mapping[tuple[str, str], int]

    def __post_init__(self) -> None:
        for name, table in (
            ("sex_by_age", self.sex_by_age),
            ("race_by_ethnicity", self.race_by_ethnicity),
            ("sex_by_race", self.sex_by_race),
        ):
            marginal_total = sum(table.values())
            if marginal_total != self.total:
                raise ValueError(
                    f"table {name} sums to {marginal_total}, expected {self.total}"
                )
            if any(count < 0 for count in table.values()):
                raise ValueError(f"table {name} has negative counts")

    def sex_counts(self) -> dict[str, int]:
        """Marginal population by sex (derived; consistency is checked)."""
        by_age = Counter()
        for (sex, _age), count in self.sex_by_age.items():
            by_age[sex] += count
        by_race = Counter()
        for (sex, _race), count in self.sex_by_race.items():
            by_race[sex] += count
        if by_age != by_race:
            raise ValueError(
                f"inconsistent sex marginals across tables in block {self.block}"
            )
        return dict(by_age)

    def race_counts(self) -> dict[str, int]:
        """Marginal population by race."""
        counts: Counter = Counter()
        for (race, _eth), count in self.race_by_ethnicity.items():
            counts[race] += count
        return dict(counts)


def tabulate_blocks(census: Dataset) -> dict[int, BlockTables]:
    """Publish the table system for every block of the census microdata.

    The input must carry ``block``, ``sex``, ``age``, ``race`` and
    ``ethnicity`` attributes (the ``person_id`` ground truth is ignored —
    nothing identifying is published).
    """
    required = {"block", "sex", "age", "race", "ethnicity"}
    missing = required - set(census.schema.names)
    if missing:
        raise ValueError(f"census data is missing attributes: {sorted(missing)}")

    per_block: dict[int, list] = {}
    for record in census:
        per_block.setdefault(record["block"], []).append(record)  # type: ignore[arg-type]

    tables: dict[int, BlockTables] = {}
    for block, people in sorted(per_block.items()):
        sex_by_age: Counter = Counter()
        race_by_ethnicity: Counter = Counter()
        sex_by_race: Counter = Counter()
        for person in people:
            sex_by_age[(person["sex"], person["age"])] += 1
            race_by_ethnicity[(person["race"], person["ethnicity"])] += 1
            sex_by_race[(person["sex"], person["race"])] += 1
        tables[int(block)] = BlockTables(  # type: ignore[arg-type]
            block=int(block),  # type: ignore[arg-type]
            total=len(people),
            sex_by_age=dict(sex_by_age),
            race_by_ethnicity=dict(race_by_ethnicity),
            sex_by_race=dict(sex_by_race),
        )
    return tables


def apply_rounding(tables: dict[int, BlockTables], base: int = 3) -> dict[int, BlockTables]:
    """A legacy disclosure-limitation variant: round the coarse tables.

    Controlled rounding was among the pre-2020 SDC techniques.  It was
    applied to the demographic cross-tabulations (here ``race_by_ethnicity``
    and ``sex_by_race``), not to the basic age pyramid — rounding
    single-year counts (almost all 1) to a base would zero the entire
    publication.  After rounding, each table is adjusted back to the block
    total so it remains internally consistent; the *information* lost to
    rounding persists.  The benchmark's finding — reconstruction is
    essentially unharmed — mirrors the historical lesson that ad-hoc SDC
    does not defend against reconstruction; calibrated noise (see the
    census example's DP variant) does.
    """
    if base <= 1:
        raise ValueError("rounding base must exceed 1")

    def round_table(table: Mapping, to: int) -> dict:
        return {key: int(round(count / to) * to) for key, count in table.items()}

    rounded: dict[int, BlockTables] = {}
    for block, original in tables.items():
        total = original.total
        race_by_ethnicity = _fit_total(round_table(original.race_by_ethnicity, base), total)
        sex_by_race = _fit_total(round_table(original.sex_by_race, base), total)
        rounded[block] = BlockTables(
            block=block,
            total=total,
            sex_by_age=dict(original.sex_by_age),
            race_by_ethnicity=race_by_ethnicity,
            sex_by_race=sex_by_race,
        )
    return rounded


def _fit_total(table: dict, total: int) -> dict:
    """Adjust a rounded table's counts so they sum to ``total`` (keeps >= 0)."""
    table = dict(table)
    if not table:
        return table
    delta = total - sum(table.values())
    keys = sorted(table, key=lambda key: -table[key])
    i = 0
    while delta != 0 and keys:
        key = keys[i % len(keys)]
        step = 1 if delta > 0 else -1
        if table[key] + step >= 0:
            table[key] += step
            delta -= step
        i += 1
        if i > 10_000:  # safety: cannot happen with sane inputs
            raise RuntimeError("table adjustment failed to converge")
    return table
