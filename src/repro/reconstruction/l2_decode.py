"""First-order least-squares decoding — the KRS fast path.

*The Power of Linear Reconstruction Attacks* (Kasiviswanathan–Rudelson–
Smith) showed that the LP in the Dinur–Nissim attack is not load-bearing:
an attacker who simply *projects* the noisy answers back onto the data
domain — a regularized least-squares solve followed by rounding — already
reconstructs in the same noise regime, for a tiny fraction of the cost.
This module implements that decoder as the default fast path of the
reconstruction stack:

* :func:`l2_decode` minimizes ``0.5 * ||A z - a||^2`` (plus an optional
  ridge term pulling toward the uninformative center ``1/2``) over the box
  ``[0, 1]^n`` with FISTA (accelerated projected gradient).  Every
  iteration is two sparse matvecs, so the cost is ``O(iters * nnz)`` —
  no simplex pivots, no interior-point factorizations.
* When the answers carry a worst-case error bound ``alpha``, the rounded
  candidate is checked against the *feasibility certificate*
  ``max |A x~ - a| <= alpha`` — the exact condition the feasibility LP
  enforces.  A candidate that passes is a valid LP solution outright,
  which is what lets the sharded pipeline skip the LP entirely on most
  blocks and escalate (warm-started with the fractional iterate) only
  when the certificate fails.
* :func:`l2_decode_batch` runs the same iteration simultaneously over a
  stack of equal-shape dense subproblems — the census regime, where tens
  of thousands of small per-block systems decode as a handful of batched
  einsums instead of tens of thousands of Python calls.

Determinism: the iteration starts from the fixed center point, the step
size comes from a deterministic norm bound by default (``lipschitz="auto"``;
``"power"`` runs a power iteration whose start vector is drawn from ``rng``,
so results are bit-deterministic given a seed either way), and each block
in a batch is computed independently of the others — so batching, chunking,
and ``jobs`` settings can never change a single output bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.utils.rng import RngSeed, ensure_rng

#: Default FISTA iteration cap.  Sparse matvecs are cheap; the certificate
#: check usually exits long before this.
DEFAULT_MAX_ITERS = 2000

#: How often (in iterations) to test the rounded candidate's certificate.
DEFAULT_CHECK_EVERY = 25

#: Default early-stop tolerance on the sup-norm iterate change.
DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class L2ReconstructionResult:
    """Outcome of the first-order least-squares decoding attack.

    Attributes:
        reconstruction: the rounded candidate ``x~ in {0,1}^n``.
        fractional: the box-constrained least-squares iterate before
            rounding (the warm start handed to an escalated LP).
        queries_used: number of constraints decoded.
        iterations: FISTA iterations actually run.
        max_residual: ``max |A x~ - a|`` of the *rounded* candidate.
        mean_residual: mean absolute residual of the rounded candidate.
        certified: whether the rounded candidate passed the feasibility
            certificate ``max_residual <= alpha`` (always ``False`` when no
            finite ``alpha`` was supplied — there is nothing to certify).
        alpha: the error bound tested against (``nan`` when none).
    """

    reconstruction: np.ndarray
    fractional: np.ndarray
    queries_used: int
    iterations: int
    max_residual: float
    mean_residual: float
    certified: bool
    alpha: float

    def agreement_with(self, data: np.ndarray) -> float:
        """Fraction of positions where the reconstruction matches ``data``."""
        data = np.asarray(data)
        if data.shape != self.reconstruction.shape:
            raise ValueError("shape mismatch between data and reconstruction")
        return float((self.reconstruction == data).mean())

    def hamming_distance(self, data: np.ndarray) -> int:
        """Number of positions where the reconstruction disagrees with ``data``."""
        return int((np.asarray(data) != self.reconstruction).sum())


def _lipschitz_bound(matrix) -> float:
    """Deterministic upper bound on ``||A||_2^2`` via ``||A||_1 * ||A||_inf``.

    For 0/1 query matrices the bound is tight up to a small constant (the
    top singular vector is near the all-ones direction), and unlike a power
    iteration it involves no randomness at all.
    """
    if scipy.sparse.issparse(matrix):
        row_sums = np.asarray(np.abs(matrix).sum(axis=1)).ravel()
        col_sums = np.asarray(np.abs(matrix).sum(axis=0)).ravel()
    else:
        absolute = np.abs(matrix)
        row_sums = absolute.sum(axis=1)
        col_sums = absolute.sum(axis=0)
    return float(row_sums.max() * col_sums.max())


def _lipschitz_power(matrix, rng: np.random.Generator, iters: int = 32) -> float:
    """Estimate ``||A||_2^2`` by seeded power iteration on ``A^T A``."""
    n = matrix.shape[1]
    vector = rng.random(n) + 1e-3
    vector /= np.linalg.norm(vector)
    sigma_sq = 1.0
    for _ in range(iters):
        product = matrix.T @ (matrix @ vector)
        norm = float(np.linalg.norm(product))
        if norm == 0.0:
            return 1.0
        sigma_sq = norm
        vector = product / norm
    # Power iteration underestimates; pad so 1/L stays a safe step size.
    return float(sigma_sq * 1.05)


def _resolve_lipschitz(matrix, lipschitz, rng: RngSeed) -> float:
    if isinstance(lipschitz, (int, float)) and not isinstance(lipschitz, bool):
        if lipschitz <= 0:
            raise ValueError(f"lipschitz must be positive, got {lipschitz}")
        return float(lipschitz)
    if lipschitz == "auto":
        return _lipschitz_bound(matrix)
    if lipschitz == "power":
        return _lipschitz_power(matrix, ensure_rng(rng))
    raise ValueError(f"unknown lipschitz mode: {lipschitz!r}")


def l2_decode(
    queries: Workload | Sequence[SubsetQuery],
    answers: np.ndarray,
    alpha: float | None = None,
    *,
    reg: float = 0.0,
    max_iters: int = DEFAULT_MAX_ITERS,
    tol: float = DEFAULT_TOL,
    check_every: int = DEFAULT_CHECK_EVERY,
    lipschitz: float | str = "auto",
    rng: RngSeed = 0,
    x0: np.ndarray | None = None,
) -> L2ReconstructionResult:
    """Decode a (workload, answers) transcript by projected least squares.

    Args:
        queries: the workload (its cached CSR assembly is reused).
        answers: the released noisy answers, aligned with ``queries``.
        alpha: worst-case error bound, when one is known.  Enables the
            feasibility-certificate early exit: iteration stops as soon as
            the rounded candidate satisfies ``max |A x~ - a| <= alpha``.
        reg: ridge coefficient pulling the iterate toward the center
            ``1/2`` — stabilizes underdetermined or very noisy systems.
        max_iters: FISTA iteration cap.
        tol: sup-norm iterate-change early stop.
        check_every: cadence (iterations) of the certificate check.
        lipschitz: step-size policy — ``"auto"`` (deterministic norm-product
            bound), ``"power"`` (seeded power iteration), or an explicit
            positive float.
        rng: seed for ``lipschitz="power"``; otherwise unused.
        x0: optional warm start for the iterate (clipped into ``[0,1]^n``);
            defaults to the uninformative center ``1/2``.  An auditor
            re-decoding a transcript that grew by one audit window starts
            near the previous solution and converges in far fewer
            iterations than a cold start.

    Returns:
        The rounded reconstruction with residual bookkeeping.
    """
    workload = Workload.coerce(queries)
    answers = np.asarray(answers, dtype=float)
    if answers.shape != (len(workload),):
        raise ValueError("answers must align with the query list")
    if max_iters <= 0:
        raise ValueError(f"max_iters must be positive, got {max_iters}")
    if check_every <= 0:
        raise ValueError(f"check_every must be positive, got {check_every}")
    if reg < 0:
        raise ValueError(f"reg must be non-negative, got {reg}")

    matrix = workload.matrix(sparse=True)
    m, n = matrix.shape
    step = 1.0 / (_resolve_lipschitz(matrix, lipschitz, rng) + reg)
    bound = float("inf") if alpha is None else float(alpha)

    center = np.full(n, 0.5)
    if x0 is None:
        z = center.copy()
    else:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (n,):
            raise ValueError(f"x0 must have shape ({n},), got {x0.shape}")
        z = np.clip(x0, 0.0, 1.0)
    y = z.copy()
    t = 1.0
    iterations = 0
    if x0 is not None and np.isfinite(bound):
        # A warm start that already certifies costs one matvec, not a solve.
        rounded = (z >= 0.5).astype(np.float64)
        if float(np.max(np.abs(matrix @ rounded - answers))) <= bound:
            max_iters = 0
    for iteration in range(1, max_iters + 1):
        gradient = matrix.T @ (matrix @ y - answers)
        if reg:
            gradient += reg * (y - center)
        z_next = np.clip(y - step * gradient, 0.0, 1.0)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        y = z_next + ((t - 1.0) / t_next) * (z_next - z)
        shift = float(np.max(np.abs(z_next - z)))
        z = z_next
        t = t_next
        iterations = iteration
        if np.isfinite(bound) and iteration % check_every == 0:
            rounded = (z >= 0.5).astype(np.float64)
            if float(np.max(np.abs(matrix @ rounded - answers))) <= bound:
                break
        if shift < tol:
            break

    reconstruction = (z >= 0.5).astype(np.int64)
    residuals = np.abs(matrix @ reconstruction.astype(np.float64) - answers)
    max_residual = float(residuals.max())
    return L2ReconstructionResult(
        reconstruction=reconstruction,
        fractional=z,
        queries_used=m,
        iterations=iterations,
        max_residual=max_residual,
        mean_residual=float(residuals.mean()),
        certified=bool(np.isfinite(bound) and max_residual <= bound),
        alpha=bound if np.isfinite(bound) else float("nan"),
    )


def l2_decode_batch(
    systems: np.ndarray,
    answers: np.ndarray,
    alpha: float | None = None,
    *,
    reg: float = 0.0,
    max_iters: int = DEFAULT_MAX_ITERS,
    tol: float = DEFAULT_TOL,
    check_every: int = DEFAULT_CHECK_EVERY,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode ``k`` equal-shape dense systems simultaneously.

    Args:
        systems: ``(k, m, b)`` stack of per-block query matrices.
        answers: ``(k, m)`` released answers.
        alpha: shared worst-case error bound (certificate early exit).
        reg, max_iters, tol, check_every: as in :func:`l2_decode`.

    Returns:
        ``(bits, fractional, max_residuals)`` with shapes ``(k, b)`` int64,
        ``(k, b)`` float, and ``(k,)`` float — ``max_residuals`` is measured
        on the rounded candidates, ready for the escalation test.

    Each block's floating-point trajectory is element-wise independent of
    its batch-mates (there is no cross-block reduction), so splitting the
    stack across chunks or workers reproduces the same bits.  Blocks whose
    rounded candidate passes the certificate are frozen and removed from
    the active set, so a batch dominated by easy blocks exits early.
    """
    systems = np.asarray(systems, dtype=np.float64)
    answers = np.asarray(answers, dtype=np.float64)
    if systems.ndim != 3:
        raise ValueError(f"systems must be (k, m, b), got ndim={systems.ndim}")
    k, m, b = systems.shape
    if answers.shape != (k, m):
        raise ValueError(f"answers must be ({k}, {m}), got {answers.shape}")
    bound = float("inf") if alpha is None else float(alpha)

    # Per-block deterministic step sizes from the norm-product bound.
    row_sums = systems.sum(axis=2).max(axis=1)  # (k,) max row sums
    col_sums = systems.sum(axis=1).max(axis=1)  # (k,) max col sums
    steps = 1.0 / (np.maximum(row_sums * col_sums, 1e-12) + reg)  # (k,)

    fractional = np.full((k, b), 0.5)
    active = np.arange(k)
    z = fractional.copy()
    y = z.copy()
    a_mats = systems
    a_vecs = answers
    step = steps[:, None]
    t = 1.0
    for iteration in range(1, max_iters + 1):
        residual = np.einsum("kmb,kb->km", a_mats, y) - a_vecs
        gradient = np.einsum("kmb,km->kb", a_mats, residual)
        if reg:
            gradient += reg * (y - 0.5)
        z_next = np.clip(y - step * gradient, 0.0, 1.0)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        y = z_next + ((t - 1.0) / t_next) * (z_next - z)
        shifts = np.abs(z_next - z).max(axis=1)
        z = z_next
        t = t_next

        done = shifts < tol
        if np.isfinite(bound) and iteration % check_every == 0:
            rounded = (z >= 0.5).astype(np.float64)
            cert = np.abs(
                np.einsum("kmb,kb->km", a_mats, rounded) - a_vecs
            ).max(axis=1)
            done |= cert <= bound
        if done.any() or iteration == max_iters:
            finished = done if iteration < max_iters else np.ones_like(done)
            fractional[active[finished]] = z[finished]
            keep = ~finished
            if not keep.any():
                break
            active = active[keep]
            z, y = z[keep], y[keep]
            a_mats, a_vecs, step = a_mats[keep], a_vecs[keep], step[keep]

    bits = (fractional >= 0.5).astype(np.int64)
    residuals = np.abs(
        np.einsum("kmb,kb->km", systems, bits.astype(np.float64)) - answers
    ).max(axis=1)
    return bits, fractional, residuals
