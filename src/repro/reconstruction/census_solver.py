"""Inverting census tables back into microdata — the paper's Section 1 attack.

The attack proceeds block by block, exactly as described for the 2010
Decennial reconstruction [24]:

1. The published ``sex_by_age`` table *is* the multiset of (sex, age) pairs
   — single-year counts leave nothing to infer.
2. The joint distribution of (sex, race, ethnicity) is pinned down by
   solving an integer feasibility problem over the 2x4x2 contingency cube
   whose margins are the published ``sex_by_race`` and
   ``race_by_ethnicity`` tables.
3. Race/ethnicity cells are attached to the (sex, age) pairs, yielding
   person-level records for the whole block.

Whether step 2 has a *unique* solution depends on the block's size and
diversity; small blocks (the norm) are often uniquely determined, which is
why the real attack reconstructed 71% of the US population exactly.  We
score reconstructed records by maximum multiset agreement with the truth,
and re-identification by joining against a synthetic commercial file.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import product
from typing import Sequence

import numpy as np
from scipy.optimize import LinearConstraint, milp

from repro.data.censusblocks import ETHNICITIES, RACES, SEXES
from repro.data.dataset import Dataset
from repro.reconstruction.tabulation import BlockTables
from repro.utils.parallel import parallel_map

#: A reconstructed person: (block, sex, age, race, ethnicity).
ReconstructedRecord = tuple[int, str, int, str, str]


@dataclass(frozen=True)
class BlockReconstruction:
    """Per-block reconstruction outcome."""

    block: int
    records: tuple[ReconstructedRecord, ...]
    solved: bool  #: whether the feasibility solve succeeded
    exact_matches: int  #: records agreeing with the truth (multiset match)

    @property
    def population(self) -> int:
        """Number of persons in the block."""
        return len(self.records)


@dataclass(frozen=True)
class CensusReconstructionResult:
    """Aggregate outcome over all blocks."""

    blocks: tuple[BlockReconstruction, ...]

    @property
    def records(self) -> list[ReconstructedRecord]:
        """All reconstructed person records."""
        return [record for block in self.blocks for record in block.records]

    @property
    def population(self) -> int:
        """Total persons across blocks."""
        return sum(block.population for block in self.blocks)

    @property
    def exact_match_fraction(self) -> float:
        """Fraction of the population whose record was reconstructed exactly.

        This is the statistic behind the paper's "71% of the US population"
        claim.
        """
        if self.population == 0:
            raise ValueError("no blocks were reconstructed")
        return sum(block.exact_matches for block in self.blocks) / self.population

    @property
    def solved_fraction(self) -> float:
        """Fraction of blocks where the integer solve succeeded."""
        if not self.blocks:
            raise ValueError("no blocks were reconstructed")
        return sum(1 for block in self.blocks if block.solved) / len(self.blocks)


def reconstruct_census(
    tables: dict[int, BlockTables],
    truth: Dataset | None = None,
    jobs: int | None = 1,
    backend: str = "auto",
) -> CensusReconstructionResult:
    """Reconstruct person-level records from published block tables.

    Args:
        tables: the published table system (see
            :func:`repro.reconstruction.tabulation.tabulate_blocks`).
        truth: the original microdata, used only for scoring
            ``exact_matches``; pass ``None`` to skip scoring (all zeros).
        jobs: worker count for the per-block integer solves.  Blocks are
            independent (the defining property of the attack), so they
            dispatch through :func:`repro.utils.parallel.parallel_map`
            weighted by block population; results join in block order, so
            the output is identical for every ``jobs`` setting.
        backend: parallel backend name (see :mod:`repro.utils.parallel`).

    Returns:
        Reconstruction of every block, with per-block exactness scores.
    """
    truth_by_block: dict[int, Counter] = {}
    if truth is not None:
        for record in truth:
            key = (
                int(record["block"]),  # type: ignore[arg-type]
                record["sex"],
                record["age"],
                record["race"],
                record["ethnicity"],
            )
            truth_by_block.setdefault(key[0], Counter())[key] += 1

    ordered = sorted(tables.items())
    solutions = parallel_map(
        lambda item: _reconstruct_block(item[1]),
        ordered,
        jobs=jobs,
        backend=backend,
        weights=[block_tables.total for _, block_tables in ordered],
    )

    blocks = []
    for (block_id, _), (records, solved) in zip(ordered, solutions):
        exact = 0
        if truth is not None:
            reconstructed_counter = Counter(records)
            exact = sum(
                (reconstructed_counter & truth_by_block.get(block_id, Counter())).values()
            )
        blocks.append(
            BlockReconstruction(
                block=block_id,
                records=tuple(records),
                solved=solved,
                exact_matches=exact,
            )
        )
    return CensusReconstructionResult(blocks=tuple(blocks))


def _reconstruct_block(tables: BlockTables) -> tuple[list[ReconstructedRecord], bool]:
    """Reconstruct one block; returns (records, solver_succeeded)."""
    # Step 1: (sex, age) pairs straight from the published table.
    sex_age_pairs: list[tuple[str, int]] = []
    for (sex, age), count in sorted(tables.sex_by_age.items()):
        sex_age_pairs.extend([(sex, age)] * count)

    # Step 2: solve the (sex, race, ethnicity) cube.
    cube = _solve_cube(tables)
    solved = cube is not None
    if cube is None:
        # Degenerate fallback: spread the race x ethnicity marginal
        # proportionally across sexes (never exercised with consistent
        # tables; kept so rounded/inconsistent tables still yield output).
        cube = _proportional_cube(tables)

    # Step 3: attach (race, ethnicity) cells to the per-sex age lists.
    records: list[ReconstructedRecord] = []
    for sex in SEXES:
        ages = sorted(age for s, age in sex_age_pairs if s == sex)
        cells: list[tuple[str, str]] = []
        for race, ethnicity in product(RACES, ETHNICITIES):
            cells.extend([(race, ethnicity)] * cube[(sex, race, ethnicity)])
        if len(cells) != len(ages):
            # Inconsistent tables (possible after rounding): pad/truncate with
            # the block's plurality cell so every person gets a record.
            plurality = max(
                product(RACES, ETHNICITIES),
                key=lambda cell: tables.race_by_ethnicity.get(cell, 0),
            )
            while len(cells) < len(ages):
                cells.append(plurality)
            cells = cells[: len(ages)]
        for age, (race, ethnicity) in zip(ages, cells):
            records.append((tables.block, sex, age, race, ethnicity))
    return records, solved


def _cube_system() -> tuple[
    list[tuple[str, str, str]],
    dict[tuple[str, str, str], int],
    np.ndarray,
    list[tuple[str, str]],
    list[tuple[str, str]],
]:
    """Precompute the margin-constraint system shared by every block.

    The constraint *matrix* depends only on the attribute vocabularies
    (SEXES x RACES x ETHNICITIES), never on the block, so it is built once
    at import time; per block only the right-hand-side margins change.
    """
    variables = list(product(SEXES, RACES, ETHNICITIES))
    index = {cell: i for i, cell in enumerate(variables)}
    sex_race_cells = list(product(SEXES, RACES))
    race_ethnicity_cells = list(product(RACES, ETHNICITIES))

    matrix = np.zeros((len(sex_race_cells) + len(race_ethnicity_cells), len(variables)))
    for row, (sex, race) in enumerate(sex_race_cells):
        for ethnicity in ETHNICITIES:
            matrix[row, index[(sex, race, ethnicity)]] = 1.0
    offset = len(sex_race_cells)
    for row, (race, ethnicity) in enumerate(race_ethnicity_cells):
        for sex in SEXES:
            matrix[offset + row, index[(sex, race, ethnicity)]] = 1.0
    matrix.setflags(write=False)
    return variables, index, matrix, sex_race_cells, race_ethnicity_cells


(
    _CUBE_VARIABLES,
    _CUBE_INDEX,
    _CUBE_MATRIX,
    _CUBE_SEX_RACE_CELLS,
    _CUBE_RACE_ETHNICITY_CELLS,
) = _cube_system()


def _solve_cube(tables: BlockTables) -> dict[tuple[str, str, str], int] | None:
    """Integer feasibility for n[sex, race, ethnicity] given two margins.

    Margins: ``sum_e n[s,r,e] = sex_by_race[s,r]`` and
    ``sum_s n[s,r,e] = race_by_ethnicity[r,e]``.  Solved exactly with
    scipy's MILP (16 variables, 16 equality constraints); the constraint
    matrix is the block-independent :data:`_CUBE_MATRIX` assembled once at
    module load, so per block we only fill the margin vector.
    """
    bounds = np.fromiter(
        (
            tables.sex_by_race.get(cell, 0)
            for cell in _CUBE_SEX_RACE_CELLS
        ),
        dtype=float,
        count=len(_CUBE_SEX_RACE_CELLS),
    )
    bounds = np.concatenate(
        [
            bounds,
            np.fromiter(
                (
                    tables.race_by_ethnicity.get(cell, 0)
                    for cell in _CUBE_RACE_ETHNICITY_CELLS
                ),
                dtype=float,
                count=len(_CUBE_RACE_ETHNICITY_CELLS),
            ),
        ]
    )

    constraint = LinearConstraint(_CUBE_MATRIX, bounds, bounds)
    result = milp(
        c=np.zeros(len(_CUBE_VARIABLES)),
        constraints=[constraint],
        integrality=np.ones(len(_CUBE_VARIABLES)),
        bounds=(0, tables.total),
    )
    if not result.success:
        return None
    solution = np.round(result.x).astype(int)
    return {cell: int(solution[i]) for cell, i in _CUBE_INDEX.items()}


def _proportional_cube(tables: BlockTables) -> dict[tuple[str, str, str], int]:
    """Fallback cube: split race x ethnicity counts across sexes by share.

    Sex shares come from the sex_by_age table alone — after rounding the
    cross-tabulations, the sex marginals of the different tables may
    disagree, and sex_by_age is the one the record assembly trusts.
    """
    sex_counts: dict[str, int] = {}
    for (sex, _age), count in tables.sex_by_age.items():
        sex_counts[sex] = sex_counts.get(sex, 0) + count
    total = max(tables.total, 1)
    cube: dict[tuple[str, str, str], int] = {}
    for race, ethnicity in product(RACES, ETHNICITIES):
        count = tables.race_by_ethnicity.get((race, ethnicity), 0)
        assigned = 0
        for sex in SEXES[:-1]:
            share = round(count * sex_counts.get(sex, 0) / total)
            cube[(sex, race, ethnicity)] = share
            assigned += share
        cube[(SEXES[-1], race, ethnicity)] = max(count - assigned, 0)
    return cube


@dataclass(frozen=True)
class ReidentificationResult:
    """Outcome of linking reconstructed records to an identified file.

    Attributes:
        attempted: commercial-file rows for which a unique candidate existed.
        confirmed: attempted matches that were actually correct (the
            inferred race/ethnicity and exact age match the true person).
        population: size of the underlying population (denominator of
            :attr:`reidentified_rate`).
    """

    attempted: int
    confirmed: int
    population: int

    @property
    def precision(self) -> float:
        """Fraction of putative matches that were correct."""
        if self.attempted == 0:
            return 0.0
        return self.confirmed / self.attempted

    @property
    def reidentified_rate(self) -> float:
        """Confirmed re-identifications over the whole population.

        The statistic behind the paper's "17% of the US population" claim.
        """
        if self.population == 0:
            raise ValueError("population must be positive")
        return self.confirmed / self.population

    @property
    def putative_rate(self) -> float:
        """Attempted (claimed) re-identifications over the population."""
        if self.population == 0:
            raise ValueError("population must be positive")
        return self.attempted / self.population


def reidentify(
    reconstruction: CensusReconstructionResult,
    commercial: Dataset,
    truth: Dataset,
    age_tolerance: int = 1,
) -> ReidentificationResult:
    """Link a commercial file against reconstructed records.

    For each identified commercial row (person_id, block, sex, age+-error),
    the attacker looks for reconstructed records in the same block with the
    same sex and age within ``age_tolerance``.  A *unique* candidate becomes
    a putative re-identification; it is *confirmed* when the candidate's
    full record equals the person's true record.
    """
    return reidentify_records(
        reconstruction.records, commercial, truth, age_tolerance
    )


def reidentify_records(
    records: Sequence[ReconstructedRecord],
    commercial: Dataset,
    truth: Dataset,
    age_tolerance: int = 1,
) -> ReidentificationResult:
    """The :func:`reidentify` linkage against any (block, sex, age, race,
    ethnicity) record collection.

    The records need not come from a reconstruction — the synthetic-release
    evaluation (:mod:`repro.synth.evaluation`) links the commercial file
    directly against *published* synthetic microdata to measure how much
    re-identification power a release retains.
    """
    by_block: dict[int, list[ReconstructedRecord]] = {}
    for record in records:
        by_block.setdefault(record[0], []).append(record)

    truth_by_id = {
        record["person_id"]: (
            int(record["block"]),  # type: ignore[arg-type]
            record["sex"],
            record["age"],
            record["race"],
            record["ethnicity"],
        )
        for record in truth
    }

    attempted = 0
    confirmed = 0
    for row in commercial:
        block = int(row["block"])  # type: ignore[arg-type]
        candidates = [
            record
            for record in by_block.get(block, [])
            if record[1] == row["sex"] and abs(record[2] - row["age"]) <= age_tolerance  # type: ignore[operator]
        ]
        if len(candidates) != 1:
            continue
        attempted += 1
        candidate = candidates[0]
        true_record = truth_by_id.get(row["person_id"])
        if true_record is not None and candidate == true_record:
            confirmed += 1
    return ReidentificationResult(
        attempted=attempted, confirmed=confirmed, population=len(truth)
    )
