"""Census-scale sharded reconstruction: per-block subproblems, joined.

The 2010 Census reconstruction did not solve one nation-sized system — it
solved ~6 million *block-level* systems, because every published table is
tabulated within a census block and therefore never couples variables
across blocks.  This module exploits the same structure for the abstract
subset-query attacks:

* :class:`BlockPartition` recovers the block structure *from the query
  support alone* — two positions belong to the same block exactly when
  some chain of queries connects them, i.e. the connected components of
  the query-position incidence graph.  Positions touched by no query are
  unconstrained and reported separately.
* :class:`ShardedReconstructor` decomposes a (workload, answers)
  transcript along a partition into independent per-block shards, decodes
  every shard with the first-order l2 fast path
  (:mod:`repro.reconstruction.l2_decode`), escalates individual shards to
  the LP decoder only when the l2 certificate fails (warm-started with the
  l2 fractional iterate), and joins the per-shard bits back into one
  reconstruction.  Shards are dispatched through
  :func:`repro.utils.parallel.parallel_map` with per-shard cost weights.

Determinism: shard formation, batching, and per-shard seed streams are
pure functions of (workload, partition, seed) — never of ``jobs``, the
backend, or scheduling order — and every per-shard decode is independent
of its batch-mates, so the joined reconstruction is bit-identical across
``jobs=1`` and ``jobs=N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.sparse
from scipy.sparse.csgraph import connected_components

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.reconstruction.l2_decode import (
    DEFAULT_CHECK_EVERY,
    DEFAULT_MAX_ITERS,
    DEFAULT_TOL,
    l2_decode,
    l2_decode_batch,
)
from repro.reconstruction.lp_decode import LpSolverOptions, reconstruct_from_answers
from repro.utils.parallel import parallel_map
from repro.utils.rng import RngSeed, derive_rng

#: Default number of equal-shape shards decoded per batched einsum call.
DEFAULT_BATCH_SIZE = 64

#: Default cap on ``m * b`` for a shard to take the dense batched path.
DEFAULT_DENSE_LIMIT = 1 << 16


@dataclass(frozen=True)
class BlockPartition:
    """A decomposition of positions (and queries) into independent blocks.

    Attributes:
        n: total number of positions the workload addresses.
        blocks: per-block sorted position indices; disjoint.
        query_blocks: per-block sorted query-row indices; each query's
            support lies entirely inside its block's positions.
        unconstrained: positions touched by no query at all.  No transcript
            carries information about them; the join writes zeros there.
    """

    n: int
    blocks: tuple[np.ndarray, ...]
    query_blocks: tuple[np.ndarray, ...]
    unconstrained: np.ndarray

    @property
    def num_blocks(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    @property
    def block_sizes(self) -> np.ndarray:
        """Per-block position counts."""
        return np.array([len(block) for block in self.blocks], dtype=np.int64)

    @classmethod
    def from_workload(cls, workload: Workload | Sequence[SubsetQuery]) -> "BlockPartition":
        """Discover the partition from the query support.

        Positions i and j land in the same block iff they are connected in
        the graph whose edges join the positions of each query — computed
        as connected components over a star graph per query (head position
        to every other position), which is ``O(nnz)`` edges rather than the
        ``O(sum m_i^2)`` of the full per-query cliques.  Blocks are
        numbered by their smallest position index, so the labeling is a
        pure function of the workload.
        """
        workload = Workload.coerce(workload)
        csr = workload.matrix(sparse=True)
        m, n = csr.shape
        indptr, indices = csr.indptr, csr.indices
        sizes = np.diff(indptr)
        if (sizes == 0).any():
            empty = int(np.flatnonzero(sizes == 0)[0])
            raise ValueError(
                f"query {empty} has empty support and cannot be assigned to a block"
            )
        heads = indices[indptr[:-1]]
        src = np.repeat(heads, sizes - 1)
        tgt = np.delete(indices, indptr[:-1])
        graph = scipy.sparse.coo_matrix(
            (np.ones(len(src), dtype=np.int8), (src, tgt)), shape=(n, n)
        )
        num_components, labels = connected_components(graph, directed=False)

        covered = np.zeros(n, dtype=bool)
        covered[indices] = True
        unconstrained = np.flatnonzero(~covered)

        positions = np.flatnonzero(covered)
        pos_labels = labels[positions]
        uniq, first_index, inverse = np.unique(
            pos_labels, return_index=True, return_inverse=True
        )
        # Renumber components so block k is the one whose first covered
        # position is k-th smallest (np.unique sorted by raw label instead).
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[order] = np.arange(len(uniq))
        block_of_position = rank[inverse]

        blocks = _group_by(positions, block_of_position, len(uniq))
        label_to_block = np.full(num_components, -1, dtype=np.int64)
        label_to_block[uniq] = rank
        row_block = label_to_block[labels[heads]]
        query_blocks = _group_by(np.arange(m), row_block, len(uniq))
        return cls(
            n=n,
            blocks=blocks,
            query_blocks=query_blocks,
            unconstrained=unconstrained,
        )

    @classmethod
    def from_labels(
        cls,
        labels: np.ndarray | Sequence[int],
        workload: Workload | Sequence[SubsetQuery],
    ) -> "BlockPartition":
        """Build a partition from caller-supplied per-position block labels.

        Validates that every query's support stays inside one label — a
        query spanning labels would couple the shards and the decomposition
        would be wrong, so that is an error, not a silent merge.  Positions
        touched by no query are reported as unconstrained even if labeled.
        """
        workload = Workload.coerce(workload)
        labels = np.asarray(labels)
        if labels.shape != (workload.n,):
            raise ValueError(
                f"labels must have shape ({workload.n},), got {labels.shape}"
            )
        csr = workload.matrix(sparse=True)
        m, n = csr.shape
        indptr, indices = csr.indptr, csr.indices
        sizes = np.diff(indptr)
        if (sizes == 0).any():
            empty = int(np.flatnonzero(sizes == 0)[0])
            raise ValueError(
                f"query {empty} has empty support and cannot be assigned to a block"
            )
        support_labels = labels[indices]
        row_min = np.minimum.reduceat(support_labels, indptr[:-1])
        row_max = np.maximum.reduceat(support_labels, indptr[:-1])
        if (row_min != row_max).any():
            bad = int(np.flatnonzero(row_min != row_max)[0])
            raise ValueError(f"query {bad} spans multiple blocks")

        covered = np.zeros(n, dtype=bool)
        covered[indices] = True
        unconstrained = np.flatnonzero(~covered)
        positions = np.flatnonzero(covered)
        uniq, inverse = np.unique(labels[positions], return_inverse=True)
        blocks = _group_by(positions, inverse, len(uniq))
        row_block = np.searchsorted(uniq, row_min)
        query_blocks = _group_by(np.arange(m), row_block, len(uniq))
        return cls(
            n=n,
            blocks=blocks,
            query_blocks=query_blocks,
            unconstrained=unconstrained,
        )


def _group_by(
    values: np.ndarray, groups: np.ndarray, num_groups: int
) -> tuple[np.ndarray, ...]:
    """Split sorted ``values`` into per-group arrays (ascending within each)."""
    order = np.argsort(groups, kind="stable")
    counts = np.bincount(groups, minlength=num_groups)
    return tuple(np.split(values[order], np.cumsum(counts)[:-1]))


@dataclass(frozen=True)
class ShardReport:
    """Per-shard decoding bookkeeping."""

    block: int  #: block index within the partition
    size: int  #: positions in the block
    queries: int  #: queries assigned to the block
    max_residual: float  #: max |A x~ - a| of the shard's final bits
    certified: bool  #: l2 candidate passed the feasibility certificate
    escalated: bool  #: the shard was re-solved by the LP decoder


@dataclass(frozen=True)
class ShardedReconstructionResult:
    """Joined outcome of the sharded reconstruction pipeline."""

    reconstruction: np.ndarray
    queries_used: int
    alpha: float  #: certificate bound tested per shard (nan when none)
    shard_reports: tuple[ShardReport, ...]

    @property
    def blocks(self) -> int:
        """Number of shards decoded."""
        return len(self.shard_reports)

    @property
    def certified(self) -> int:
        """Shards whose l2 candidate passed the feasibility certificate."""
        return sum(1 for report in self.shard_reports if report.certified)

    @property
    def escalated(self) -> int:
        """Shards escalated to the LP decoder."""
        return sum(1 for report in self.shard_reports if report.escalated)

    @property
    def escalated_blocks(self) -> tuple[int, ...]:
        """Block indices of the escalated shards."""
        return tuple(r.block for r in self.shard_reports if r.escalated)

    @property
    def max_residual(self) -> float:
        """Worst per-shard residual of the joined reconstruction."""
        return max((r.max_residual for r in self.shard_reports), default=0.0)

    def agreement_with(self, data: np.ndarray) -> float:
        """Fraction of positions where the reconstruction matches ``data``."""
        data = np.asarray(data)
        if data.shape != self.reconstruction.shape:
            raise ValueError("shape mismatch between data and reconstruction")
        return float((self.reconstruction == data).mean())

    def hamming_distance(self, data: np.ndarray) -> int:
        """Number of positions where the reconstruction disagrees with ``data``."""
        return int((np.asarray(data) != self.reconstruction).sum())


class ShardedReconstructor:
    """Decode a transcript block-by-block: l2 fast path, LP on escalation.

    Args:
        alpha: worst-case answer error bound, when known.  Drives both the
            per-shard feasibility certificate and the escalated LP's
            feasibility mode.
        escalate_threshold: residual level above which a shard escalates to
            the LP when no finite ``alpha`` is available (escalated LPs
            then run in least-l1 mode).  With a finite ``alpha`` the
            certificate itself is the threshold.
        escalate: master switch; ``False`` never invokes the LP (pure
            first-order pipeline, used to benchmark the fast path alone).
        reg, max_iters, tol, check_every, lipschitz: forwarded to the l2
            decoder (see :func:`repro.reconstruction.l2_decode.l2_decode`).
        batch_size: how many equal-shape shards decode per batched call.
        dense_limit: shards with ``m * b`` above this stay sparse and
            decode individually instead of joining a dense batch.
        lp_options: solver configuration for escalated LPs.
    """

    def __init__(
        self,
        alpha: float | None = None,
        *,
        escalate_threshold: float | None = None,
        escalate: bool = True,
        reg: float = 0.0,
        max_iters: int = DEFAULT_MAX_ITERS,
        tol: float = DEFAULT_TOL,
        check_every: int = DEFAULT_CHECK_EVERY,
        lipschitz: float | str = "auto",
        batch_size: int = DEFAULT_BATCH_SIZE,
        dense_limit: int = DEFAULT_DENSE_LIMIT,
        lp_options: LpSolverOptions | None = None,
    ):
        if alpha is not None and alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.alpha = None if alpha is None or not np.isfinite(alpha) else float(alpha)
        self.escalate_threshold = (
            None if escalate_threshold is None else float(escalate_threshold)
        )
        self.escalate = bool(escalate)
        self.reg = float(reg)
        self.max_iters = int(max_iters)
        self.tol = float(tol)
        self.check_every = int(check_every)
        self.lipschitz = lipschitz
        self.batch_size = int(batch_size)
        self.dense_limit = int(dense_limit)
        self.lp_options = lp_options

    def _threshold(self) -> float:
        """Residual level beyond which a shard escalates to the LP."""
        if not self.escalate:
            return float("inf")
        if self.alpha is not None:
            return self.alpha
        if self.escalate_threshold is not None:
            return self.escalate_threshold
        return float("inf")

    def reconstruct(
        self,
        workload: Workload | Sequence[SubsetQuery],
        answers: np.ndarray,
        *,
        partition: BlockPartition | None = None,
        jobs: int | None = 1,
        backend: str = "auto",
        seed: RngSeed = 0,
    ) -> ShardedReconstructionResult:
        """Decode ``(workload, answers)`` shard-by-shard and join the bits.

        Args:
            workload: the attacked workload (cached CSR assembly reused).
            answers: released answers aligned with the workload rows.
            partition: block structure; discovered from the query support
                (:meth:`BlockPartition.from_workload`) when omitted.
            jobs: worker count for shard dispatch (see
                :func:`repro.utils.parallel.parallel_map`).
            backend: parallel backend name.
            seed: master seed for the per-shard sub-streams (only consumed
                when ``lipschitz="power"``; the default path is
                deterministic without randomness).

        Returns:
            The joined reconstruction plus per-shard reports (sorted by
            block index).  Bit-identical across ``jobs`` settings.
        """
        workload = Workload.coerce(workload)
        answers = np.asarray(answers, dtype=float)
        if answers.shape != (len(workload),):
            raise ValueError("answers must align with the query list")
        if partition is None:
            partition = BlockPartition.from_workload(workload)
        elif partition.n != workload.n:
            raise ValueError(
                f"partition addresses n={partition.n}, workload has n={workload.n}"
            )
        csr = workload.matrix(sparse=True)

        tasks = self._build_tasks(partition)
        weights = [
            sum(
                len(partition.query_blocks[i]) * len(partition.blocks[i])
                for i in task
            )
            for task in tasks
        ]
        worker = self._make_worker(csr, answers, partition, seed)
        shard_outputs = parallel_map(
            worker, tasks, jobs=jobs, backend=backend, weights=weights
        )

        reconstruction = np.zeros(partition.n, dtype=np.int64)
        reports: list[ShardReport] = []
        for task_output in shard_outputs:
            for block_index, bits, report in task_output:
                reconstruction[partition.blocks[block_index]] = bits
                reports.append(report)
        reports.sort(key=lambda report: report.block)
        return ShardedReconstructionResult(
            reconstruction=reconstruction,
            queries_used=len(workload),
            alpha=float("nan") if self.alpha is None else self.alpha,
            shard_reports=tuple(reports),
        )

    def _build_tasks(self, partition: BlockPartition) -> list[list[int]]:
        """Group shard indices into decode tasks.

        Equal-shape small shards are grouped into batches of
        ``batch_size`` (in block order) for the batched dense decoder;
        oversized shards become singleton tasks on the sparse path.  The
        grouping is a pure function of the partition, never of ``jobs``.
        """
        tasks: list[list[int]] = []
        pending: dict[tuple[int, int], list[int]] = {}
        pending_order: list[tuple[int, int]] = []
        for index in range(partition.num_blocks):
            shape = (
                len(partition.query_blocks[index]),
                len(partition.blocks[index]),
            )
            if shape[0] == 0 or shape[0] * shape[1] > self.dense_limit:
                tasks.append([index])
                continue
            if shape not in pending:
                pending[shape] = []
                pending_order.append(shape)
            pending[shape].append(index)
            if len(pending[shape]) == self.batch_size:
                tasks.append(pending.pop(shape))
                pending_order.remove(shape)
        for shape in pending_order:
            tasks.append(pending[shape])
        return tasks

    def _make_worker(
        self,
        csr: scipy.sparse.csr_matrix,
        answers: np.ndarray,
        partition: BlockPartition,
        seed: RngSeed,
    ) -> Callable[[list[int]], list]:
        """Bind the shared inputs into the per-task work function.

        The closure crosses the process boundary by fork inheritance (see
        :mod:`repro.utils.parallel`), so the full CSR is never pickled.
        """

        def decode_task(task: list[int]) -> list:
            if len(task) == 1:
                return [self._decode_single(csr, answers, partition, task[0], seed)]
            return self._decode_batch(csr, answers, partition, task)

        return decode_task

    def _shard_system(
        self,
        csr: scipy.sparse.csr_matrix,
        answers: np.ndarray,
        partition: BlockPartition,
        index: int,
    ) -> tuple[scipy.sparse.csr_matrix, np.ndarray]:
        rows = partition.query_blocks[index]
        cols = partition.blocks[index]
        return csr[rows][:, cols], answers[rows]

    def _decode_single(
        self,
        csr: scipy.sparse.csr_matrix,
        answers: np.ndarray,
        partition: BlockPartition,
        index: int,
        seed: RngSeed,
    ) -> tuple[int, np.ndarray, ShardReport]:
        """Decode one shard on the sparse l2 path, escalating if needed."""
        matrix, shard_answers = self._shard_system(csr, answers, partition, index)
        if matrix.shape[0] == 0:
            # No query touches the block alone — cannot happen for
            # discovered partitions, but a caller-supplied one may isolate
            # an unqueried label; the uninformative answer is all zeros.
            bits = np.zeros(matrix.shape[1], dtype=np.int64)
            report = ShardReport(
                block=index,
                size=matrix.shape[1],
                queries=0,
                max_residual=0.0,
                certified=False,
                escalated=False,
            )
            return index, bits, report
        shard_workload = Workload.from_csr(matrix, copy=False)
        result = l2_decode(
            shard_workload,
            shard_answers,
            self.alpha,
            reg=self.reg,
            max_iters=self.max_iters,
            tol=self.tol,
            check_every=self.check_every,
            lipschitz=self.lipschitz,
            rng=_shard_seed(seed, index),
        )
        bits = result.reconstruction
        max_residual = result.max_residual
        escalated = max_residual > self._threshold()
        if escalated:
            lp = reconstruct_from_answers(
                shard_workload,
                shard_answers,
                alpha=self.alpha,
                warm_start=result.fractional,
                options=self.lp_options,
            )
            bits = lp.reconstruction
            max_residual = float(
                np.max(np.abs(matrix @ bits.astype(np.float64) - shard_answers))
            )
        report = ShardReport(
            block=index,
            size=len(bits),
            queries=matrix.shape[0],
            max_residual=max_residual,
            certified=result.certified,
            escalated=escalated,
        )
        return index, bits, report

    def _decode_batch(
        self,
        csr: scipy.sparse.csr_matrix,
        answers: np.ndarray,
        partition: BlockPartition,
        task: list[int],
    ) -> list[tuple[int, np.ndarray, ShardReport]]:
        """Decode a batch of equal-shape shards with one einsum iteration."""
        systems = []
        answer_rows = []
        for index in task:
            matrix, shard_answers = self._shard_system(csr, answers, partition, index)
            systems.append(matrix.toarray())
            answer_rows.append(shard_answers)
        stacked = np.stack(systems)
        stacked_answers = np.stack(answer_rows)
        bits, fractional, residuals = l2_decode_batch(
            stacked,
            stacked_answers,
            self.alpha,
            reg=self.reg,
            max_iters=self.max_iters,
            tol=self.tol,
            check_every=self.check_every,
        )
        threshold = self._threshold()
        outputs = []
        for j, index in enumerate(task):
            shard_bits = bits[j]
            max_residual = float(residuals[j])
            certified = self.alpha is not None and max_residual <= self.alpha
            escalated = max_residual > threshold
            if escalated:
                shard_workload = Workload.from_csr(
                    scipy.sparse.csr_matrix(stacked[j]), copy=False
                )
                lp = reconstruct_from_answers(
                    shard_workload,
                    stacked_answers[j],
                    alpha=self.alpha,
                    warm_start=fractional[j],
                    options=self.lp_options,
                )
                shard_bits = lp.reconstruction
                max_residual = float(
                    np.max(
                        np.abs(
                            stacked[j] @ shard_bits.astype(np.float64)
                            - stacked_answers[j]
                        )
                    )
                )
            outputs.append(
                (
                    index,
                    shard_bits,
                    ShardReport(
                        block=index,
                        size=len(shard_bits),
                        queries=stacked.shape[1],
                        max_residual=max_residual,
                        certified=certified,
                        escalated=escalated,
                    ),
                )
            )
        return outputs


def _shard_seed(seed: RngSeed, index: int) -> RngSeed:
    """Deterministic per-shard sub-stream: a function of (seed, index) only."""
    return derive_rng(seed, "shard", index)
