"""Database reconstruction attacks.

The paper's title phenomenon: Section 1 recounts the Dinur-Nissim result
(Theorem 1.1) that a mechanism answering subset-count queries on
``x in {0,1}^n`` is *blatantly non-private* — an attacker reconstructs a
vector agreeing with ``x`` on 95%+ of entries — unless the noise is at
least ~sqrt(n) or the number of queries is curtailed; and the 2010 Census
reconstruction, where published marginal tables were inverted back into
person-level records.

* :mod:`repro.reconstruction.dinur_nissim` — the exponential attack
  (all ``2^n`` queries, noise up to ``c*n``).
* :mod:`repro.reconstruction.lp_decode` — the polynomial attack (LP
  decoding of ``O(n)`` random queries, noise up to ``c'*sqrt(n)``).
* :mod:`repro.reconstruction.l2_decode` — the first-order least-squares
  fast path (KRS-style projection + rounding; no LP).
* :mod:`repro.reconstruction.sharding` — census-scale decomposition into
  per-block shards: l2 by default, per-shard LP escalation, parallel
  dispatch, deterministic join.
* :mod:`repro.reconstruction.tabulation` — the census-style table system
  published per block.
* :mod:`repro.reconstruction.census_solver` — inverting the tables back
  into microdata and scoring exact-match and re-identification rates.
"""

from repro.reconstruction.dinur_nissim import (
    ExhaustiveReconstructionResult,
    exhaustive_reconstruction,
)
from repro.reconstruction.lp_decode import (
    LpReconstructionResult,
    LpSolverOptions,
    lp_reconstruction,
    reconstruct_from_answers,
    solve_least_l1,
)
from repro.reconstruction.l2_decode import (
    L2ReconstructionResult,
    l2_decode,
    l2_decode_batch,
)
from repro.reconstruction.sharding import (
    BlockPartition,
    ShardedReconstructionResult,
    ShardedReconstructor,
    ShardReport,
)
from repro.reconstruction.tabulation import BlockTables, tabulate_blocks
from repro.reconstruction.census_solver import (
    CensusReconstructionResult,
    reconstruct_census,
    reidentify,
    reidentify_records,
)

__all__ = [
    "BlockPartition",
    "BlockTables",
    "CensusReconstructionResult",
    "ExhaustiveReconstructionResult",
    "L2ReconstructionResult",
    "LpReconstructionResult",
    "LpSolverOptions",
    "ShardReport",
    "ShardedReconstructionResult",
    "ShardedReconstructor",
    "exhaustive_reconstruction",
    "l2_decode",
    "l2_decode_batch",
    "lp_reconstruction",
    "reconstruct_census",
    "reconstruct_from_answers",
    "reidentify",
    "reidentify_records",
    "solve_least_l1",
    "tabulate_blocks",
]
