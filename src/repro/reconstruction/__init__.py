"""Database reconstruction attacks.

The paper's title phenomenon: Section 1 recounts the Dinur-Nissim result
(Theorem 1.1) that a mechanism answering subset-count queries on
``x in {0,1}^n`` is *blatantly non-private* — an attacker reconstructs a
vector agreeing with ``x`` on 95%+ of entries — unless the noise is at
least ~sqrt(n) or the number of queries is curtailed; and the 2010 Census
reconstruction, where published marginal tables were inverted back into
person-level records.

* :mod:`repro.reconstruction.dinur_nissim` — the exponential attack
  (all ``2^n`` queries, noise up to ``c*n``).
* :mod:`repro.reconstruction.lp_decode` — the polynomial attack (LP
  decoding of ``O(n)`` random queries, noise up to ``c'*sqrt(n)``).
* :mod:`repro.reconstruction.tabulation` — the census-style table system
  published per block.
* :mod:`repro.reconstruction.census_solver` — inverting the tables back
  into microdata and scoring exact-match and re-identification rates.
"""

from repro.reconstruction.dinur_nissim import (
    ExhaustiveReconstructionResult,
    exhaustive_reconstruction,
)
from repro.reconstruction.lp_decode import (
    LpReconstructionResult,
    lp_reconstruction,
    solve_least_l1,
)
from repro.reconstruction.tabulation import BlockTables, tabulate_blocks
from repro.reconstruction.census_solver import (
    CensusReconstructionResult,
    reconstruct_census,
    reidentify,
    reidentify_records,
)

__all__ = [
    "BlockTables",
    "CensusReconstructionResult",
    "ExhaustiveReconstructionResult",
    "LpReconstructionResult",
    "exhaustive_reconstruction",
    "lp_reconstruction",
    "reconstruct_census",
    "reidentify",
    "reidentify_records",
    "solve_least_l1",
    "tabulate_blocks",
]
