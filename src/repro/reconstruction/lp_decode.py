"""The polynomial-time LP-decoding reconstruction attack — Theorem 1.1(ii).

Setting: the attacker asks ``m = O(n)`` *random* subset queries answered
within error ``alpha = c' * sqrt(n)`` and solves a linear program for a
fractional candidate ``z in [0,1]^n`` consistent with the answers, then
rounds.  Dinur-Nissim showed the rounded vector disagrees with the truth on
``o(n)`` positions; later work ([18, 21, 31] in the paper) sharpened the
constants and connected it to LP decoding of error-correcting codes.

Two solver modes are provided:

* **feasibility** — when a worst-case error bound ``alpha`` is known, find
  any ``z`` with ``|<q, z> - a_q| <= alpha`` for every query (the classical
  attack).
* **least-l1** — when noise is unbounded (e.g. a Laplace answerer),
  minimize the total L1 residual instead; this is the robust variant used
  in practice (cf. "Linear Program Reconstruction in Practice" [13]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.queries.mechanism import QueryAnswerer
from repro.queries.query import SubsetQuery, queries_to_matrix
from repro.queries.workload import random_subset_queries
from repro.utils.rng import RngSeed, ensure_rng


@dataclass(frozen=True)
class LpReconstructionResult:
    """Outcome of the LP-decoding attack.

    Attributes:
        reconstruction: the rounded candidate ``x~ in {0,1}^n``.
        fractional: the LP solution before rounding.
        queries_used: size of the random workload.
        alpha: the error bound assumed (``nan`` in least-l1 mode).
        mode: ``"feasibility"`` or ``"least-l1"``.
    """

    reconstruction: np.ndarray
    fractional: np.ndarray
    queries_used: int
    alpha: float
    mode: str

    def agreement_with(self, data: np.ndarray) -> float:
        """Fraction of positions where the reconstruction matches ``data``."""
        data = np.asarray(data)
        if data.shape != self.reconstruction.shape:
            raise ValueError("shape mismatch between data and reconstruction")
        return float((self.reconstruction == data).mean())

    def hamming_distance(self, data: np.ndarray) -> int:
        """Number of positions where the reconstruction disagrees with ``data``."""
        return int((np.asarray(data) != self.reconstruction).sum())


def lp_reconstruction(
    answerer: QueryAnswerer,
    num_queries: int | None = None,
    alpha: float | None = None,
    mode: str = "auto",
    density: float = 0.5,
    rng: RngSeed = None,
) -> LpReconstructionResult:
    """Run the Theorem 1.1(ii) attack against ``answerer``.

    Args:
        answerer: mechanism under attack.
        num_queries: workload size; defaults to ``8 * n`` random subsets,
            comfortably in the regime where LP decoding succeeds.
        alpha: consistency slack for feasibility mode; defaults to the
            answerer's declared error bound.
        mode: ``"feasibility"``, ``"least-l1"``, or ``"auto"`` (feasibility
            when a finite error bound is available, least-l1 otherwise).
        density: per-position inclusion probability of the random subsets.
        rng: randomness for the workload.

    Returns:
        The rounded reconstruction with bookkeeping.
    """
    n = answerer.n
    if num_queries is None:
        num_queries = 8 * n
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")

    if mode == "auto":
        bound = answerer.error_bound if alpha is None else alpha
        mode = "feasibility" if np.isfinite(bound) else "least-l1"
    if mode not in ("feasibility", "least-l1"):
        raise ValueError(f"unknown mode: {mode!r}")

    generator = ensure_rng(rng)
    queries = random_subset_queries(n, num_queries, density=density, rng=generator)
    answers = answerer.answer_all(queries)
    matrix = queries_to_matrix(queries)

    if mode == "feasibility":
        if alpha is None:
            alpha = answerer.error_bound
        if not np.isfinite(alpha):
            raise ValueError("feasibility mode needs a finite alpha")
        fractional = _solve_feasibility(matrix, answers, float(alpha))
        used_alpha = float(alpha)
    else:
        fractional = _solve_least_l1(matrix, answers)
        used_alpha = float("nan")

    reconstruction = (fractional >= 0.5).astype(np.int64)
    return LpReconstructionResult(
        reconstruction=reconstruction,
        fractional=fractional,
        queries_used=len(queries),
        alpha=used_alpha,
        mode=mode,
    )


def reconstruct_from_answers(
    queries: Sequence[SubsetQuery],
    answers: np.ndarray,
    alpha: float | None = None,
) -> LpReconstructionResult:
    """LP-decode a pre-collected (workload, answers) transcript.

    Used when the attack must replay recorded interaction (e.g. attacking a
    mechanism that limits each caller's query budget).
    """
    answers = np.asarray(answers, dtype=float)
    if answers.shape != (len(queries),):
        raise ValueError("answers must align with the query list")
    matrix = queries_to_matrix(list(queries))
    if alpha is not None and np.isfinite(alpha):
        fractional = _solve_feasibility(matrix, answers, float(alpha))
        mode, used_alpha = "feasibility", float(alpha)
    else:
        fractional = _solve_least_l1(matrix, answers)
        mode, used_alpha = "least-l1", float("nan")
    return LpReconstructionResult(
        reconstruction=(fractional >= 0.5).astype(np.int64),
        fractional=fractional,
        queries_used=len(queries),
        alpha=used_alpha,
        mode=mode,
    )


def _solve_feasibility(matrix: np.ndarray, answers: np.ndarray, alpha: float) -> np.ndarray:
    """Find z in [0,1]^n with |A z - a| <= alpha (elementwise).

    Encoded as a linear program with zero objective; when the LP is
    infeasible at the stated alpha (an answerer lying about its accuracy)
    we retry in least-l1 mode so the attack degrades gracefully.
    """
    m, n = matrix.shape
    # Constraints: A z <= a + alpha  and  -A z <= -(a - alpha).
    a_ub = np.vstack([matrix, -matrix])
    b_ub = np.concatenate([answers + alpha, -(answers - alpha)])
    result = linprog(
        c=np.zeros(n),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if not result.success:
        return _solve_least_l1(matrix, answers)
    return np.clip(result.x, 0.0, 1.0)


def _solve_least_l1(matrix: np.ndarray, answers: np.ndarray) -> np.ndarray:
    """Minimize ||A z - a||_1 over z in [0,1]^n via the standard LP lift.

    Variables are (z, t) with -t <= A z - a <= t and objective sum(t).
    """
    m, n = matrix.shape
    # Objective: 0 * z + 1 * t.
    c = np.concatenate([np.zeros(n), np.ones(m)])
    # A z - t <= a  and  -A z - t <= -a.
    identity = np.eye(m)
    a_ub = np.vstack(
        [
            np.hstack([matrix, -identity]),
            np.hstack([-matrix, -identity]),
        ]
    )
    b_ub = np.concatenate([answers, -answers])
    bounds = [(0.0, 1.0)] * n + [(0.0, None)] * m
    result = linprog(c=c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    return np.clip(result.x[:n], 0.0, 1.0)
