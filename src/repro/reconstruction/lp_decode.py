"""The polynomial-time LP-decoding reconstruction attack — Theorem 1.1(ii).

Setting: the attacker asks ``m = O(n)`` *random* subset queries answered
within error ``alpha = c' * sqrt(n)`` and solves a linear program for a
fractional candidate ``z in [0,1]^n`` consistent with the answers, then
rounds.  Dinur-Nissim showed the rounded vector disagrees with the truth on
``o(n)`` positions; later work ([18, 21, 31] in the paper) sharpened the
constants and connected it to LP decoding of error-correcting codes.

Two solver modes are provided:

* **feasibility** — when a worst-case error bound ``alpha`` is known, find
  any ``z`` with ``|<q, z> - a_q| <= alpha`` for every query (the classical
  attack).
* **least-l1** — when noise is unbounded (e.g. a Laplace answerer),
  minimize the total L1 residual instead; this is the robust variant used
  in practice (cf. "Linear Program Reconstruction in Practice" [13]).

The constraint system is assembled in CSR sparse form from a packed
:class:`~repro.queries.workload.Workload` (never as a dense float64 block),
and one assembled workload is shared across the feasibility solve, its
least-l1 fallback, and any repeated attacks on the same query set.  With a
sparse workload (``density ~ 64/n``) and the interior-point solver the
attack scales to ``n = 4096`` and beyond on one core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse
from scipy.optimize import linprog

from repro.queries.mechanism import QueryAnswerer
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.utils.rng import RngSeed, ensure_rng

#: Default HiGHS algorithm for the decoding LPs.  Interior point beats dual
#: simplex by ~10x on these wide, degenerate systems (zero/uniform objective,
#: massive feasible sets); pass ``solver="highs"`` to let HiGHS pick simplex.
DEFAULT_LP_SOLVER = "highs-ipm"


@dataclass(frozen=True)
class LpSolverOptions:
    """Solver configuration for the decoding LPs.

    Collected in one place so callers (the sharded pipeline, the service
    auditor, the benchmarks) can tune the solve without every function in
    the chain growing another keyword:

    Attributes:
        method: the :func:`scipy.optimize.linprog` method (a HiGHS
            algorithm name, e.g. ``"highs-ipm"``, ``"highs-ds"``,
            ``"highs"``).
        presolve: whether HiGHS runs its presolve reductions.
        time_limit: wall-clock budget in seconds for one solve (``None``
            for unlimited).  A timed-out solve reports failure, which the
            feasibility path degrades to least-l1 and other callers see as
            :class:`RuntimeError` — no silent partial answers.
    """

    method: str = DEFAULT_LP_SOLVER
    presolve: bool = True
    time_limit: float | None = None

    def __post_init__(self):
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {self.time_limit}")

    def linprog_kwargs(self) -> dict:
        """The ``method=`` / ``options=`` pair to splat into ``linprog``."""
        options: dict = {"presolve": bool(self.presolve)}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        return {"method": self.method, "options": options}


def _resolve_options(
    solver: str | None, options: LpSolverOptions | None
) -> LpSolverOptions:
    """Merge the legacy ``solver=`` knob with an options object.

    ``solver`` predates :class:`LpSolverOptions` and remains supported
    everywhere; an explicit ``options`` wins, a bare ``solver`` string is
    wrapped, and neither means defaults.
    """
    if options is not None:
        return options
    if solver is not None and solver != DEFAULT_LP_SOLVER:
        return LpSolverOptions(method=solver)
    return LpSolverOptions()


@dataclass(frozen=True)
class LpReconstructionResult:
    """Outcome of the LP-decoding attack.

    Attributes:
        reconstruction: the rounded candidate ``x~ in {0,1}^n``.
        fractional: the LP solution before rounding.
        queries_used: size of the random workload.
        alpha: the error bound assumed (``nan`` in least-l1 mode).
        mode: ``"feasibility"`` or ``"least-l1"``.
    """

    reconstruction: np.ndarray
    fractional: np.ndarray
    queries_used: int
    alpha: float
    mode: str

    def agreement_with(self, data: np.ndarray) -> float:
        """Fraction of positions where the reconstruction matches ``data``."""
        data = np.asarray(data)
        if data.shape != self.reconstruction.shape:
            raise ValueError("shape mismatch between data and reconstruction")
        return float((self.reconstruction == data).mean())

    def hamming_distance(self, data: np.ndarray) -> int:
        """Number of positions where the reconstruction disagrees with ``data``."""
        return int((np.asarray(data) != self.reconstruction).sum())


def lp_reconstruction(
    answerer: QueryAnswerer,
    num_queries: int | None = None,
    alpha: float | None = None,
    mode: str = "auto",
    density: float = 0.5,
    rng: RngSeed = None,
    workload: Workload | None = None,
    solver: str | None = None,
    warm_start: np.ndarray | None = None,
    options: LpSolverOptions | None = None,
) -> LpReconstructionResult:
    """Run the Theorem 1.1(ii) attack against ``answerer``.

    Args:
        answerer: mechanism under attack.
        num_queries: workload size; defaults to ``8 * n`` random subsets,
            comfortably in the regime where LP decoding succeeds.
        alpha: consistency slack for feasibility mode; defaults to the
            answerer's declared error bound.
        mode: ``"feasibility"``, ``"least-l1"``, or ``"auto"`` (feasibility
            when a finite error bound is available, least-l1 otherwise).
        density: per-position inclusion probability of the random subsets.
            Lower densities (e.g. ``64 / n``) keep the constraint matrix
            genuinely sparse and are how the attack runs at large ``n``.
        rng: randomness for the workload.
        workload: a pre-built workload to attack with, reusing its cached
            sparse assembly; overrides ``num_queries``/``density``/``rng``.
        solver: HiGHS algorithm passed to :func:`scipy.optimize.linprog`
            (legacy knob; superseded by ``options``).
        warm_start: a candidate point in ``[0, 1]^n`` (typically the
            fractional iterate of :func:`repro.reconstruction.l2_decode.
            l2_decode`).  In feasibility mode a warm start that already
            satisfies every constraint is returned without invoking the
            solver at all — checking the certificate is one matvec.
        options: full solver configuration (:class:`LpSolverOptions`).

    Returns:
        The rounded reconstruction with bookkeeping.
    """
    n = answerer.n
    if workload is None:
        if num_queries is None:
            num_queries = 8 * n
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        generator = ensure_rng(rng)
        workload = Workload.random(n, num_queries, density=density, rng=generator)
    elif workload.n != n:
        raise ValueError(f"workload addresses n={workload.n}, answerer has n={n}")

    if mode == "auto":
        bound = answerer.error_bound if alpha is None else alpha
        mode = "feasibility" if np.isfinite(bound) else "least-l1"
    if mode not in ("feasibility", "least-l1"):
        raise ValueError(f"unknown mode: {mode!r}")

    answers = answerer.answer_workload(workload)
    matrix = workload.matrix(sparse=True)
    resolved = _resolve_options(solver, options)

    if mode == "feasibility":
        if alpha is None:
            alpha = answerer.error_bound
        if not np.isfinite(alpha):
            raise ValueError("feasibility mode needs a finite alpha")
        fractional = _solve_feasibility(
            matrix, answers, float(alpha), resolved, warm_start
        )
        used_alpha = float(alpha)
    else:
        fractional = _solve_least_l1(matrix, answers, resolved)
        used_alpha = float("nan")

    reconstruction = (fractional >= 0.5).astype(np.int64)
    return LpReconstructionResult(
        reconstruction=reconstruction,
        fractional=fractional,
        queries_used=len(workload),
        alpha=used_alpha,
        mode=mode,
    )


def reconstruct_from_answers(
    queries: Workload | Sequence[SubsetQuery],
    answers: np.ndarray,
    alpha: float | None = None,
    solver: str | None = None,
    warm_start: np.ndarray | None = None,
    options: LpSolverOptions | None = None,
) -> LpReconstructionResult:
    """LP-decode a pre-collected (workload, answers) transcript.

    Used when the attack must replay recorded interaction (e.g. attacking a
    mechanism that limits each caller's query budget), and by the
    experiments to reuse one workload — and its one-time sparse assembly —
    across whole noise sweeps.  ``warm_start`` and ``options`` behave as in
    :func:`lp_reconstruction`; the sharded pipeline escalates failed l2
    shards through here with the l2 fractional iterate as the warm start.
    """
    workload = Workload.coerce(queries)
    answers = np.asarray(answers, dtype=float)
    if answers.shape != (len(workload),):
        raise ValueError("answers must align with the query list")
    matrix = workload.matrix(sparse=True)
    resolved = _resolve_options(solver, options)
    if alpha is not None and np.isfinite(alpha):
        fractional = _solve_feasibility(
            matrix, answers, float(alpha), resolved, warm_start
        )
        mode, used_alpha = "feasibility", float(alpha)
    else:
        fractional = _solve_least_l1(matrix, answers, resolved)
        mode, used_alpha = "least-l1", float("nan")
    return LpReconstructionResult(
        reconstruction=(fractional >= 0.5).astype(np.int64),
        fractional=fractional,
        queries_used=len(workload),
        alpha=used_alpha,
        mode=mode,
    )


def _validated_warm_start(warm_start, n: int) -> np.ndarray | None:
    if warm_start is None:
        return None
    candidate = np.asarray(warm_start, dtype=float)
    if candidate.shape != (n,):
        raise ValueError(f"warm_start has shape {candidate.shape}, expected ({n},)")
    return np.clip(candidate, 0.0, 1.0)


def _solve_feasibility(
    matrix,
    answers: np.ndarray,
    alpha: float,
    options: LpSolverOptions | None = None,
    warm_start: np.ndarray | None = None,
) -> np.ndarray:
    """Find z in [0,1]^n with |A z - a| <= alpha (elementwise).

    Encoded as a linear program with zero objective; ``matrix`` may be dense
    or CSR sparse — the stacked [A; -A] constraint block stays in the same
    format.  A ``warm_start`` that already meets every constraint *is* a
    solution of this zero-objective program, so it is returned after a
    single certifying matvec.  When the LP is infeasible at the stated
    alpha (an answerer lying about its accuracy) we retry in least-l1 mode
    so the attack degrades gracefully.
    """
    options = options or LpSolverOptions()
    m, n = matrix.shape
    candidate = _validated_warm_start(warm_start, n)
    if candidate is not None:
        if float(np.max(np.abs(matrix @ candidate - answers))) <= alpha:
            return candidate
    # Constraints: A z <= a + alpha  and  -A z <= -(a - alpha).
    if scipy.sparse.issparse(matrix):
        a_ub = scipy.sparse.vstack([matrix, -matrix], format="csr")
    else:
        a_ub = np.vstack([matrix, -matrix])
    b_ub = np.concatenate([answers + alpha, -(answers - alpha)])
    result = linprog(
        c=np.zeros(n),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n,
        **options.linprog_kwargs(),
    )
    if not result.success:
        return _solve_least_l1(matrix, answers, options)
    return np.clip(result.x, 0.0, 1.0)


def _solve_least_l1(
    matrix, answers: np.ndarray, options: LpSolverOptions | None = None
) -> np.ndarray:
    """Minimize ||A z - a||_1 over z in [0,1]^n via the standard LP lift."""
    return solve_least_l1(matrix, answers, options=options)


def solve_least_l1(
    matrix,
    targets: np.ndarray,
    *,
    lower: float = 0.0,
    upper: float | None = 1.0,
    solver: str | None = None,
    options: LpSolverOptions | None = None,
) -> np.ndarray:
    """Minimize ``||A z - a||_1`` over box-bounded ``z`` via the LP lift.

    Variables are (z, t) with -t <= A z - a <= t and objective sum(t);
    ``matrix`` may be dense or CSR sparse, and the lifted block matrix is
    assembled in the matching format.  The decoding attacks use the default
    ``[0, 1]`` box (``z`` is a candidate bit vector); DP post-processing
    (:mod:`repro.synth.hierarchical`) reuses the same solve with
    ``upper=None`` to fit non-negative count vectors to noisy tables.
    """
    options = _resolve_options(solver, options)
    answers = np.asarray(targets, dtype=float)
    m, n = matrix.shape
    if answers.shape != (m,):
        raise ValueError(f"targets have shape {answers.shape}, expected ({m},)")
    if upper is not None and upper < lower:
        raise ValueError(f"empty box: lower={lower}, upper={upper}")
    # Objective: 0 * z + 1 * t.
    c = np.concatenate([np.zeros(n), np.ones(m)])
    # A z - t <= a  and  -A z - t <= -a.
    if scipy.sparse.issparse(matrix):
        identity = scipy.sparse.identity(m, format="csr")
        a_ub = scipy.sparse.bmat(
            [[matrix, -identity], [-matrix, -identity]], format="csr"
        )
    else:
        identity = np.eye(m)
        a_ub = np.vstack(
            [
                np.hstack([matrix, -identity]),
                np.hstack([-matrix, -identity]),
            ]
        )
    b_ub = np.concatenate([answers, -answers])
    bounds = [(lower, upper)] * n + [(0.0, None)] * m
    result = linprog(c=c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, **options.linprog_kwargs())
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    if upper is None:
        return np.maximum(result.x[:n], lower)
    return np.clip(result.x[:n], lower, upper)
