"""The exponential Dinur-Nissim reconstruction attack — Theorem 1.1(i).

Setting: the attacker asks *all* ``2^n - 1`` non-empty subset queries and
receives answers within worst-case error ``alpha``.  The attack then outputs
any candidate ``x~ in {0,1}^n`` consistent with every answer (one always
exists: the true data).  The classical argument shows any such candidate
disagrees with the truth on at most ``4 * alpha`` positions: the positions
where ``x~`` wrongly says 1 form a query whose answers for ``x`` and ``x~``
differ by the number of errors yet must both be ``alpha``-close to the same
released value, and symmetrically for wrong 0s.

So with ``alpha = c*n`` for small ``c`` the attacker reconstructs all but a
``4c`` fraction — "blatant non-privacy" when ``4c <= 5%``.

The candidate search is exponential (that is the theorem's point); we
vectorize it with ``numpy.bitwise_count`` so ``n <= 16`` is practical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queries.mechanism import QueryAnswerer
from repro.queries.workload import Workload

#: Hard cap: the candidate x answer table is O(4^n) work.
MAX_EXHAUSTIVE_N = 16

#: Memory ceiling for the vectorized candidate scan: candidates are checked
#: in batches of at most ``_SCAN_CELLS // masks.size`` rows, so the
#: (batch x queries) uint32 work matrix stays around 16 MiB at n = 16.
_SCAN_CELLS = 1 << 22


def _bit_matrix(values: np.ndarray, width: int) -> np.ndarray:
    """Little-endian bit expansion: row ``i`` holds the bits of ``values[i]``.

    A single broadcasted shift-and-mask (the ``np.unpackbits`` idiom for
    non-uint8 widths) replacing the per-value Python bit comprehensions.
    """
    values = np.asarray(values, dtype=np.int64)
    return ((values[:, None] >> np.arange(width)) & 1).astype(np.uint8)


def _scan_candidates(
    candidates: np.ndarray, masks: np.ndarray, answers: np.ndarray, alpha: float
):
    """Yield ``(candidate_position, candidate)`` for every consistent candidate.

    Vectorized: each batch ANDs all candidates against all query masks at
    once and popcounts the matrix (``np.bitwise_count``), so no Python-level
    per-candidate loop survives.  Batches keep peak memory bounded by
    :data:`_SCAN_CELLS` cells.
    """
    batch = max(1, _SCAN_CELLS // max(1, masks.size))
    tolerance = alpha + 1e-9
    for start in range(0, candidates.size, batch):
        chunk = candidates[start : start + batch]
        counts = np.bitwise_count(masks[None, :] & chunk[:, None])
        consistent = np.all(np.abs(answers[None, :] - counts) <= tolerance, axis=1)
        for offset in np.flatnonzero(consistent):
            yield start + int(offset), chunk[offset]


def _ask_all_subset_queries(answerer: QueryAnswerer, n: int) -> tuple[np.ndarray, np.ndarray]:
    """All ``2^n - 1`` subset-query masks and the answerer's responses.

    The whole exponential workload goes through the batched
    ``answer_workload`` path: one sparse matvec for the true counts, one
    vectorized noise draw, ``queries_answered`` advanced by ``2^n - 1`` —
    bit-identical to the old per-query loop but without 2^n Python calls.
    """
    masks = np.arange(1, 2**n, dtype=np.uint32)
    workload = Workload(_bit_matrix(masks, n).astype(bool), copy=False)
    answers = answerer.answer_workload(workload)
    return masks, answers


@dataclass(frozen=True)
class ExhaustiveReconstructionResult:
    """Outcome of the exhaustive attack.

    Attributes:
        reconstruction: the candidate ``x~`` the attacker output.
        queries_used: number of queries issued (``2^n - 1``).
        candidates_checked: how many candidate vectors were tested before a
            consistent one was found.
        alpha: the error bound the attacker assumed.
    """

    reconstruction: np.ndarray
    queries_used: int
    candidates_checked: int
    alpha: float

    def agreement_with(self, data: np.ndarray) -> float:
        """Fraction of positions where the reconstruction matches ``data``."""
        data = np.asarray(data)
        if data.shape != self.reconstruction.shape:
            raise ValueError("shape mismatch between data and reconstruction")
        return float((self.reconstruction == data).mean())

    def hamming_distance(self, data: np.ndarray) -> int:
        """Number of positions where the reconstruction disagrees with ``data``."""
        data = np.asarray(data)
        return int((self.reconstruction != data).sum())


def exhaustive_reconstruction(
    answerer: QueryAnswerer,
    alpha: float | None = None,
    candidate_order: str = "ascending",
) -> ExhaustiveReconstructionResult:
    """Run the Theorem 1.1(i) attack against ``answerer``.

    Args:
        answerer: the mechanism under attack; its dataset size ``n`` must be
            at most :data:`MAX_EXHAUSTIVE_N`.
        alpha: the consistency slack.  Defaults to the answerer's declared
            ``error_bound`` (the attacker knows the accuracy guarantee).
        candidate_order: ``"ascending"`` enumerates candidates as integers
            0, 1, 2, ...; ``"descending"`` from ``2^n - 1`` down.  Exposed so
            tests can verify the *set* of consistent candidates is a small
            Hamming ball regardless of which member is returned.

    Returns:
        The first consistent candidate found, with bookkeeping.

    Raises:
        ValueError: for oversized ``n``, an unbounded-error answerer with no
            explicit ``alpha``, or (impossibly, given the accuracy model) no
            consistent candidate.
    """
    n = answerer.n
    if n > MAX_EXHAUSTIVE_N:
        raise ValueError(
            f"exhaustive attack is 4^n work; n={n} exceeds the cap "
            f"{MAX_EXHAUSTIVE_N}"
        )
    if alpha is None:
        alpha = answerer.error_bound
    if not np.isfinite(alpha):
        raise ValueError(
            "answerer has unbounded error; pass an explicit alpha to attack it"
        )

    # Ask every non-empty subset query, indexed by its bitmask.
    masks, answers = _ask_all_subset_queries(answerer, n)

    candidates = np.arange(2**n, dtype=np.uint32)
    if candidate_order == "descending":
        candidates = candidates[::-1]
    elif candidate_order != "ascending":
        raise ValueError(f"unknown candidate order: {candidate_order!r}")

    for position, candidate in _scan_candidates(candidates, masks, answers, alpha):
        return ExhaustiveReconstructionResult(
            reconstruction=_bit_matrix(np.array([candidate]), n)[0].astype(np.int64),
            queries_used=int(masks.size),
            candidates_checked=position + 1,
            alpha=float(alpha),
        )
    raise ValueError(
        "no candidate is consistent with the answers; the answerer violated "
        f"its stated error bound alpha={alpha}"
    )


def consistent_candidates(
    answerer: QueryAnswerer, alpha: float | None = None
) -> list[np.ndarray]:
    """All candidates consistent with the full workload (test/diagnostic aid).

    Theorem 1.1(i)'s guarantee is really about this set: every member lies
    within Hamming distance ``4 * alpha`` of the truth.  Exponential in
    ``n``; intended for ``n <= 12``.
    """
    n = answerer.n
    if n > MAX_EXHAUSTIVE_N:
        raise ValueError(f"n={n} exceeds the cap {MAX_EXHAUSTIVE_N}")
    if alpha is None:
        alpha = answerer.error_bound
    if not np.isfinite(alpha):
        raise ValueError("pass an explicit alpha for unbounded-error answerers")
    masks, answers = _ask_all_subset_queries(answerer, n)
    candidates = np.arange(2**n, dtype=np.uint32)
    return [
        _bit_matrix(np.array([candidate]), n)[0].astype(np.int64)
        for _position, candidate in _scan_candidates(candidates, masks, answers, alpha)
    ]
