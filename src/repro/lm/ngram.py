"""Character n-gram language models with optional DP training.

The model estimates ``P(char | previous order-1 chars)`` from counts with
add-k smoothing.  Deliberately simple: the secret-sharer phenomenon [11]
needs nothing more than a model whose parameters are (functions of)
training counts, because memorization *is* those counts.

DP training: each training document's contribution to every
(context, char) count is clamped to 1, so each count has sensitivity 1
under document addition/removal, and Laplace noise of scale
``1/epsilon_per_count`` makes the released count table epsilon-DP per count
(basic composition across the counts a document touches is reported by
:meth:`NgramLanguageModel.dp_epsilon_spent`).  This is a teaching-grade
accountant — the point is the measurable memorization/extraction tradeoff,
not a state-of-the-art DP-LM.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.privacy.kernels import LaplaceKernel
from repro.utils.rng import RngSeed, ensure_rng

#: Padding character prepended to every document (never generated).
PAD = "\x00"


class NgramLanguageModel:
    """An order-``n`` character model: P(c | last n-1 characters).

    Args:
        order: the n in n-gram (>= 2 for any context at all).
        alphabet: the output alphabet; training text must stay within it.
        smoothing: add-k smoothing constant (> 0 keeps likelihoods finite).
    """

    def __init__(self, order: int = 5, alphabet: str | None = None, smoothing: float = 0.1):
        if order < 2:
            raise ValueError(f"order must be at least 2, got {order}")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.order = int(order)
        self.alphabet = alphabet or "abcdefghijklmnopqrstuvwxyz0123456789 .-"
        if PAD in self.alphabet:
            raise ValueError("the padding character cannot be in the alphabet")
        self.smoothing = float(smoothing)
        self._char_index = {c: i for i, c in enumerate(self.alphabet)}
        # counts[context] = vector of per-character counts.
        self._counts: dict[str, np.ndarray] = defaultdict(
            lambda: np.zeros(len(self.alphabet), dtype=float)
        )
        self._documents_seen = 0
        self._dp_epsilon_per_count: float | None = None

    # -- training -------------------------------------------------------------

    def fit(
        self,
        corpus: Iterable[str],
        dp_epsilon_per_count: float | None = None,
        rng: RngSeed = None,
    ) -> "NgramLanguageModel":
        """Train on ``corpus`` (one string per document); returns self.

        With ``dp_epsilon_per_count`` set, per-document contributions are
        clamped to one per (context, char) cell and Laplace noise of scale
        ``1/epsilon`` is added to every touched cell (negative counts are
        clipped after noising — a post-processing step that preserves DP).
        """
        generator = ensure_rng(rng)
        clamped = dp_epsilon_per_count is not None
        if clamped and dp_epsilon_per_count <= 0:
            raise ValueError("dp_epsilon_per_count must be positive")
        for document in corpus:
            self._validate_text(document)
            self._documents_seen += 1
            contributions: dict[tuple[str, str], int] = {}
            padded = PAD * (self.order - 1) + document
            for position in range(len(document)):
                context = padded[position : position + self.order - 1]
                char = document[position]
                key = (context, char)
                if clamped:
                    contributions[key] = 1
                else:
                    contributions[key] = contributions.get(key, 0) + 1
            for (context, char), count in contributions.items():
                self._counts[context][self._char_index[char]] += count
        if clamped:
            self._dp_epsilon_per_count = float(dp_epsilon_per_count)
            kernel = LaplaceKernel.calibrate(float(dp_epsilon_per_count))
            for context in list(self._counts):
                noisy = self._counts[context] + kernel.sample_n(
                    generator, len(self.alphabet)
                )
                self._counts[context] = np.clip(noisy, 0.0, None)
        return self

    def _validate_text(self, text: str) -> None:
        bad = set(text) - set(self.alphabet)
        if bad:
            raise ValueError(f"text contains out-of-alphabet characters: {sorted(bad)!r}")

    def unfit(self, document: str) -> "NgramLanguageModel":
        """Exactly unlearn one previously-trained document; returns self.

        Count-based models admit *exact* deletion: subtracting a document's
        contributions leaves the model bit-identical to one never trained
        on it — the gold standard of the data-deletion formalization the
        paper cites ([25], the right to be forgotten).  Only valid for
        non-DP models (noisy counts are not invertible) and for documents
        actually in the training set; over-deletion is detected by counts
        going negative.

        Raises:
            RuntimeError: on DP-trained models.
            ValueError: when the document's counts are not present.
        """
        if self._dp_epsilon_per_count is not None:
            raise RuntimeError(
                "DP-trained models cannot be exactly unlearned (counts are "
                "noisy); retrain without the document instead"
            )
        self._validate_text(document)
        padded = PAD * (self.order - 1) + document
        removals: dict[tuple[str, str], int] = {}
        for position in range(len(document)):
            context = padded[position : position + self.order - 1]
            char = document[position]
            removals[(context, char)] = removals.get((context, char), 0) + 1
        # Validate before mutating so a failed unfit leaves the model intact.
        for (context, char), count in removals.items():
            current = self._counts.get(context)
            if current is None or current[self._char_index[char]] < count:
                raise ValueError(
                    "document was not (fully) in the training set; cannot unlearn"
                )
        for (context, char), count in removals.items():
            self._counts[context][self._char_index[char]] -= count
            if not self._counts[context].any():
                del self._counts[context]
        self._documents_seen -= 1
        return self

    def equals_model(self, other: "NgramLanguageModel") -> bool:
        """Whether two models have identical parameters (count tables)."""
        if (
            self.order != other.order
            or self.alphabet != other.alphabet
            or self.smoothing != other.smoothing
        ):
            return False
        contexts = set(self._counts) | set(other._counts)
        import numpy as _np

        zero = _np.zeros(len(self.alphabet))
        return all(
            _np.array_equal(
                self._counts.get(context, zero), other._counts.get(context, zero)
            )
            for context in contexts
        )

    @property
    def documents_seen(self) -> int:
        """Number of training documents consumed."""
        return self._documents_seen

    def dp_epsilon_spent(self, document_length: int) -> float | None:
        """Basic-composition budget for one document of the given length.

        A document of L characters touches at most L (context, char) cells,
        each noised at ``epsilon_per_count`` — so its total privacy loss is
        at most ``L * epsilon_per_count``.  None when trained without DP.
        """
        if self._dp_epsilon_per_count is None:
            return None
        return document_length * self._dp_epsilon_per_count

    # -- inference -------------------------------------------------------------

    def next_distribution(self, context: str) -> np.ndarray:
        """P(next char | context), as a vector aligned with the alphabet."""
        trimmed = (PAD * (self.order - 1) + context)[-(self.order - 1) :]
        counts = self._counts.get(trimmed)
        if counts is None:
            counts = np.zeros(len(self.alphabet))
        smoothed = counts + self.smoothing
        return smoothed / smoothed.sum()

    def log_likelihood(self, text: str, context: str = "") -> float:
        """Natural-log likelihood of ``text`` following ``context``."""
        self._validate_text(text)
        total = 0.0
        running = context
        for char in text:
            distribution = self.next_distribution(running)
            total += math.log(distribution[self._char_index[char]])
            running += char
        return total

    def perplexity(self, text: str) -> float:
        """Per-character perplexity of ``text``."""
        if not text:
            raise ValueError("perplexity of empty text is undefined")
        return math.exp(-self.log_likelihood(text) / len(text))

    def generate(
        self,
        prefix: str,
        length: int,
        restrict_to: str | None = None,
        mode: str = "greedy",
        rng: RngSeed = None,
    ) -> str:
        """Auto-complete ``prefix`` with ``length`` characters.

        ``restrict_to`` limits generation to a sub-alphabet (e.g. digits —
        the attacker knows the secret's format); ``mode`` is ``"greedy"``
        (argmax) or ``"sample"``.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if mode not in ("greedy", "sample"):
            raise ValueError(f"unknown generation mode: {mode!r}")
        allowed = restrict_to or self.alphabet
        allowed_indices = [self._char_index[c] for c in allowed]
        generator = ensure_rng(rng)
        text = prefix
        for _ in range(length):
            distribution = self.next_distribution(text)
            restricted = distribution[allowed_indices]
            restricted = restricted / restricted.sum()
            if mode == "greedy":
                choice = int(np.argmax(restricted))
            else:
                choice = int(generator.choice(len(allowed_indices), p=restricted))
            text += allowed[choice]
        return text[len(prefix) :]


#: Word stock for the synthetic corpus (kept small and lowercase).
_WORDS = (
    "the quick brown fox jumps over lazy dog while rain falls on green "
    "hills and rivers run toward distant mountains under quiet evening "
    "skies people walk along old streets past small shops full of bread "
    "books flowers music children play near tall trees birds sing songs"
).split()


def synthetic_corpus(
    documents: int,
    words_per_document: int = 12,
    rng: RngSeed = None,
) -> list[str]:
    """Natural-ish filler text for memorization experiments.

    Random word sequences from a fixed stock: enough structure that the
    model learns real statistics, no structure that collides with the
    planted canary.
    """
    if documents <= 0 or words_per_document <= 0:
        raise ValueError("documents and words_per_document must be positive")
    generator = ensure_rng(rng)
    corpus = []
    for _ in range(documents):
        indices = generator.integers(0, len(_WORDS), size=words_per_document)
        corpus.append(" ".join(_WORDS[i] for i in indices))
    return corpus
