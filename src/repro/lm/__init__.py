"""A tiny language-model substrate for the memorization attacks.

The paper's Section 1 cites Carlini et al. [11]: "inadvertent memorization
of training data can lead to the revealing of secret personal information,
such as the exposure of a person's Social Security Number as an
auto-complete".  Exercising that attack needs a trainable text model; this
subpackage provides a character n-gram model with add-k smoothing — tiny,
but it memorizes exactly the way the attack requires, and it admits a
differentially private training variant (noisy counts) so the defense can
be measured too.
"""

from repro.lm.ngram import NgramLanguageModel, synthetic_corpus

__all__ = ["NgramLanguageModel", "synthetic_corpus"]
