"""Narayanan-Shmatikov sparse-data fingerprinting (the Netflix attack).

"Little partial knowledge about a subscriber's viewings and ratings, when
matched with publicly available movie ratings from [IMDb], can lead to the
exact re-identification of the subscriber (or to a small number of
candidate identities, one of which is correct)."

The algorithm is the *Scoreboard-RH* heuristic of [33]:

* every auxiliary observation contributes a similarity term per candidate,
  downweighted by the movie's popularity (rare movies identify, hits
  don't);
* the best-scoring candidate is claimed only when its lead over the
  runner-up exceeds ``eccentricity`` standard deviations of the score
  distribution — the paper's "or to a small number of candidate
  identities" hedge made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.ratings import AuxiliaryRating, Rating, RatingsData, auxiliary_knowledge
from repro.utils.rng import RngSeed, ensure_rng, spawn_rngs

#: Date mismatch scale (days) in the similarity kernel.
DAY_SCALE = 30.0
#: Star mismatch scale in the similarity kernel.
STAR_SCALE = 1.5


def similarity_score(
    profile: Sequence[Rating],
    aux: Sequence[AuxiliaryRating],
    popularity: np.ndarray,
) -> float:
    """Scoreboard similarity between a candidate profile and the aux info.

    ``sum_over_aux weight(movie) * sim(observation, profile entry)`` where
    ``weight = 1 / log2(1 + raters)`` and ``sim`` decays exponentially in
    the date and star discrepancies; a movie absent from the candidate's
    profile contributes nothing.
    """
    by_movie = {rating.movie: rating for rating in profile}
    score = 0.0
    for observation in aux:
        rating = by_movie.get(observation.movie)
        if rating is None:
            continue
        raters = max(int(popularity[observation.movie]), 1)
        weight = 1.0 / np.log2(1.0 + raters)
        sim = 1.0
        if observation.day is not None:
            sim *= float(np.exp(-abs(observation.day - rating.day) / DAY_SCALE))
        if observation.stars is not None:
            sim *= float(np.exp(-abs(observation.stars - rating.stars) / STAR_SCALE))
        score += weight * sim
    return score


def deanonymize(
    release: RatingsData,
    aux: Sequence[AuxiliaryRating],
    eccentricity: float = 1.5,
) -> int | None:
    """Run Scoreboard-RH: return the claimed pseudonym, or None (abstain).

    Claims the top-scoring candidate only when ``(best - second) /
    sigma(scores) >= eccentricity``; below that the match is deemed
    ambiguous, trading recall for precision exactly as in [33].
    """
    if not aux:
        raise ValueError("need at least one auxiliary observation")
    if eccentricity < 0:
        raise ValueError("eccentricity must be non-negative")
    popularity = release.movie_popularity()
    users = release.users
    scores = np.array(
        [similarity_score(release.profile(user), aux, popularity) for user in users]
    )
    if len(users) == 1:
        return users[0]
    order = np.argsort(scores)[::-1]
    best, second = scores[order[0]], scores[order[1]]
    sigma = float(scores.std())
    if sigma == 0.0 or (best - second) / sigma < eccentricity:
        return None
    return users[int(order[0])]


def candidate_identities(
    release: RatingsData,
    aux: Sequence[AuxiliaryRating],
    top: int = 5,
) -> list[tuple[int, float]]:
    """The best-scoring pseudonyms with their scores, descending.

    The paper's hedge — re-identification "or to a small number of
    candidate identities, one of which is correct" — as an API: when
    :func:`deanonymize` abstains (no eccentric winner), the top-k list is
    what the attacker actually holds.
    """
    if not aux:
        raise ValueError("need at least one auxiliary observation")
    if top <= 0:
        raise ValueError("top must be positive")
    popularity = release.movie_popularity()
    scored = [
        (user, similarity_score(release.profile(user), aux, popularity))
        for user in release.users
    ]
    scored.sort(key=lambda pair: -pair[1])
    return scored[:top]


@dataclass(frozen=True)
class FingerprintResult:
    """Aggregate outcome of a fingerprinting experiment.

    Attributes:
        targets: number of attacked subscribers.
        claimed: attacks that produced a (non-abstaining) claim.
        correct: claims that named the right subscriber.
    """

    targets: int
    claimed: int
    correct: int

    @property
    def recall(self) -> float:
        """Correct re-identifications over all targets."""
        if self.targets == 0:
            raise ValueError("no targets attacked")
        return self.correct / self.targets

    @property
    def precision(self) -> float:
        """Correct re-identifications over all claims."""
        if self.claimed == 0:
            return 0.0
        return self.correct / self.claimed

    def __str__(self) -> str:
        return (
            f"FingerprintResult: {self.correct}/{self.targets} correct "
            f"({self.recall:.1%} recall, {self.precision:.1%} precision on "
            f"{self.claimed} claims)"
        )


def fingerprint_experiment(
    data: RatingsData,
    targets: int = 50,
    known: int = 4,
    star_error: int = 1,
    day_error: int = 14,
    eccentricity: float = 1.5,
    rng: RngSeed = None,
) -> FingerprintResult:
    """Attack ``targets`` random subscribers of an anonymized release.

    For each target: build noisy auxiliary knowledge of ``known`` ratings,
    run :func:`deanonymize` against the pseudonymous release, and score the
    claim against the (hidden) identity map.
    """
    if targets <= 0:
        raise ValueError("targets must be positive")
    generator = ensure_rng(rng)
    release, identity = data.anonymized(generator)
    true_pseudonym = {user: pseudonym for pseudonym, user in identity.items()}

    eligible = [user for user in data.users if len(data.profile(user)) >= known]
    if len(eligible) < targets:
        raise ValueError(
            f"only {len(eligible)} subscribers have >= {known} ratings; "
            f"cannot attack {targets}"
        )
    chosen = generator.choice(len(eligible), size=targets, replace=False)
    streams = spawn_rngs(generator, targets)

    claimed = correct = 0
    for stream, index in zip(streams, chosen):
        user = eligible[int(index)]
        aux = auxiliary_knowledge(
            data,
            user,
            known=known,
            star_error=star_error,
            day_error=day_error,
            rng=stream,
        )
        claim = deanonymize(release, aux, eccentricity=eccentricity)
        if claim is None:
            continue
        claimed += 1
        if claim == true_pseudonym[user]:
            correct += 1
    return FingerprintResult(targets=targets, claimed=claimed, correct=correct)
