"""The Sweeney linkage (re-identification) attack.

The scenario of the paper's Section 1: a "de-identified" release (direct
identifiers redacted, quasi-identifiers intact) is joined against a public
*identified* dataset — the Cambridge voter registration — on the
quasi-identifiers.  Release records whose QI combination matches exactly
one identified row are re-identified: the attacker attaches a name to the
sensitive attribute.

The attack here is deliberately the simplest exact-join version Sweeney
used; its success is driven entirely by QI uniqueness
(:mod:`repro.attacks.uniqueness`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.dataset import Dataset


@dataclass(frozen=True)
class LinkageResult:
    """Outcome of a linkage attack.

    Attributes:
        attempted: release records with exactly one identified match
            (putative re-identifications).
        confirmed: attempted matches whose claimed identity is correct.
        ambiguous: release records with two or more identified matches.
        unmatched: release records with no identified match.
        population: number of release records (the denominator).
    """

    attempted: int
    confirmed: int
    ambiguous: int
    unmatched: int
    population: int

    @property
    def precision(self) -> float:
        """Fraction of claimed re-identifications that are correct."""
        if self.attempted == 0:
            return 0.0
        return self.confirmed / self.attempted

    @property
    def reidentified_rate(self) -> float:
        """Correct re-identifications over the whole release."""
        if self.population == 0:
            raise ValueError("population must be positive")
        return self.confirmed / self.population

    def __str__(self) -> str:
        return (
            f"LinkageResult: {self.confirmed}/{self.population} re-identified "
            f"({self.reidentified_rate:.1%}), precision {self.precision:.1%}, "
            f"{self.ambiguous} ambiguous, {self.unmatched} unmatched"
        )


def linkage_attack(
    release: Dataset,
    identified: Dataset,
    quasi_identifiers: Sequence[str],
    truth: Dataset,
    identifier: str = "name",
) -> LinkageResult:
    """Join ``release`` to ``identified`` on the quasi-identifiers.

    Args:
        release: the de-identified data (no ``identifier`` column).
        identified: the public identified data (has ``identifier`` plus the
            quasi-identifiers) — e.g. a voter file.
        quasi_identifiers: the join key.
        truth: the original dataset the release was derived from, **in the
            same row order as the release** (used only to score claims).
        identifier: the identity column of ``identified`` and ``truth``.

    Returns:
        Counts of attempted/confirmed/ambiguous/unmatched links.
    """
    names = list(quasi_identifiers)
    for name in names:
        if name not in release.schema:
            raise KeyError(f"release is missing quasi-identifier {name!r}")
        if name not in identified.schema:
            raise KeyError(f"identified data is missing quasi-identifier {name!r}")
    if identifier in release.schema:
        raise ValueError(
            f"release still contains the identifier column {identifier!r}; "
            "this attack models a de-identified release"
        )
    if len(release) != len(truth):
        raise ValueError("truth must align row-by-row with the release")

    # Index the identified data by QI combination.
    index: dict[tuple, list[object]] = {}
    for row in identified:
        key = tuple(row[name] for name in names)
        index.setdefault(key, []).append(row[identifier])

    attempted = confirmed = ambiguous = unmatched = 0
    for position, record in enumerate(release):
        key = tuple(record[name] for name in names)
        matches = index.get(key, [])
        if len(matches) == 0:
            unmatched += 1
        elif len(matches) > 1:
            ambiguous += 1
        else:
            attempted += 1
            if matches[0] == truth[position][identifier]:
                confirmed += 1
    return LinkageResult(
        attempted=attempted,
        confirmed=confirmed,
        ambiguous=ambiguous,
        unmatched=unmatched,
        population=len(release),
    )
