"""The secret-sharer extraction attack (Carlini et al. [11]).

The paper's Section 1: "inadvertent memorization of training data can lead
to the revealing of secret personal information, such as the exposure of a
person's Social Security Number as an auto-complete for the sentence 'my
social-security number is ...'".

The methodology of [11], reproduced on the n-gram substrate:

* plant a **canary** — a secret-bearing sentence ``prefix + secret`` — in
  the training corpus some number of times;
* **extraction**: does greedy auto-completion of the prefix return the
  secret?
* **exposure**: ``log2(|candidates|) - log2(rank)`` where ``rank`` is the
  secret's position when all same-format candidates are ordered by model
  likelihood.  Exposure near ``log2(|candidates|)`` means the model has
  fully memorized the secret; near 0 means it learned nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.lm.ngram import NgramLanguageModel, synthetic_corpus
from repro.utils.rng import RngSeed, derive_rng, ensure_rng

#: Default secret alphabet (digits, as in an SSN).
DIGITS = "0123456789"


def random_secret(length: int, rng: RngSeed = None, alphabet: str = DIGITS) -> str:
    """A uniform random secret of the given length."""
    if length <= 0:
        raise ValueError("length must be positive")
    generator = ensure_rng(rng)
    return "".join(alphabet[int(i)] for i in generator.integers(0, len(alphabet), length))


def extract_secret(
    model: NgramLanguageModel, prefix: str, length: int, alphabet: str = DIGITS
) -> str:
    """Greedy auto-completion of the canary prefix (the attack itself)."""
    return model.generate(prefix, length, restrict_to=alphabet, mode="greedy")


def exposure(
    model: NgramLanguageModel,
    prefix: str,
    secret: str,
    alphabet: str = DIGITS,
) -> float:
    """Carlini exposure of ``secret`` given the canary ``prefix``.

    Ranks the secret among **all** same-length candidates over ``alphabet``
    by model log-likelihood (exact, not sampled — candidate spaces used in
    the experiments are <= 10^4).  Returns
    ``log2(#candidates) - log2(rank)``; ties rank pessimistically.
    """
    if not secret:
        raise ValueError("secret must be non-empty")
    bad = set(secret) - set(alphabet)
    if bad:
        raise ValueError(f"secret contains characters outside the alphabet: {bad!r}")
    total = len(alphabet) ** len(secret)
    if total > 200_000:
        raise ValueError(
            f"candidate space of size {total} is too large for exact exposure; "
            "use a shorter secret"
        )
    secret_ll = model.log_likelihood(secret, context=prefix)
    rank = 1
    for candidate_chars in product(alphabet, repeat=len(secret)):
        candidate = "".join(candidate_chars)
        if candidate == secret:
            continue
        if model.log_likelihood(candidate, context=prefix) >= secret_ll:
            rank += 1
    return math.log2(total) - math.log2(rank)


@dataclass(frozen=True)
class ExtractionResult:
    """Outcome of one secret-sharer run.

    Attributes:
        insertions: how many times the canary appeared in training.
        extracted: whether greedy completion returned the exact secret.
        exposure_bits: the exposure metric (max = len(secret)*log2(|alphabet|)).
        max_exposure_bits: the ceiling for this secret format.
    """

    insertions: int
    extracted: bool
    exposure_bits: float
    max_exposure_bits: float

    def __str__(self) -> str:
        return (
            f"ExtractionResult(insertions={self.insertions}, "
            f"extracted={self.extracted}, "
            f"exposure={self.exposure_bits:.1f}/{self.max_exposure_bits:.1f} bits)"
        )


def secret_sharer_experiment(
    insertions: int,
    secret_length: int = 4,
    corpus_documents: int = 400,
    prefix: str = "my social security number is ",
    order: int = 6,
    dp_epsilon_per_count: float | None = None,
    rng: RngSeed = None,
) -> ExtractionResult:
    """One full secret-sharer run: plant, train, extract, score.

    Args:
        insertions: canary repetitions in training (0 = control: the model
            never saw the secret and exposure must be ~0).
        secret_length: digits in the secret (candidate space 10^length).
        corpus_documents: size of the filler corpus.
        prefix: the canary prefix (the attacker's known auto-complete bait).
        order: n-gram order of the model.
        dp_epsilon_per_count: train with noisy counts (the defense knob).
        rng: randomness (secret choice, corpus, DP noise).
    """
    if insertions < 0:
        raise ValueError("insertions must be non-negative")
    corpus_rng = derive_rng(rng, "corpus") if not hasattr(rng, "integers") else rng
    generator = ensure_rng(rng)
    secret = random_secret(secret_length, generator)
    canary = prefix + secret
    corpus = synthetic_corpus(corpus_documents, rng=corpus_rng)
    corpus.extend([canary] * insertions)

    model = NgramLanguageModel(order=order)
    model.fit(corpus, dp_epsilon_per_count=dp_epsilon_per_count, rng=generator)

    guessed = extract_secret(model, prefix, secret_length)
    bits = exposure(model, prefix, secret)
    return ExtractionResult(
        insertions=insertions,
        extracted=guessed == secret,
        exposure_bits=bits,
        max_exposure_bits=secret_length * math.log2(len(DIGITS)),
    )
