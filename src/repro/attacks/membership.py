"""Homer-style membership inference on aggregate statistics.

"Homer et al. introduced membership attacks on aggregate genomic data,
allowing to infer whether a person's data was included in the aggregate."

The published artifact is only the case cohort's per-SNP allele
frequencies; the adversary holds a target's genotype and the reference
population frequencies.  Homer's statistic compares, SNP by SNP, whether
the target sits closer to the cohort or to the reference:

    D(y) = sum_j ( |y_j - ref_j| - |y_j - case_j| )

Members drift positive (the cohort mean was pulled toward them), while
non-members are symmetric around zero; with thousands of SNPs the
separation is decisive even for cohorts of hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.genomes import GenomePanel
from repro.privacy.kernels import LaplaceKernel
from repro.utils.rng import RngSeed, ensure_rng


def homer_statistic(
    genotype: np.ndarray,
    case_frequencies: np.ndarray,
    reference_frequencies: np.ndarray,
) -> float:
    """The per-target membership statistic D (positive suggests membership)."""
    y = np.asarray(genotype, dtype=float) / 2.0  # allele fraction in [0, 1]
    case = np.asarray(case_frequencies, dtype=float)
    reference = np.asarray(reference_frequencies, dtype=float)
    if not (y.shape == case.shape == reference.shape):
        raise ValueError("genotype and frequency vectors must align")
    return float(np.sum(np.abs(y - reference) - np.abs(y - case)))


@dataclass(frozen=True)
class MembershipResult:
    """Outcome of a membership-inference experiment.

    Attributes:
        auc: area under the ROC curve of the statistic (0.5 = blind,
            1.0 = perfect membership determination).
        tpr_at_zero: true-positive rate of the natural "D > 0" test.
        fpr_at_zero: false-positive rate of the same test.
        members: number of member targets evaluated.
        non_members: number of non-member targets evaluated.
    """

    auc: float
    tpr_at_zero: float
    fpr_at_zero: float
    members: int
    non_members: int

    @property
    def advantage(self) -> float:
        """The attacker's advantage tpr - fpr of the D > 0 test."""
        return self.tpr_at_zero - self.fpr_at_zero

    def __str__(self) -> str:
        return (
            f"MembershipResult: AUC {self.auc:.3f}, "
            f"TPR {self.tpr_at_zero:.2f} / FPR {self.fpr_at_zero:.2f} "
            f"(advantage {self.advantage:.2f})"
        )


def membership_experiment(
    panel: GenomePanel,
    cohort_size: int = 200,
    test_members: int = 100,
    test_non_members: int = 100,
    noise_scale: float = 0.0,
    rng: RngSeed = None,
) -> MembershipResult:
    """Run the Homer attack end to end on a synthetic panel.

    Samples a case cohort, publishes its aggregate frequencies (optionally
    perturbed with Laplace noise of the given scale per SNP — the defense
    knob), scores member and non-member targets with
    :func:`homer_statistic`, and reports ROC statistics.
    """
    if cohort_size <= 0:
        raise ValueError("cohort_size must be positive")
    if test_members <= 0 or test_non_members <= 0:
        raise ValueError("need at least one member and one non-member target")
    if test_members > cohort_size:
        raise ValueError("cannot test more members than the cohort holds")
    if noise_scale < 0:
        raise ValueError("noise_scale must be non-negative")
    generator = ensure_rng(rng)

    cohort = panel.sample_genotypes(cohort_size, generator)
    published = panel.aggregate_frequencies(cohort)
    if noise_scale > 0:
        kernel = LaplaceKernel(noise_scale)
        published = np.clip(
            published + kernel.sample_n(generator, published.shape),
            0.0,
            1.0,
        )
    outsiders = panel.sample_genotypes(test_non_members, generator)

    member_scores = np.array(
        [
            homer_statistic(cohort[i], published, panel.frequencies)
            for i in range(test_members)
        ]
    )
    outsider_scores = np.array(
        [
            homer_statistic(outsiders[i], published, panel.frequencies)
            for i in range(test_non_members)
        ]
    )

    auc = _auc(member_scores, outsider_scores)
    tpr = float((member_scores > 0).mean())
    fpr = float((outsider_scores > 0).mean())
    return MembershipResult(
        auc=auc,
        tpr_at_zero=tpr,
        fpr_at_zero=fpr,
        members=test_members,
        non_members=test_non_members,
    )


def _auc(positives: np.ndarray, negatives: np.ndarray) -> float:
    """Mann-Whitney AUC: P(positive score > negative score) with tie credit."""
    wins = 0.0
    for p in positives:
        wins += float((p > negatives).sum()) + 0.5 * float((p == negatives).sum())
    return wins / (len(positives) * len(negatives))
