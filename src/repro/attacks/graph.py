"""Social-graph de-anonymization (Backstrom-Dwork-Kleinberg [10]).

Two attacks on a naively anonymized (identity-stripped) social network:

* **passive** — :func:`degree_signature_uniqueness`: how many members are
  already unique given only their degree and their neighbors' degrees?  No
  planting, no auxiliary data — pure structure.
* **active** ("wherefore art thou R3579X?") — before the release, the
  attacker creates ``k`` sybil accounts wired together with a *random
  internal pattern* (unique in the graph w.h.p. once ``k = Theta(log n)``)
  and befriends each target through a distinct pair of sybils.  After the
  release the attacker re-locates the sybil subgraph by structural search
  and reads the targets off as the unique common neighbors of their sybil
  pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import networkx as nx

from repro.utils.rng import RngSeed, ensure_rng


def degree_signature_uniqueness(graph: nx.Graph) -> float:
    """Fraction of nodes unique by (degree, sorted neighbor degrees).

    The passive measure: a node whose 1-neighborhood degree signature is
    unique is re-identifiable by anyone who knows that much about them —
    the graph analogue of Sweeney's quasi-identifier uniqueness.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("empty graph")
    signatures: dict[tuple, int] = {}
    for node in graph.nodes():
        signature = (
            graph.degree(node),
            tuple(sorted(graph.degree(neighbor) for neighbor in graph.neighbors(node))),
        )
        signatures[signature] = signatures.get(signature, 0) + 1
    unique = sum(
        1
        for node in graph.nodes()
        if signatures[
            (
                graph.degree(node),
                tuple(
                    sorted(graph.degree(neighbor) for neighbor in graph.neighbors(node))
                ),
            )
        ]
        == 1
    )
    return unique / graph.number_of_nodes()


@dataclass(frozen=True)
class SybilPlan:
    """What the attacker planted before the release.

    Attributes:
        sybils: the sybil node ids (in the pre-release graph).
        internal_edges: the random pattern wired among the sybils.
        target_pairs: target node -> the distinct sybil pair befriending it.
    """

    sybils: tuple[int, ...]
    internal_edges: tuple[tuple[int, int], ...]
    target_pairs: dict[int, tuple[int, int]]


def plant_sybils(
    graph: nx.Graph,
    targets: Sequence[int],
    num_sybils: int,
    rng: RngSeed = None,
) -> SybilPlan:
    """Mutate ``graph``: add the sybil subgraph and befriend the targets.

    Internal wiring: a path (for connectedness) plus each remaining pair
    independently with probability 1/2 — the random pattern whose
    uniqueness the recovery relies on.  Each target is linked to a distinct
    pair of sybils, so ``num_sybils`` supports up to ``C(k, 2)`` targets.
    """
    if num_sybils < 2:
        raise ValueError("need at least two sybils")
    available_pairs = list(combinations(range(num_sybils), 2))
    if len(targets) > len(available_pairs):
        raise ValueError(
            f"{num_sybils} sybils support at most {len(available_pairs)} targets"
        )
    if len(set(targets)) != len(targets):
        raise ValueError("targets must be distinct")
    for target in targets:
        if target not in graph:
            raise ValueError(f"target {target} not in the graph")

    generator = ensure_rng(rng)
    base = max(graph.nodes()) + 1
    sybils = tuple(base + i for i in range(num_sybils))
    graph.add_nodes_from(sybils)

    internal: list[tuple[int, int]] = []
    for i in range(num_sybils - 1):  # the connectivity path
        internal.append((sybils[i], sybils[i + 1]))
    for i, j in combinations(range(num_sybils), 2):
        if j != i + 1 and generator.random() < 0.5:
            internal.append((sybils[i], sybils[j]))
    graph.add_edges_from(internal)

    pair_indices = generator.choice(len(available_pairs), size=len(targets), replace=False)
    target_pairs = {}
    for target, pair_index in zip(targets, pair_indices):
        i, j = available_pairs[int(pair_index)]
        graph.add_edge(target, sybils[i])
        graph.add_edge(target, sybils[j])
        target_pairs[target] = (sybils[i], sybils[j])
    return SybilPlan(
        sybils=sybils, internal_edges=tuple(internal), target_pairs=target_pairs
    )


def locate_sybils(
    released: nx.Graph,
    plan: SybilPlan,
    planted_graph: nx.Graph,
    max_embeddings: int = 2,
) -> list[dict[int, int]]:
    """Find embeddings of the sybil subgraph in the released graph.

    The attacker knows each sybil's full degree and the internal adjacency
    pattern (it created both).  The search anchors on degree-matching
    candidates for the first sybil and extends along the pattern with
    degree and adjacency/non-adjacency constraints — BDK's tree search.
    Returns up to ``max_embeddings`` embeddings (sybil -> released label);
    more than one means the pattern was ambiguous and the attack fails.
    """
    k = len(plan.sybils)
    degrees = [planted_graph.degree(s) for s in plan.sybils]
    internal = {frozenset(edge) for edge in plan.internal_edges}

    def consistent(assignment: list[int], candidate: int, position: int) -> bool:
        if released.degree(candidate) != degrees[position]:
            return False
        for previous in range(position):
            should_link = frozenset(
                (plan.sybils[previous], plan.sybils[position])
            ) in internal
            is_linked = released.has_edge(assignment[previous], candidate)
            if should_link != is_linked:
                return False
        return True

    embeddings: list[dict[int, int]] = []

    def extend(assignment: list[int]) -> None:
        if len(embeddings) >= max_embeddings:
            return
        position = len(assignment)
        if position == k:
            embeddings.append(dict(zip(plan.sybils, assignment)))
            return
        # Candidates: neighbors of the previous path node (the path edge
        # (position-1, position) is always internal), or all degree-matching
        # nodes for the anchor.
        if position == 0:
            candidates = [
                node for node in released.nodes() if released.degree(node) == degrees[0]
            ]
        else:
            candidates = list(released.neighbors(assignment[position - 1]))
        for candidate in candidates:
            if candidate in assignment:
                continue
            if consistent(assignment, candidate, position):
                extend(assignment + [candidate])

    extend([])
    return embeddings


@dataclass(frozen=True)
class GraphAttackResult:
    """Outcome of the active attack.

    Attributes:
        located: whether the sybil subgraph was found uniquely.
        targets: number of targets planted.
        reidentified: targets whose released label was correctly recovered.
    """

    located: bool
    targets: int
    reidentified: int

    @property
    def recovery_rate(self) -> float:
        """Correctly re-identified targets over all targets."""
        if self.targets == 0:
            raise ValueError("no targets planted")
        return self.reidentified / self.targets

    def __str__(self) -> str:
        status = "located" if self.located else "NOT located (ambiguous/absent)"
        return (
            f"GraphAttackResult: sybils {status}; "
            f"{self.reidentified}/{self.targets} targets re-identified"
        )


def active_attack(
    graph: nx.Graph,
    targets: Sequence[int],
    num_sybils: int,
    rng: RngSeed = None,
) -> GraphAttackResult:
    """Run the full BDK active attack end to end.

    Plants sybils into a copy of ``graph``, anonymizes the result, locates
    the pattern, and recovers each target as the unique common neighbor of
    its sybil pair (excluding sybils).  Scored against the hidden identity
    map.
    """
    from repro.data.socialgraph import anonymize_graph

    generator = ensure_rng(rng)
    planted = graph.copy()
    plan = plant_sybils(planted, targets, num_sybils, generator)
    released, identity = anonymize_graph(planted, generator)

    embeddings = locate_sybils(released, plan, planted)
    if len(embeddings) != 1:
        return GraphAttackResult(located=False, targets=len(targets), reidentified=0)
    embedding = embeddings[0]

    sybil_labels = set(embedding.values())
    reidentified = 0
    for target, (sybil_a, sybil_b) in plan.target_pairs.items():
        neighbors_a = set(released.neighbors(embedding[sybil_a]))
        neighbors_b = set(released.neighbors(embedding[sybil_b]))
        candidates = (neighbors_a & neighbors_b) - sybil_labels
        if len(candidates) == 1 and candidates.pop() == identity[target]:
            reidentified += 1
    return GraphAttackResult(
        located=True, targets=len(targets), reidentified=reidentified
    )
