"""Quasi-identifier uniqueness analysis (Sweeney [41]).

"At the heart of Sweeney's re-identification attack was the crucial
observation that the seemingly innocuous combination of ZIP code, birth
date, and sex ... is unique for a vast majority of the US population."
This module measures that phenomenon on any dataset: what fraction of
records is unique under a given quasi-identifier combination, and what
k-anonymity level the raw data actually achieves.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.dataset import Dataset


def uniqueness_profile(
    dataset: Dataset, qi_sets: Sequence[Sequence[str]]
) -> dict[tuple[str, ...], float]:
    """Fraction of records unique under each quasi-identifier combination.

    Example::

        uniqueness_profile(population, [("sex",), ("zip", "sex"),
                                        ("zip", "birth_year", "birth_doy", "sex")])

    returns the escalating uniqueness curve Sweeney's attack exploits.
    """
    if not qi_sets:
        raise ValueError("need at least one quasi-identifier set")
    profile = {}
    for qi_set in qi_sets:
        names = tuple(qi_set)
        profile[names] = dataset.unique_fraction(names)
    return profile


def k_anonymity_level(dataset: Dataset, names: Sequence[str]) -> int:
    """The k that the raw data achieves on ``names`` (min class size).

    A value of 1 means some record is singled out by the combination —
    the precondition for linkage.
    """
    if len(dataset) == 0:
        raise ValueError("k-anonymity level of an empty dataset is undefined")
    groups = dataset.group_by(list(names))
    return min(len(rows) for rows in groups.values())


def singled_out_count(dataset: Dataset, names: Sequence[str]) -> int:
    """How many records are unique (class size 1) under ``names``."""
    groups = dataset.group_by(list(names))
    return sum(1 for rows in groups.values() if len(rows) == 1)
