"""Membership inference against machine-learning models (Shokri et al. [40]).

The paper's Section 1: membership attacks against ML models "allow to
infer whether a person's data was included in the training set".  We use
the loss-threshold instantiation (Yeom et al.'s simplification of [40],
standard in the evaluation literature): training members tend to have
lower loss than non-members on an overfit model, so thresholding the
per-example loss — or ranking by it — separates in from out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.logistic import DpSgdConfig, LogisticRegressionModel, gaussian_task
from repro.utils.rng import RngSeed, derive_rng, ensure_rng


@dataclass(frozen=True)
class MlMembershipResult:
    """Outcome of a loss-threshold membership experiment.

    Attributes:
        auc: ROC AUC of (negated) loss as a membership score.
        advantage: TPR - FPR of the mean-loss-threshold test (Yeom's
            membership advantage).
        train_accuracy / test_accuracy: the generalization gap that powers
            the attack.
        epsilon: the model's DP report, or None for non-private training.
    """

    auc: float
    advantage: float
    train_accuracy: float
    test_accuracy: float
    epsilon: float | None

    @property
    def generalization_gap(self) -> float:
        """train accuracy minus test accuracy."""
        return self.train_accuracy - self.test_accuracy

    def __str__(self) -> str:
        eps = "none" if self.epsilon is None else f"{self.epsilon:.2f}"
        return (
            f"MlMembershipResult(AUC {self.auc:.3f}, advantage "
            f"{self.advantage:.2f}, gap {self.generalization_gap:.2f}, eps {eps})"
        )


def loss_threshold_attack(
    model: LogisticRegressionModel,
    member_features: np.ndarray,
    member_labels: np.ndarray,
    outsider_features: np.ndarray,
    outsider_labels: np.ndarray,
) -> tuple[float, float]:
    """Score the attack: returns (auc, advantage).

    AUC ranks members vs outsiders by negated loss; the advantage uses the
    classic threshold "loss below the pooled mean loss -> member".
    """
    member_losses = model.per_example_loss(member_features, member_labels)
    outsider_losses = model.per_example_loss(outsider_features, outsider_labels)
    auc = _auc(-member_losses, -outsider_losses)
    threshold = float(np.concatenate([member_losses, outsider_losses]).mean())
    tpr = float((member_losses < threshold).mean())
    fpr = float((outsider_losses < threshold).mean())
    return auc, tpr - fpr


def ml_membership_experiment(
    train_size: int = 50,
    dimensions: int = 60,
    test_size: int = 500,
    dp: DpSgdConfig | None = None,
    rng: RngSeed = None,
) -> MlMembershipResult:
    """Train a (possibly DP) model and attack its training set.

    Small ``train_size`` with large ``dimensions`` makes the model overfit
    — the regime in which [40] demonstrated membership leakage.
    """
    data_rng = derive_rng(rng, "data") if not hasattr(rng, "normal") else rng
    generator = ensure_rng(rng)
    features, labels = gaussian_task(
        train_size + test_size, dimensions=dimensions, rng=data_rng
    )
    train_x, test_x = features[:train_size], features[train_size:]
    train_y, test_y = labels[:train_size], labels[train_size:]

    model = LogisticRegressionModel(l2=1e-4, learning_rate=0.8, epochs=300)
    model.fit(train_x, train_y, dp=dp, rng=generator)

    auc, advantage = loss_threshold_attack(model, train_x, train_y, test_x, test_y)
    return MlMembershipResult(
        auc=auc,
        advantage=advantage,
        train_accuracy=model.accuracy(train_x, train_y),
        test_accuracy=model.accuracy(test_x, test_y),
        epsilon=model.epsilon_report(),
    )


def _auc(positives: np.ndarray, negatives: np.ndarray) -> float:
    """Mann-Whitney AUC with tie credit."""
    wins = 0.0
    for p in positives:
        wins += float((p > negatives).sum()) + 0.5 * float((p == negatives).sum())
    return wins / (len(positives) * len(negatives))
