"""The classic privacy attacks surveyed in the paper's Section 1.

Each module reproduces one attack family on the synthetic stand-in data of
:mod:`repro.data` (see DESIGN.md section 2 for the substitution argument):

* :mod:`repro.attacks.uniqueness` — Sweeney's quasi-identifier uniqueness
  analysis ("ZIP code, birth date, and sex is unique for a vast majority").
* :mod:`repro.attacks.linkage` — the GIC/voter-registry linkage attack.
* :mod:`repro.attacks.fingerprint` — Narayanan-Shmatikov sparse-data
  fingerprinting (the Netflix/IMDb de-anonymization).
* :mod:`repro.attacks.membership` — Homer-style membership inference on
  aggregate genomic statistics.
* :mod:`repro.attacks.downcoding` — Cohen's post-processing attack on
  generalization-based k-anonymity [12].
"""

from repro.attacks.downcoding import DowncodingResult, downcode, downcoding_experiment
from repro.attacks.extraction import (
    ExtractionResult,
    exposure,
    extract_secret,
    secret_sharer_experiment,
)
from repro.attacks.graph import (
    GraphAttackResult,
    active_attack,
    degree_signature_uniqueness,
    plant_sybils,
)
from repro.attacks.fingerprint import (
    FingerprintResult,
    candidate_identities,
    deanonymize,
    fingerprint_experiment,
    similarity_score,
)
from repro.attacks.intersection import (
    IntersectionResult,
    candidate_sensitive_values,
    intersection_attack,
)
from repro.attacks.linkage import LinkageResult, linkage_attack
from repro.attacks.membership import (
    MembershipResult,
    homer_statistic,
    membership_experiment,
)
from repro.attacks.ml_membership import (
    MlMembershipResult,
    loss_threshold_attack,
    ml_membership_experiment,
)
from repro.attacks.uniqueness import k_anonymity_level, uniqueness_profile

__all__ = [
    "DowncodingResult",
    "ExtractionResult",
    "FingerprintResult",
    "GraphAttackResult",
    "IntersectionResult",
    "LinkageResult",
    "MembershipResult",
    "MlMembershipResult",
    "active_attack",
    "candidate_identities",
    "candidate_sensitive_values",
    "deanonymize",
    "degree_signature_uniqueness",
    "downcode",
    "downcoding_experiment",
    "exposure",
    "extract_secret",
    "fingerprint_experiment",
    "homer_statistic",
    "intersection_attack",
    "k_anonymity_level",
    "linkage_attack",
    "loss_threshold_attack",
    "membership_experiment",
    "ml_membership_experiment",
    "plant_sybils",
    "secret_sharer_experiment",
    "similarity_score",
    "uniqueness_profile",
]
