"""The composition (intersection) attack on k-anonymity [23].

The paper's Section 1.1: "k-anonymity is not closed under composition,
i.e., it may well be that the combination of two or more k-anonymized
datasets derived from the same (or similar) collection of personal
information allows for uniquely identifying individuals in the data."

The Ganta-Kasiviswanathan-Smith scenario: two curators (say, two hospitals
with overlapping patients) each publish a k-anonymized release.  An
attacker who knows a victim's quasi-identifiers reads off, from each
release, the set of sensitive values the victim could have (the sensitive
values of every equivalence class consistent with the victim's QIs).  Each
set alone has >= k candidates... but their *intersection* can be a
singleton, because the two anonymizers partitioned the data differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.data.dataset import Dataset, Record
from repro.data.generalized import GeneralizedDataset


def candidate_sensitive_values(
    release: GeneralizedDataset,
    victim: Record,
    quasi_identifiers: Sequence[str],
    sensitive: str,
) -> set[Hashable]:
    """Sensitive values consistent with the victim's QIs in one release.

    Scans every released row whose QI cover sets contain the victim's raw
    QI values and collects the (raw) sensitive values those rows carry.
    An empty set means the victim is provably absent from the release.
    """
    if sensitive not in release.schema:
        raise KeyError(f"unknown sensitive attribute: {sensitive!r}")
    candidates: set[Hashable] = set()
    for row in release:
        if all(row[name].matches(victim[name]) for name in quasi_identifiers):
            covers = row[sensitive].covers
            candidates.update(covers)
    return candidates


@dataclass(frozen=True)
class IntersectionResult:
    """Outcome of the composition attack over a set of victims.

    Attributes:
        victims: number of individuals attacked (present in both releases).
        disclosed_a / disclosed_b: victims whose sensitive value is already
            uniquely determined by release A (resp. B) alone.
        disclosed_combined: victims whose value is uniquely determined by
            the *intersection* of the two candidate sets.
        correct_combined: combined disclosures that name the right value.
    """

    victims: int
    disclosed_a: int
    disclosed_b: int
    disclosed_combined: int
    correct_combined: int

    @property
    def single_release_rate(self) -> float:
        """Worst single-release disclosure rate (the baseline)."""
        if self.victims == 0:
            raise ValueError("no victims attacked")
        return max(self.disclosed_a, self.disclosed_b) / self.victims

    @property
    def combined_rate(self) -> float:
        """Disclosure rate after composing the two releases."""
        if self.victims == 0:
            raise ValueError("no victims attacked")
        return self.disclosed_combined / self.victims

    @property
    def accuracy(self) -> float:
        """Fraction of combined disclosures that are correct."""
        if self.disclosed_combined == 0:
            return 0.0
        return self.correct_combined / self.disclosed_combined

    def __str__(self) -> str:
        return (
            f"IntersectionResult: {self.combined_rate:.1%} disclosed by "
            f"composition (vs {self.single_release_rate:.1%} single-release), "
            f"accuracy {self.accuracy:.1%} over {self.victims} victims"
        )


def intersection_attack(
    victims: Dataset,
    release_a: GeneralizedDataset,
    release_b: GeneralizedDataset,
    sensitive: str,
    quasi_identifiers: Sequence[str] | None = None,
) -> IntersectionResult:
    """Compose two k-anonymized releases against a set of known victims.

    Args:
        victims: raw records (QIs + true sensitive value) of individuals
            known to appear in both underlying datasets — the attacker's
            auxiliary knowledge, as in the GIC/voter-file setting.
        release_a, release_b: the two independently k-anonymized releases.
        sensitive: the attribute whose value the attacker wants.
        quasi_identifiers: the linkage attributes; defaults to the victim
            schema's annotated quasi-identifiers.

    Returns:
        Disclosure rates for each release alone and for their composition.
    """
    qi_names = tuple(quasi_identifiers or victims.schema.quasi_identifiers)
    if not qi_names:
        raise ValueError("no quasi-identifiers available for the attack")

    disclosed_a = disclosed_b = disclosed_combined = correct = 0
    for victim in victims:
        candidates_a = candidate_sensitive_values(release_a, victim, qi_names, sensitive)
        candidates_b = candidate_sensitive_values(release_b, victim, qi_names, sensitive)
        if len(candidates_a) == 1:
            disclosed_a += 1
        if len(candidates_b) == 1:
            disclosed_b += 1
        # The victim is known to be in both datasets, so the truth lies in
        # both candidate sets; an empty intersection only happens when a
        # release suppressed the victim — treated as no disclosure.
        combined = candidates_a & candidates_b
        if len(combined) == 1:
            disclosed_combined += 1
            if next(iter(combined)) == victim[sensitive]:
                correct += 1
    return IntersectionResult(
        victims=len(victims),
        disclosed_a=disclosed_a,
        disclosed_b=disclosed_b,
        disclosed_combined=disclosed_combined,
        correct_combined=correct,
    )
