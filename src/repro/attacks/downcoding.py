"""Cohen's post-processing attack on generalization-based k-anonymity [12].

The paper (Sections 1.1 and 2.3.4) cites Cohen's result that
generalization-based k-anonymized data can be *reconstructed* ("downcoded")
by pure post-processing: "The attack relies on knowledge of the underlying
distribution but does not require the attacker to consult any other dataset
beyond the k-anonymized dataset."  And its PSO consequence: isolation with
a negligible-weight predicate with probability approaching 100%.

We implement the distribution-knowledge reconstruction: for every
generalized cell, guess the maximum-a-posteriori raw value within the
released cover set.  Because information-optimizing anonymizers release
tight cells, the MAP guess recovers a large share of the raw attributes —
the release was never "anonymous" in any semantic sense, matching the
paper's warning that k-anonymity's guarantee "is syntactic and does not
imply that a k-anonymized dataset cannot be post-processed so as to infer
personal data".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import Dataset
from repro.data.distributions import ProductDistribution
from repro.data.generalized import GeneralizedDataset


def downcode(release: GeneralizedDataset, distribution: ProductDistribution) -> Dataset:
    """MAP-reconstruct raw records from a generalized release.

    For each attribute of each released record, picks the raw value of
    maximum marginal probability among the released cover set.  Requires
    only the release and (knowledge of) the data distribution — a pure
    post-processing attack.
    """
    if release.schema != distribution.schema:
        raise ValueError("release and distribution schemas must match")
    rows = []
    for record in release:
        values = []
        for name in release.schema.names:
            covers = record[name].covers
            marginal = distribution.marginals[name]
            best = max(sorted(covers, key=repr), key=marginal.probability)
            values.append(best)
        rows.append(tuple(values))
    return Dataset(release.schema, rows, validate=False)


@dataclass(frozen=True)
class DowncodingResult:
    """Outcome of a downcoding experiment.

    Attributes:
        records: number of released records scored.
        exact_records: reconstructed records equal to the original row
            (order-aligned; the anonymizer must be order-preserving).
        attribute_accuracy: fraction of all (record, attribute) cells
            reconstructed correctly.
        generalized_cell_accuracy: accuracy restricted to cells the
            anonymizer actually generalized (|covers| > 1) — the honest
            measure of information leaked *through* the generalization.
    """

    records: int
    exact_records: int
    attribute_accuracy: float
    generalized_cell_accuracy: float

    @property
    def exact_fraction(self) -> float:
        """Fraction of rows reconstructed exactly."""
        if self.records == 0:
            raise ValueError("no records scored")
        return self.exact_records / self.records

    def __str__(self) -> str:
        return (
            f"DowncodingResult: {self.exact_fraction:.1%} rows exact, "
            f"{self.attribute_accuracy:.1%} cells correct "
            f"({self.generalized_cell_accuracy:.1%} on generalized cells)"
        )


def downcoding_experiment(
    original: Dataset,
    release: GeneralizedDataset,
    distribution: ProductDistribution,
) -> DowncodingResult:
    """Score a downcoding reconstruction against the original data.

    The release must be order-aligned with ``original`` and unsuppressed
    (Mondrian's output qualifies; Datafly's suppressed rows would break the
    alignment).
    """
    if release.suppressed_count != 0:
        raise ValueError("downcoding scoring requires an unsuppressed release")
    if len(release) != len(original):
        raise ValueError("release and original must have the same length")
    reconstructed = downcode(release, distribution)

    exact = 0
    correct_cells = 0
    generalized_cells = 0
    correct_generalized = 0
    total_cells = len(original) * len(original.schema)
    for i in range(len(original)):
        true_row = original.rows[i]
        guessed_row = reconstructed.rows[i]
        if true_row == guessed_row:
            exact += 1
        released = release[i]
        for j, name in enumerate(original.schema.names):
            hit = true_row[j] == guessed_row[j]
            correct_cells += int(hit)
            if not released[name].is_singleton:
                generalized_cells += 1
                correct_generalized += int(hit)
    return DowncodingResult(
        records=len(original),
        exact_records=exact,
        attribute_accuracy=correct_cells / total_cells,
        generalized_cell_accuracy=(
            correct_generalized / generalized_cells if generalized_cells else 1.0
        ),
    )
