"""ASCII figure rendering for the experiment harness.

Some of the paper's claims are *curves* — the noise/accuracy crossover of
the Fundamental Law, the n·w·(1−w)ⁿ⁻¹ isolation bell.  The tables carry the
exact numbers; these ASCII charts carry the shape, so the text output of
``pytest benchmarks/`` regenerates the "figures" too, with no plotting
dependency.
"""

from __future__ import annotations

from typing import Sequence


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    title: str = "",
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
    marker: str = "*",
) -> str:
    """Render one (x, y) series as an ASCII scatter/line chart.

    Points are plotted on a ``width x height`` grid scaled to the data
    range; axes carry min/max tick labels.  Intended for monotone-ish
    experiment curves, not general plotting.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4")

    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        grid[row][column] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_tick = f"{y_max:.3g}"
    bottom_tick = f"{y_min:.3g}"
    gutter = max(len(top_tick), len(bottom_tick)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tick = top_tick
        elif row_index == height - 1:
            tick = bottom_tick
        else:
            tick = ""
        lines.append(f"{tick:>{gutter}}|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    left_tick = f"{x_min:.3g}"
    right_tick = f"{x_max:.3g}"
    padding = width - len(left_tick) - len(right_tick)
    lines.append(
        " " * (gutter + 1) + left_tick + " " * max(padding, 1) + right_tick
    )
    caption_parts = [part for part in (y_label and f"y: {y_label}", x_label and f"x: {x_label}") if part]
    if caption_parts:
        lines.append(" " * (gutter + 1) + "; ".join(caption_parts))
    return "\n".join(lines)


def ascii_overlay(
    xs: Sequence[float],
    series: Sequence[tuple[str, Sequence[float], str]],
    title: str = "",
    width: int = 60,
    height: int = 12,
) -> str:
    """Overlay multiple series sharing an x-axis, one marker each.

    ``series`` is a list of ``(label, ys, marker)``; markers appear in a
    legend line below the chart.
    """
    if not series:
        raise ValueError("need at least one series")
    all_ys = [y for _label, ys, _marker in series for y in ys]
    y_min, y_max = min(all_ys), max(all_ys)
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4")

    grid = [[" "] * width for _ in range(height)]
    for _label, ys, marker in series:
        if len(ys) != len(xs):
            raise ValueError("every series must align with xs")
        for x, y in zip(xs, ys):
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker[0]

    lines = []
    if title:
        lines.append(title)
    top_tick, bottom_tick = f"{y_max:.3g}", f"{y_min:.3g}"
    gutter = max(len(top_tick), len(bottom_tick)) + 1
    for row_index, row in enumerate(grid):
        tick = top_tick if row_index == 0 else bottom_tick if row_index == height - 1 else ""
        lines.append(f"{tick:>{gutter}}|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    left_tick, right_tick = f"{x_min:.3g}", f"{x_max:.3g}"
    padding = width - len(left_tick) - len(right_tick)
    lines.append(" " * (gutter + 1) + left_tick + " " * max(padding, 1) + right_tick)
    legend = "  ".join(f"{marker[0]} = {label}" for label, _ys, marker in series)
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)
