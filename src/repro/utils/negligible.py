"""Finite-``n`` renderings of the paper's asymptotic quantities.

The PSO definition (Def. 2.4 in the paper) speaks of predicates whose weight
is a *negligible* function of ``n`` and of attack success probabilities that
must be negligible.  At a concrete dataset size those asymptotics need an
operational reading; this module centralizes it so every experiment uses the
same convention:

* A weight is treated as "negligible at n" when it falls below
  ``n**-negligible_exponent`` (default exponent 2 — strictly below the 1/n
  weight at which a data-independent predicate isolates best).
* The trivial-attacker yardstick is the closed-form isolation probability
  ``n * w * (1 - w)**(n - 1)`` from Section 2.2 of the paper, maximized at
  ``w = 1/n`` where it approaches ``1/e ~ 36.8%``.
"""

from __future__ import annotations

import numpy as np

#: Default exponent c in the finite-n negligibility cutoff n**-c.
DEFAULT_NEGLIGIBLE_EXPONENT = 2.0


def negligible_weight_threshold(n: int, exponent: float = DEFAULT_NEGLIGIBLE_EXPONENT) -> float:
    """Finite-``n`` cutoff under which a predicate weight counts as negligible.

    The paper requires ``w_D(p) = negl(n)``; concretely we use ``n**-c`` with
    ``c`` = ``exponent``.  The default ``c = 2`` sits well below the ``1/n``
    weight at which data-independent isolation peaks, so a predicate passing
    this test cannot be explained by the trivial-attacker phenomenon alone.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent <= 1.0:
        raise ValueError(
            "exponent must exceed 1 so the threshold is below the trivial "
            f"attacker's optimum weight 1/n; got {exponent}"
        )
    return float(n) ** (-exponent)


def isolation_probability(n: int, weight: float) -> float:
    """Probability that a weight-``w`` data-independent predicate isolates.

    This is the paper's Section 2.2 expression ``n·w·(1-w)^(n-1)``: with
    records drawn i.i.d., a predicate of weight ``w`` chosen independently of
    the data matches exactly one of ``n`` records with binomial probability
    Binom(n, w){k=1}.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must lie in [0, 1], got {weight}")
    if weight in (0.0, 1.0):
        return 0.0 if n > 1 or weight == 0.0 else 1.0
    # Compute in log-space for numerical stability at large n.
    log_p = np.log(n) + np.log(weight) + (n - 1) * np.log1p(-weight)
    return float(np.exp(log_p))


def optimal_isolation_weight(n: int) -> float:
    """Weight maximizing the trivial attacker's isolation probability (= 1/n)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1.0 / n


def baseline_isolation_probability(n: int) -> float:
    """Isolation probability of the *best* data-independent predicate.

    Evaluates ``isolation_probability(n, 1/n) = (1 - 1/n)^(n-1)``, which
    decreases towards ``1/e ~ 0.3679`` — the paper's "~37%" benchmark.
    """
    return isolation_probability(n, optimal_isolation_weight(n))


def is_negligible_weight(
    weight: float, n: int, exponent: float = DEFAULT_NEGLIGIBLE_EXPONENT
) -> bool:
    """Whether ``weight`` counts as negligible at dataset size ``n``."""
    return weight <= negligible_weight_threshold(n, exponent)
