"""Parallel Monte-Carlo execution: serial / thread / process backends.

Every estimator in this library is embarrassingly parallel: one master seed
fans out (via the SeedSequence spawning protocol in :mod:`repro.utils.rng`)
into one independent stream per trial, so trials can be evaluated in any
order, on any worker, and reassembled by index.  :func:`parallel_map` is the
single primitive the hot layers build on — ``PSOGame.run(jobs=...)``, the
theorem checks, and the experiment runner all chunk their trial streams
through it.

Backends
--------

``"serial"``
    A plain loop in the calling thread.  Always available; always the
    reference semantics.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  The GIL caps the
    speedup for pure-Python trial bodies, but the backend matters for
    determinism testing (same results, different scheduler) and for
    workloads that release the GIL (NumPy-heavy sampling).
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  On platforms with
    ``fork`` (Linux), the work function and items are published in a
    module-level payload *before* the pool forks, so children inherit them
    by memory copy and nothing user-provided is ever pickled — closures,
    lambdas, and mechanisms holding lambdas all parallelize.  On
    spawn-only platforms the function must survive :mod:`pickle`; when it
    does not, execution degrades gracefully to serial with a warning.
``"auto"``
    ``"process"`` where available, else ``"serial"``.

Determinism
-----------

``parallel_map`` preserves input order in every backend, and the library's
trial bodies are pure functions of their per-trial stream (plus the
key-addressed weight-bound cache in :mod:`repro.core.predicate`, whose
values are pure functions of the cache key).  Consequently ``jobs=1``,
``jobs=N``, and every backend produce bit-identical results for a fixed
master seed.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Recognized executor backends, in documentation order.
BACKENDS = ("auto", "serial", "thread", "process")


def effective_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request into a concrete worker count.

    ``None``/``0`` mean serial; a negative value means "all cores"
    (``os.cpu_count()``); positive values pass through.
    """
    if jobs is None or jobs == 0:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def fork_available() -> bool:
    """Whether the zero-pickle ``fork`` process backend can be used."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_backend(backend: str, jobs: int) -> str:
    """Map ``"auto"`` (and trivial job counts) onto a concrete backend."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
    if jobs <= 1:
        return "serial"
    if backend == "auto":
        return "process" if fork_available() else "serial"
    return backend


def chunk_indices(count: int, chunks: int) -> list[range]:
    """Split ``range(count)`` into at most ``chunks`` contiguous ranges.

    Chunks differ in size by at most one, so workers stay balanced; the
    split is a pure function of ``(count, chunks)``, which keeps the
    work-distribution deterministic.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    chunks = max(1, min(chunks, count) if count else 1)
    base, extra = divmod(count, chunks)
    ranges = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return [r for r in ranges if len(r)]


def chunk_indices_weighted(
    weights: Sequence[float], chunks: int
) -> list[list[int]]:
    """Split ``range(len(weights))`` into at most ``chunks`` balanced groups.

    Equal-size contiguous chunks (:func:`chunk_indices`) balance workers
    only when items cost about the same; sharded reconstruction dispatches
    *heterogeneous* shards (block LPs whose cost grows superlinearly in the
    block size), where one unlucky chunk of big blocks serializes the whole
    join.  This variant runs the classic LPT greedy: items in decreasing
    weight order, each assigned to the currently lightest chunk.  The
    result is a pure function of ``(weights, chunks)`` — ties broken by
    chunk index then item index — so work distribution stays deterministic;
    indices within each chunk are returned sorted so per-chunk execution
    order is stable too.
    """
    count = len(weights)
    if count == 0:
        return []
    chunks = max(1, min(chunks, count))
    if chunks == 1:
        return [list(range(count))]
    values = [float(w) for w in weights]
    if any(w < 0 for w in values):
        raise ValueError("weights must be non-negative")
    # Decreasing weight, index ascending on ties: deterministic LPT order.
    order = sorted(range(count), key=lambda i: (-values[i], i))
    loads = [0.0] * chunks
    groups: list[list[int]] = [[] for _ in range(chunks)]
    for item in order:
        target = min(range(chunks), key=lambda c: (loads[c], c))
        groups[target].append(item)
        loads[target] += values[item]
    return [sorted(group) for group in groups if group]

# The fork backend publishes the work here in the parent immediately before
# creating the pool; forked children inherit it by copy-on-write, so the
# function and items are never pickled (only small index lists are).
_FORK_PAYLOAD: dict[str, object] = {}

# One long-lived fork pool per parent process, shared by every caller that
# wants persistent workers (the service's process execution backend).  Unlike
# parallel_map's per-call pools, work here *is* pickled per call — callers
# ship small payloads (packed masks, generator states) and amortize the fork
# cost across the process lifetime instead of per batch.
_SHARED_EXECUTOR: ProcessPoolExecutor | None = None
_SHARED_EXECUTOR_LOCK = threading.Lock()


def default_pool_workers() -> int:
    """Worker count for the shared fork executor: never below 2, so the
    pool exercises real cross-process dispatch even on one-core boxes."""
    return max(2, os.cpu_count() or 1)


def shared_fork_executor(max_workers: int | None = None) -> ProcessPoolExecutor:
    """The process-wide persistent fork :class:`ProcessPoolExecutor`.

    Created lazily on first use and reused for every subsequent call (the
    ``max_workers`` of the first call wins).  Callers should acquire it as
    early as possible — ideally before spawning serving threads — because
    forking a heavily threaded parent risks inheriting held locks.  Raises
    :class:`RuntimeError` on platforms without ``fork``; callers are
    expected to degrade to in-process execution.
    """
    global _SHARED_EXECUTOR
    if not fork_available():
        raise RuntimeError("fork start method unavailable; no shared fork executor")
    with _SHARED_EXECUTOR_LOCK:
        if _SHARED_EXECUTOR is None:
            context = multiprocessing.get_context("fork")
            executor = ProcessPoolExecutor(
                max_workers=max_workers or default_pool_workers(),
                mp_context=context,
            )
            # Touch every worker now (a no-op round trip) so the forks
            # happen immediately, not at first real submit mid-traffic.
            executor.submit(int, 0).result()
            _SHARED_EXECUTOR = executor
        return _SHARED_EXECUTOR


def shutdown_shared_executor() -> None:
    """Tear down the shared fork executor (tests and clean shutdown)."""
    global _SHARED_EXECUTOR
    with _SHARED_EXECUTOR_LOCK:
        executor, _SHARED_EXECUTOR = _SHARED_EXECUTOR, None
    if executor is not None:
        executor.shutdown(wait=True, cancel_futures=True)


def _call_payload_indices(indices: Sequence[int]) -> list:
    """Worker body for the fork backend: apply the inherited fn to a chunk."""
    fn = _FORK_PAYLOAD["fn"]
    items = _FORK_PAYLOAD["items"]
    return [fn(items[i]) for i in indices]  # type: ignore[operator,index]


def _call_picklable_chunk(payload: tuple) -> list:
    """Worker body for the spawn process backend: (fn, items) arrive pickled."""
    fn, chunk = payload
    return [fn(item) for item in chunk]


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


def _reassemble(chunk_results: Sequence[list], groups: Sequence[Sequence[int]], count: int) -> list:
    """Put per-chunk results back in input order (chunks may interleave)."""
    out: list = [None] * count
    for group, results in zip(groups, chunk_results):
        for index, result in zip(group, results):
            out[index] = result
    return out


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    backend: str = "auto",
    chunks_per_worker: int = 4,
    weights: Sequence[float] | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, possibly across workers; order preserved.

    Args:
        fn: the work function.  Need not be picklable on fork platforms.
        items: the inputs; consumed eagerly.
        jobs: worker count (see :func:`effective_jobs`; ``1`` = serial).
        backend: one of :data:`BACKENDS`.
        chunks_per_worker: work-splitting granularity for process pools
            (more chunks = better balance, more dispatch overhead).
        weights: optional per-item cost estimates.  When given, process
            chunks are balanced by total weight (:func:`chunk_indices_weighted`)
            instead of item count — the difference between a clean scaling
            curve and one straggler chunk when items are heterogeneous
            (e.g. reconstruction shards of very different block sizes).
            Results still return in input order regardless.

    Returns:
        ``[fn(item) for item in items]`` — the serial semantics, whatever
        the backend.
    """
    items = list(items)
    if weights is not None and len(weights) != len(items):
        raise ValueError(
            f"got {len(weights)} weights for {len(items)} items"
        )
    jobs = min(effective_jobs(jobs), max(1, len(items)))
    backend = resolve_backend(backend, jobs)
    if backend == "serial" or len(items) <= 1:
        return _serial_map(fn, items)

    if backend == "thread":
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(fn, items))

    # backend == "process"
    if weights is None:
        ranges: Sequence[Sequence[int]] = chunk_indices(
            len(items), jobs * max(1, chunks_per_worker)
        )
    else:
        ranges = chunk_indices_weighted(weights, jobs * max(1, chunks_per_worker))
    if fork_available():
        context = multiprocessing.get_context("fork")
        _FORK_PAYLOAD["fn"] = fn
        _FORK_PAYLOAD["items"] = items
        try:
            with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
                chunk_results = list(pool.map(_call_payload_indices, ranges))
        except (BrokenProcessPool, pickle.PicklingError) as error:
            # Results (or internals) failed to cross the process boundary;
            # the work itself is sound, so redo it in-process.
            warnings.warn(
                f"process backend failed ({error!r}); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return _serial_map(fn, items)
        finally:
            _FORK_PAYLOAD.clear()
        return _reassemble(chunk_results, ranges, len(items))

    # Spawn-only platform: the function and items must survive pickling.
    try:
        pickle.dumps((fn, items))
    except Exception as error:  # noqa: BLE001 — pickling raises many types
        warnings.warn(
            f"work is not picklable ({error!r}) and fork is unavailable; "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items)
    payloads = [(fn, [items[i] for i in r]) for r in ranges]
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunk_results = list(pool.map(_call_picklable_chunk, payloads))
    except (BrokenProcessPool, pickle.PicklingError) as error:
        warnings.warn(
            f"process backend failed ({error!r}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items)
    return _reassemble(chunk_results, ranges, len(items))
