"""Statistical helpers used by every Monte-Carlo experiment.

All empirical claims in the reproduction ("the attack succeeds with
probability ~37%", "the mechanism's ratio is bounded by e^eps") are reported
as binomial proportions with confidence intervals, never as bare point
estimates.  Two interval constructions are provided:

* :func:`wilson_interval` — the default; good coverage at moderate n.
* :func:`clopper_pearson_interval` — exact (conservative); used by the DP
  verifier where one-sided guarantees matter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class BinomialEstimate:
    """A binomial proportion estimate with a confidence interval.

    Attributes:
        successes: number of successes observed.
        trials: number of independent trials.
        estimate: the point estimate ``successes / trials``.
        lower: lower confidence bound.
        upper: upper confidence bound.
        confidence: the confidence level the bounds were computed at.
    """

    successes: int
    trials: int
    estimate: float
    lower: float
    upper: float
    confidence: float

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if not 0 <= self.successes <= self.trials:
            raise ValueError("successes must lie in [0, trials]")

    def contains(self, probability: float) -> bool:
        """Return whether ``probability`` lies inside the interval."""
        return self.lower <= probability <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"({self.successes}/{self.trials})"
        )


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because it behaves sensibly at
    proportions near 0 and 1, which is exactly where privacy experiments live
    (attack success ~0 for secure mechanisms, ~1 for broken ones).
    """
    _validate_counts(successes, trials, confidence)
    z = float(_scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    margin = (z / denom) * np.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    return max(0.0, center - margin), min(1.0, center + margin)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Exact (Clopper-Pearson) binomial interval.

    Conservative: the true coverage is at least ``confidence``.  Used where a
    guaranteed one-sided bound is needed, e.g. upper-bounding an attacker's
    success probability when zero successes were observed.
    """
    _validate_counts(successes, trials, confidence)
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = float(_scipy_stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    if successes == trials:
        upper = 1.0
    else:
        upper = float(_scipy_stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    return lower, upper


def estimate_proportion(
    successes: int,
    trials: int,
    confidence: float = 0.95,
    method: str = "wilson",
) -> BinomialEstimate:
    """Build a :class:`BinomialEstimate` using the requested interval method."""
    if method == "wilson":
        lower, upper = wilson_interval(successes, trials, confidence)
    elif method == "clopper-pearson":
        lower, upper = clopper_pearson_interval(successes, trials, confidence)
    else:
        raise ValueError(f"unknown interval method: {method!r}")
    return BinomialEstimate(
        successes=successes,
        trials=trials,
        estimate=successes / trials,
        lower=lower,
        upper=upper,
        confidence=confidence,
    )


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cdf)`` pairs for plotting/threshold lookups."""
    values = np.sort(np.asarray(samples, dtype=float))
    if values.size == 0:
        raise ValueError("need at least one sample")
    cdf = np.arange(1, values.size + 1) / values.size
    return values, cdf


def _validate_counts(successes: int, trials: int, confidence: float) -> None:
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
