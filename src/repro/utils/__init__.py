"""Shared substrate utilities: RNG plumbing, statistics, tables, asymptotics.

Everything stochastic in this library flows through :func:`ensure_rng`, so
experiments are reproducible from a single integer seed.  The statistics
helpers provide the confidence intervals used by every Monte-Carlo
experiment, :mod:`repro.utils.parallel` fans trial loops out across
workers without perturbing those seeds, and :mod:`repro.utils.tables`
renders the paper-vs-measured tables printed by the benchmark harness.
"""

from repro.utils.negligible import (
    isolation_probability,
    negligible_weight_threshold,
    optimal_isolation_weight,
)
from repro.utils.parallel import effective_jobs, parallel_map
from repro.utils.rng import RngSeed, derive_rng, ensure_rng, spawn_rngs
from repro.utils.stats import (
    BinomialEstimate,
    clopper_pearson_interval,
    empirical_cdf,
    estimate_proportion,
    wilson_interval,
)
from repro.utils.tables import Table, format_table

__all__ = [
    "BinomialEstimate",
    "RngSeed",
    "Table",
    "clopper_pearson_interval",
    "derive_rng",
    "effective_jobs",
    "empirical_cdf",
    "ensure_rng",
    "estimate_proportion",
    "parallel_map",
    "format_table",
    "isolation_probability",
    "negligible_weight_threshold",
    "optimal_isolation_weight",
    "spawn_rngs",
    "wilson_interval",
]
