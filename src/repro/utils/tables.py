"""Plain-text table rendering for the experiment harness.

Every experiment ends by printing a "paper says / we measured" table.  We
render these as aligned ASCII so the output of ``pytest benchmarks/`` and the
example scripts reads like the tables in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """A small column-aligned text table.

    Usage::

        table = Table(["n", "queries", "accuracy"], title="E2: LP reconstruction")
        table.add_row([128, 1280, "0.993"])
        print(table.render())
    """

    headers: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row; values are stringified with :func:`format_cell`."""
        row = [format_cell(value) for value in values]
        if len(row) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(row)}")
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as aligned ASCII text."""
        header_cells = [str(h) for h in self.headers]
        widths = [len(h) for h in header_cells]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        separator = "  ".join("-" * w for w in widths)
        parts: list[str] = []
        if self.title:
            parts.append(self.title)
            parts.append("=" * max(len(self.title), len(separator)))
        parts.append(line(header_cells))
        parts.append(separator)
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()


def format_cell(value: object) -> str:
    """Stringify a table cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Iterable[object]], title: str = "") -> str:
    """One-shot convenience wrapper around :class:`Table`."""
    table = Table(list(headers), title=title)
    for row in rows:
        table.add_row(row)
    return table.render()
