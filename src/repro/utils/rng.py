"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
already-constructed :class:`numpy.random.Generator`, or ``None`` (fresh
entropy).  :func:`ensure_rng` normalizes all three into a ``Generator`` so
call sites never touch NumPy's legacy global state.

Independent sub-streams (e.g. one per Monte-Carlo trial) are derived with
:func:`spawn_rngs`, which uses the SeedSequence spawning protocol and is
therefore statistically independent regardless of how many streams are drawn.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything acceptable as a source of randomness throughout the library.
RngSeed = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngSeed = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged (shared stream); passing an
    ``int`` or ``SeedSequence`` builds a fresh deterministic generator;
    passing ``None`` builds a generator from OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn_rngs(seed: RngSeed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    The derivation is deterministic given an integer seed, which is what the
    experiment harness relies on: one master seed fans out into one stream
    per trial without correlated streams or manual seed arithmetic.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # A Generator cannot be re-spawned deterministically; draw child
        # seeds from it instead.  This keeps the "shared stream" semantics.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_rng(seed: RngSeed, *labels: object) -> np.random.Generator:
    """Derive a named sub-stream from ``seed``.

    ``labels`` are hashed into the seed material, so
    ``derive_rng(0, "mechanism")`` and ``derive_rng(0, "adversary")`` are
    independent streams that regenerate exactly across runs.  Useful when a
    component needs its own stream but only a master seed is available.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    base = seed if isinstance(seed, (int, np.integer)) else 0
    # Stable, platform-independent label hashing (built-in hash() is salted).
    label_material = [_stable_hash(repr(label)) for label in labels]
    sequence = np.random.SeedSequence([int(base) & 0xFFFFFFFF, *label_material])
    return np.random.default_rng(sequence)


def _stable_hash(text: str) -> int:
    """FNV-1a hash of ``text`` truncated to 32 bits (deterministic across runs)."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value
