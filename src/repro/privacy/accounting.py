"""One accountant hierarchy for every layer of the reproduction.

Section 1.1 of the paper singles out closure under composition as the
property separating differential privacy from k-anonymity; this module is
where that property lives — once.  It provides:

* :class:`PrivacySpend` — one (epsilon, delta) charge;
* :func:`basic_composition` / :func:`advanced_composition` — the Theorem
  2.8/2.9 bounds;
* :class:`BudgetExhausted` — the refusal raised by *every* budget in the
  repo (mechanism-level, analyst-level, service-level);
* :class:`PrivacyAccountant` — a thread-safe single ledger with
  all-or-nothing :meth:`~PrivacyAccountant.reserve` /
  :meth:`~PrivacyAccountant.rollback` semantics and an optional query-count
  budget;
* :class:`ServiceAccountant` and its :class:`BasicAccountant` /
  :class:`AdvancedAccountant` rules — the multi-analyst extension that
  keeps one :class:`PrivacyAccountant` sub-ledger per analyst and adds a
  global cap across analysts.

Before this layer existed, ``repro.dp.composition`` and
``repro.service.accountant`` each carried their own copy of the ledger
machinery and ``repro.queries.mechanism.BudgetedAnswerer`` kept a private
counter; Cohen–Nissim's *Linear Program Reconstruction in Practice* shows
that exactly this kind of drift between accounting layers is where
production privacy bugs live.  The old module paths have been removed;
this module is the single home.
"""

from __future__ import annotations

import hashlib
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "AdvancedAccountant",
    "BasicAccountant",
    "BudgetExhausted",
    "BudgetLease",
    "PrivacyAccountant",
    "PrivacySpend",
    "ServiceAccountant",
    "ShardedAccountant",
    "advanced_composition",
    "basic_composition",
    "stable_shard",
]

#: Slack for floating-point accumulation in budget comparisons.
_EPSILON_TOLERANCE = 1e-12
_DELTA_TOLERANCE = 1e-15


@dataclass(frozen=True)
class PrivacySpend:
    """One (epsilon, delta) charge with an optional label for auditing."""

    epsilon: float
    delta: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not 0 <= self.delta < 1:
            raise ValueError("delta must lie in [0, 1)")


def basic_composition(spends: list[PrivacySpend]) -> tuple[float, float]:
    """Sequential (basic) composition: epsilons and deltas add."""
    if not spends:
        return 0.0, 0.0
    return (
        float(sum(s.epsilon for s in spends)),
        float(sum(s.delta for s in spends)),
    )


def advanced_composition(
    epsilon: float, k: int, delta_prime: float
) -> tuple[float, float]:
    """Advanced composition of ``k`` epsilon-DP mechanisms.

    Returns the (epsilon', k*0 + delta') guarantee with
    ``epsilon' = sqrt(2 k ln(1/delta')) * epsilon + k * epsilon *
    (e^epsilon - 1)`` — the sqrt(k) scaling that makes high-query-count
    DP analyses feasible at all.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if k <= 0:
        raise ValueError("k must be positive")
    if not 0 < delta_prime < 1:
        raise ValueError("delta_prime must lie in (0, 1)")
    epsilon_total = float(
        np.sqrt(2.0 * k * np.log(1.0 / delta_prime)) * epsilon
        + k * epsilon * (np.exp(epsilon) - 1.0)
    )
    return epsilon_total, float(delta_prime)


class BudgetExhausted(RuntimeError):
    """A charge was refused: answering would exceed a privacy budget.

    Attributes:
        analyst: the session whose charge was refused ("" for a
            single-ledger accountant).
        scope: which budget would have been exceeded — ``"analyst"``,
            ``"global"``, or ``"queries"`` at the service layer,
            ``"epsilon"``, ``"delta"``, or ``"queries"`` for a plain
            :class:`PrivacyAccountant`.
        requested: the epsilon (or query count, for ``"queries"``) asked for.
        budget: the limit that would have been crossed.
        spent: the ledger total before the refused charge.
    """

    def __init__(
        self,
        message: str,
        *,
        analyst: str = "",
        scope: str = "",
        requested: float = 0.0,
        budget: float = 0.0,
        spent: float = 0.0,
    ):
        super().__init__(message)
        self.analyst = analyst
        self.scope = scope
        self.requested = requested
        self.budget = budget
        self.spent = spent


class PrivacyAccountant:
    """A thread-safe (epsilon, delta) ledger with all-or-nothing charges.

    The ledger is stored as ``{epsilon: count}`` aggregates, so budget
    checks stay O(#distinct epsilon) however many queries are charged; an
    ordered :attr:`spends` trail is additionally recorded unless
    ``record_entries=False`` (the high-volume configuration used for
    per-analyst sub-ledgers and :class:`BudgetedAnswerer`).

    Composition rule: :meth:`composed_epsilon` (basic composition here) is
    the single hook subclasses override; a bound ``composition=`` callable
    may be injected instead, which is how :class:`ServiceAccountant` makes
    every per-analyst sub-ledger compose by the *service's* rule without
    subclassing.

    Charging surfaces:

    * :meth:`spend` — the classic single-charge API (kept from the original
      ``repro.dp.composition`` accountant);
    * :meth:`reserve` / :meth:`rollback` — the all-or-nothing batch API the
      query layers use: a refused reservation records nothing, and a
      reservation whose work later fails can be rolled back.
    """

    def __init__(
        self,
        epsilon_budget: float | None = None,
        delta_budget: float = 0.0,
        max_queries: int | None = None,
        *,
        composition: "Callable[[dict[float, int]], float] | None" = None,
        record_entries: bool = True,
    ):
        if epsilon_budget is not None and epsilon_budget <= 0:
            raise ValueError("epsilon_budget must be positive when set")
        if delta_budget < 0 or delta_budget >= 1:
            raise ValueError("delta_budget must lie in [0, 1)")
        if max_queries is not None and max_queries <= 0:
            raise ValueError("max_queries must be positive when set")
        self.epsilon_budget = epsilon_budget
        self.delta_budget = delta_budget
        self.max_queries = max_queries
        self._composition = composition
        self._record_entries = record_entries
        self._entries: list[PrivacySpend] = []
        self._counts: dict[float, int] = {}
        self._delta_total = 0.0
        self._queries = 0
        self._lock = threading.RLock()

    # -- composition rule ---------------------------------------------------

    def composed_epsilon(self, spends: dict[float, int]) -> float:
        """Total epsilon of an ``{epsilon: count}`` ledger under this rule.

        Basic composition here; subclasses override, and the
        ``composition=`` constructor hook takes precedence when given.
        """
        return float(sum(eps * count for eps, count in spends.items()))

    def _composed(self, counts: dict[float, int]) -> float:
        rule = self._composition or self.composed_epsilon
        return rule(counts)

    # -- read access --------------------------------------------------------

    @property
    def spends(self) -> tuple[PrivacySpend, ...]:
        """All charges so far, in order (empty when entry recording is off)."""
        with self._lock:
            return tuple(self._entries)

    @property
    def queries_charged(self) -> int:
        """Number of unit charges recorded so far."""
        with self._lock:
            return self._queries

    @property
    def epsilon_composed(self) -> float:
        """Composed epsilon of the ledger under this accountant's rule."""
        with self._lock:
            return float(self._composed(self._counts))

    def total(self) -> tuple[float, float]:
        """Current (epsilon, delta) under basic composition."""
        with self._lock:
            if self._record_entries:
                return basic_composition(self._entries)
            epsilon = float(sum(eps * count for eps, count in self._counts.items()))
            return epsilon, float(self._delta_total)

    def remaining_epsilon(self) -> float | None:
        """Unspent epsilon, or ``None`` for an unlimited accountant."""
        if self.epsilon_budget is None:
            return None
        return self.epsilon_budget - self.total()[0]

    def advanced_total(self, delta_prime: float = 1e-6) -> tuple[float, float]:
        """The advanced-composition view of homogeneous spends.

        Only valid when all recorded spends are pure and share one epsilon;
        raises otherwise (heterogeneous advanced composition is out of
        scope for this reproduction).
        """
        with self._lock:
            if not self._queries:
                return 0.0, 0.0
            if len(self._counts) != 1 or self._delta_total > 0:
                raise ValueError(
                    "advanced_total requires homogeneous pure-DP spends"
                )
            ((epsilon, k),) = tuple(self._counts.items())
        return advanced_composition(epsilon, k, delta_prime)

    # -- charging -----------------------------------------------------------

    def spend(self, epsilon: float, delta: float = 0.0, label: str = "") -> PrivacySpend:
        """Record one charge; raises :class:`BudgetExhausted` when over budget."""
        charge = PrivacySpend(epsilon=epsilon, delta=delta, label=label)
        self.reserve(1, epsilon, delta, label=label)
        return charge

    def reserve(
        self,
        count: int,
        epsilon: float,
        delta: float = 0.0,
        *,
        label: str = "",
        analyst: str = "",
    ) -> None:
        """Atomically charge ``count`` queries at (``epsilon``, ``delta``) each.

        All-or-nothing: if any budget (query count, epsilon, delta) would be
        exceeded, raises :class:`BudgetExhausted` and records nothing.  The
        optional ``analyst`` only decorates refusal messages — the
        multi-analyst bookkeeping lives in :class:`ServiceAccountant`.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not 0 <= delta < 1:
            raise ValueError("delta must lie in [0, 1)")
        if count == 0:
            return
        count = int(count)
        prefix = f"analyst {analyst!r}: " if analyst else ""
        with self._lock:
            if (
                self.max_queries is not None
                and self._queries + count > self.max_queries
            ):
                raise BudgetExhausted(
                    f"{prefix}{count} more queries would exceed the query "
                    f"budget of {self.max_queries} "
                    f"({self._queries} already answered)",
                    analyst=analyst,
                    scope="queries",
                    requested=count,
                    budget=self.max_queries,
                    spent=self._queries,
                )
            if self.epsilon_budget is not None:
                candidate = dict(self._counts)
                candidate[epsilon] = candidate.get(epsilon, 0) + count
                before = self._composed(self._counts)
                after = self._composed(candidate)
                if after > self.epsilon_budget + _EPSILON_TOLERANCE:
                    if analyst:
                        message = (
                            f"analyst {analyst!r}: charging {count} x eps="
                            f"{epsilon} would total {after:.4f} > "
                            f"budget {self.epsilon_budget}"
                        )
                        scope = "analyst"
                    else:
                        what = (
                            f"spend of eps={epsilon}"
                            if count == 1
                            else f"charging {count} x eps={epsilon}"
                        )
                        message = (
                            f"privacy budget exceeded: {what} would total "
                            f"{after:.4f} > budget {self.epsilon_budget}"
                        )
                        scope = "epsilon"
                    raise BudgetExhausted(
                        message,
                        analyst=analyst,
                        scope=scope,
                        requested=after - before,
                        budget=self.epsilon_budget,
                        spent=before,
                    )
            total_delta = self._delta_total + delta * count
            if total_delta > self.delta_budget + _DELTA_TOLERANCE:
                raise BudgetExhausted(
                    f"{prefix}delta budget exceeded: total {total_delta} > "
                    f"{self.delta_budget}",
                    analyst=analyst,
                    scope="delta",
                    requested=delta * count,
                    budget=self.delta_budget,
                    spent=self._delta_total,
                )
            self._counts[epsilon] = self._counts.get(epsilon, 0) + count
            self._delta_total = total_delta
            self._queries += count
            if self._record_entries:
                entry = PrivacySpend(epsilon=epsilon, delta=delta, label=label)
                self._entries.extend([entry] * count)

    def rollback(self, count: int, epsilon: float, delta: float = 0.0) -> None:
        """Return a reservation to the budget (the work was never done).

        The inverse of :meth:`reserve` for the same ``(count, epsilon,
        delta)``; only the most recent reservations may be rolled back, so
        callers pair each rollback with their own failed reserve.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        count = int(count)
        with self._lock:
            recorded = self._counts.get(epsilon, 0)
            if recorded < count or self._queries < count:
                raise ValueError(
                    f"cannot roll back {count} x eps={epsilon}: only "
                    f"{recorded} such charges recorded"
                )
            if recorded == count:
                del self._counts[epsilon]
            else:
                self._counts[epsilon] = recorded - count
            self._delta_total = max(0.0, self._delta_total - delta * count)
            self._queries -= count
            if self._record_entries:
                del self._entries[-count:]

    def __repr__(self) -> str:
        epsilon, delta = self.total()
        return (
            f"{type(self).__name__}(spent=({epsilon:.4f}, {delta:.2e}), "
            f"budget={self.epsilon_budget})"
        )


class ServiceAccountant(PrivacyAccountant, ABC):
    """Per-analyst and global epsilon ledgers with all-or-nothing charges.

    The multi-analyst extension of :class:`PrivacyAccountant`: each analyst
    gets an entry-free sub-ledger whose ``composition=`` hook is bound to
    *this* accountant's :meth:`composed_epsilon`, so per-analyst budgets
    compose by the subclass rule with no duplicated math.  The global
    ledger composes *basically* across analysts — the private data answers
    all of them, so their losses add — and every charge is also mirrored
    into the inherited single ledger, which therefore reports the basic
    (epsilon, delta) total across the whole service via :meth:`total`.

    Subclasses supply the composition rule through :meth:`composed_epsilon`.
    """

    def __init__(
        self,
        per_analyst_epsilon: float | None = None,
        global_epsilon: float | None = None,
        max_queries_per_analyst: int | None = None,
    ):
        if per_analyst_epsilon is not None and per_analyst_epsilon <= 0:
            raise ValueError("per_analyst_epsilon must be positive when set")
        if global_epsilon is not None and global_epsilon <= 0:
            raise ValueError("global_epsilon must be positive when set")
        if max_queries_per_analyst is not None and max_queries_per_analyst <= 0:
            raise ValueError("max_queries_per_analyst must be positive when set")
        super().__init__(record_entries=False)
        self.per_analyst_epsilon = per_analyst_epsilon
        self.global_epsilon = global_epsilon
        self.max_queries_per_analyst = max_queries_per_analyst
        self._ledgers: dict[str, PrivacyAccountant] = {}

    @abstractmethod
    def composed_epsilon(self, spends: dict[float, int]) -> float:
        """Total epsilon of ``{epsilon: count}`` under this rule."""

    def _ledger_for(self, analyst: str) -> PrivacyAccountant:
        ledger = self._ledgers.get(analyst)
        if ledger is None:
            ledger = PrivacyAccountant(
                epsilon_budget=self.per_analyst_epsilon,
                max_queries=self.max_queries_per_analyst,
                composition=self.composed_epsilon,
                record_entries=False,
            )
            self._ledgers[analyst] = ledger
        return ledger

    def analyst_queries(self, analyst: str) -> int:
        """Queries charged to ``analyst`` so far."""
        with self._lock:
            ledger = self._ledgers.get(analyst)
            return ledger.queries_charged if ledger is not None else 0

    def analyst_epsilon(self, analyst: str) -> float:
        """``analyst``'s composed epsilon so far."""
        with self._lock:
            ledger = self._ledgers.get(analyst)
            return ledger.epsilon_composed if ledger is not None else 0.0

    def global_spent(self) -> float:
        """Composed epsilon across all analysts (basic across sessions)."""
        with self._lock:
            return sum(ledger.epsilon_composed for ledger in self._ledgers.values())

    def remaining_epsilon(self, analyst: str) -> float | None:
        """Unspent per-analyst epsilon, or ``None`` for an unlimited ledger."""
        if self.per_analyst_epsilon is None:
            return None
        return self.per_analyst_epsilon - self.analyst_epsilon(analyst)

    def charge(self, analyst: str, count: int, epsilon_per_query: float) -> None:
        """Atomically charge ``count`` queries at ``epsilon_per_query`` each.

        All-or-nothing: if any budget (query count, per-analyst epsilon,
        global epsilon) would be exceeded, raises :class:`BudgetExhausted`
        and records nothing.  ``epsilon_per_query`` may be 0 for non-DP
        mechanisms, in which case only the query-count budget can refuse.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if epsilon_per_query < 0:
            raise ValueError("epsilon_per_query must be non-negative")
        if count == 0:
            return
        with self._lock:
            ledger = self._ledger_for(analyst)
            before = ledger.epsilon_composed
            ledger.reserve(count, epsilon_per_query, analyst=analyst)
            after = ledger.epsilon_composed
            if self.global_epsilon is not None:
                grand = sum(
                    led.epsilon_composed for led in self._ledgers.values()
                )
                if grand > self.global_epsilon + _EPSILON_TOLERANCE:
                    ledger.rollback(count, epsilon_per_query)
                    raise BudgetExhausted(
                        f"global budget: charging analyst {analyst!r} {count} x "
                        f"eps={epsilon_per_query} would total "
                        f"{grand:.4f} > budget {self.global_epsilon}",
                        analyst=analyst,
                        scope="global",
                        requested=after - before,
                        budget=self.global_epsilon,
                        spent=grand - (after - before),
                    )
            # Mirror into the inherited single ledger (no budgets attached)
            # so the service reports a basic global (epsilon, delta) total.
            super().reserve(count, epsilon_per_query)

    def refund(self, analyst: str, count: int, epsilon_per_query: float) -> None:
        """Return a charge to the budgets (the inverse of :meth:`charge`).

        For callers whose work fails *after* a successful charge — e.g. a
        synthetic release whose generation raises.  Like
        :meth:`PrivacyAccountant.rollback`, only the most recent charges of
        the same shape may be refunded.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        with self._lock:
            ledger = self._ledgers.get(analyst)
            if ledger is None:
                raise ValueError(f"no charges recorded for analyst {analyst!r}")
            ledger.rollback(count, epsilon_per_query)
            super().rollback(count, epsilon_per_query)

    def lease(self, analyst: str, count: int, epsilon_per_query: float) -> "BudgetLease":
        """Charge now, with a typed handle to roll the charge back.

        The serve pipeline's ``BudgetReserve`` stage contract: the charge
        lands atomically (identical verdicts to :meth:`charge`), and the
        returned :class:`BudgetLease` is either committed once the request
        is actually served or rolled back if a later stage fails — no
        budget is ever burned for an answer that was never released.
        """
        return BudgetLease.acquire(self, analyst, count, epsilon_per_query)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(global_spent={self.global_spent():.4f}, "
            f"per_analyst_budget={self.per_analyst_epsilon}, "
            f"global_budget={self.global_epsilon})"
        )


class BudgetLease:
    """A held (not yet settled) budget charge: the serve-stage contract.

    ``acquire`` performs the all-or-nothing charge immediately — so refusal
    points and :class:`BudgetExhausted` verdicts are bit-identical to a
    plain ``charge`` — but hands back an object that must be *settled*:
    :meth:`commit` once the answers were actually released, or
    :meth:`rollback` to refund the charge when a later pipeline stage
    (mechanism execution, cache insert, audit append) raises.  Works
    against any accountant exposing ``charge``/``refund`` with the service
    signature (:class:`ServiceAccountant` and :class:`ShardedAccountant`).

    Settling is idempotent and single-shot: a committed lease refuses to
    roll back, and a rolled-back lease refunds exactly once.
    """

    __slots__ = ("accountant", "analyst", "count", "epsilon_per_query", "_state")

    _HELD, _COMMITTED, _ROLLED_BACK = "held", "committed", "rolled_back"

    def __init__(self, accountant, analyst: str, count: int, epsilon_per_query: float):
        self.accountant = accountant
        self.analyst = analyst
        self.count = int(count)
        self.epsilon_per_query = float(epsilon_per_query)
        self._state = self._HELD

    @classmethod
    def acquire(
        cls, accountant, analyst: str, count: int, epsilon_per_query: float
    ) -> "BudgetLease":
        """Charge ``count`` queries at ``epsilon_per_query`` and hold them."""
        accountant.charge(analyst, count, epsilon_per_query)
        return cls(accountant, analyst, count, epsilon_per_query)

    @property
    def settled(self) -> bool:
        """Whether the lease has been committed or rolled back."""
        return self._state != self._HELD

    @property
    def committed(self) -> bool:
        """Whether the charge was committed (answers released)."""
        return self._state == self._COMMITTED

    def commit(self) -> None:
        """Finalize the charge; after this, rollback refuses."""
        if self._state == self._ROLLED_BACK:
            raise RuntimeError("cannot commit a rolled-back budget lease")
        self._state = self._COMMITTED

    def rollback(self) -> None:
        """Refund the held charge (idempotent; refuses after commit)."""
        if self._state == self._COMMITTED:
            raise RuntimeError("cannot roll back a committed budget lease")
        if self._state == self._ROLLED_BACK:
            return
        self._state = self._ROLLED_BACK
        self.accountant.refund(self.analyst, self.count, self.epsilon_per_query)

    def __repr__(self) -> str:
        return (
            f"BudgetLease(analyst={self.analyst!r}, count={self.count}, "
            f"epsilon_per_query={self.epsilon_per_query}, state={self._state!r})"
        )


class BasicAccountant(ServiceAccountant):
    """Basic composition: epsilons add, the worst-case-safe ledger."""

    composed_epsilon = PrivacyAccountant.composed_epsilon


class AdvancedAccountant(ServiceAccountant):
    """Advanced composition: each homogeneous epsilon group pays the
    ``sqrt(2 k ln(1/delta')) * eps + k eps (e^eps - 1)`` bound of
    :func:`advanced_composition`, and groups with distinct epsilons add
    (basic across groups).  Each group carries the configured
    ``delta_prime``; the resulting delta is reported, not budgeted — the
    reproduction's budgets are epsilon-denominated.
    """

    def __init__(
        self,
        per_analyst_epsilon: float | None = None,
        global_epsilon: float | None = None,
        max_queries_per_analyst: int | None = None,
        delta_prime: float = 1e-6,
    ):
        super().__init__(per_analyst_epsilon, global_epsilon, max_queries_per_analyst)
        if not 0 < delta_prime < 1:
            raise ValueError("delta_prime must lie in (0, 1)")
        self.delta_prime = float(delta_prime)

    def composed_epsilon(self, spends: dict[float, int]) -> float:
        total = 0.0
        for eps, count in spends.items():
            if eps == 0.0 or count == 0:
                continue
            # Advanced composition only helps for k > 1; a single spend is
            # exactly eps, and the bound would be looser.
            if count == 1:
                total += eps
            else:
                advanced, _delta = advanced_composition(eps, count, self.delta_prime)
                total += min(advanced, eps * count)
        return float(total)


def stable_shard(name: str, shards: int) -> int:
    """Deterministic, process-independent ``name -> shard`` assignment.

    BLAKE2b of the UTF-8 name reduced mod ``shards`` — no per-process hash
    seed, so the same analyst lands on the same shard in every run, every
    worker, and every test, which is what lets sharded components promise
    bit-identical per-analyst behavior.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % shards


class _EpsilonLease:
    """One shard's leased slice of the global epsilon budget.

    A strictly *leaf* lock: consumed and refilled under its own mutex and
    never held while any other lock is acquired, so lease traffic can never
    participate in a lock cycle.  The balance is pure admission credit —
    the authoritative spend always lives in the per-analyst ledgers.
    """

    __slots__ = ("_lock", "balance")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.balance = 0.0

    def consume(self, amount: float) -> bool:
        """Atomically deduct ``amount`` if covered; False means reconcile."""
        with self._lock:
            if amount <= self.balance:
                self.balance -= amount
                return True
            return False

    def deposit(self, amount: float) -> None:
        with self._lock:
            self.balance += amount

    def drain(self) -> float:
        """Zero the balance, returning what was outstanding."""
        with self._lock:
            outstanding, self.balance = self.balance, 0.0
            return outstanding


#: Shard-count default for :class:`ShardedAccountant` (and the sharded
#: service front end, which mirrors it).
DEFAULT_SHARDS = 16

#: Composition rules a :class:`ShardedAccountant` shard can be built with.
SHARD_RULES = ("basic", "advanced")


class ShardedAccountant:
    """``S`` independent service sub-ledgers under one exact global cap.

    The scaling problem with :class:`ServiceAccountant` is its single
    re-entrant lock: every fresh query from every analyst serializes on it.
    This accountant hash-partitions analysts across ``shards`` independent
    :class:`ServiceAccountant` instances (via :func:`stable_shard`), so
    per-analyst and per-shard bookkeeping contend only within a shard — the
    request hot path never takes a global lock.

    The one genuinely global constraint — ``global_epsilon`` across all
    analysts — is enforced by *epsilon leases*: each shard holds a credit
    balance pre-authorized by a broker, charges are debited against it
    locally, and only when a shard's credit runs dry does it take the
    broker lock, reclaim every outstanding lease, and re-run the **exact**
    single-ledger check (the same ordered float sum over per-analyst
    composed epsilons, the same tolerance, the same refusal message).
    Refusals therefore only ever happen on the exact path, and the broker
    grants credit strictly within ``global_epsilon`` (no tolerance), so:

    * a charge accepted from a lease would also have been accepted by the
      single ledger (the lease invariant keeps the true total <= budget);
    * a refused charge raises a :class:`BudgetExhausted` bit-identical to
      the one :class:`ServiceAccountant` raises at the same point;
    * spend reads (:meth:`global_spent`, :meth:`analyst_epsilon`,
      :meth:`total`) are reconciled exactly on every call — the leases are
      never part of the reported ledger.

    Args mirror :class:`ServiceAccountant`; ``rule`` picks the per-shard
    composition (:data:`SHARD_RULES`), ``lease_chunk`` sizes the credit a
    reconciliation grants (default ``global_epsilon / (4 * shards)``).
    """

    def __init__(
        self,
        per_analyst_epsilon: float | None = None,
        global_epsilon: float | None = None,
        max_queries_per_analyst: int | None = None,
        *,
        shards: int = DEFAULT_SHARDS,
        rule: str = "basic",
        delta_prime: float = 1e-6,
        lease_chunk: float | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if rule not in SHARD_RULES:
            raise ValueError(f"unknown rule {rule!r}; known: {SHARD_RULES}")
        if global_epsilon is not None and global_epsilon <= 0:
            raise ValueError("global_epsilon must be positive when set")
        if lease_chunk is not None and lease_chunk <= 0:
            raise ValueError("lease_chunk must be positive when set")
        self.shards = int(shards)
        self.rule = rule
        self.per_analyst_epsilon = per_analyst_epsilon
        self.global_epsilon = global_epsilon
        self.max_queries_per_analyst = max_queries_per_analyst
        if rule == "advanced":
            self._shard_ledgers = tuple(
                AdvancedAccountant(
                    per_analyst_epsilon, None, max_queries_per_analyst, delta_prime
                )
                for _ in range(self.shards)
            )
        else:
            self._shard_ledgers = tuple(
                BasicAccountant(per_analyst_epsilon, None, max_queries_per_analyst)
                for _ in range(self.shards)
            )
        if lease_chunk is None and global_epsilon is not None:
            lease_chunk = global_epsilon / (4.0 * self.shards)
        self.lease_chunk = lease_chunk
        self._leases = tuple(_EpsilonLease() for _ in range(self.shards))
        self._broker_lock = threading.Lock()
        #: Exact global reconciliations run so far (lease exhaustion events).
        self.reconciliations = 0
        self._telemetry = None
        # First-charge order across all shards: the exact global check must
        # sum composed epsilons in the same order ServiceAccountant's
        # ledger dict iterates, or float rounding breaks bit-identity.
        self._order: list[tuple[int, str]] = []
        self._known: dict[str, int] = {}

    def bind_telemetry(self, telemetry) -> None:
        """Register budget gauges and the reconciliation counter (idempotent).

        One accountant serves every shard server, so all of them bind the
        same instance; the first bind wins.  Every metric is a snapshot
        -time callback — ``global_spent`` takes the broker lock, which is
        exactly the read path diagnostics already use, and nothing is
        added to the charge hot path beyond the ``reconciliations``
        integer bump already inside the reconciliation critical section.
        """
        if self._telemetry is not None or not getattr(telemetry, "enabled", False):
            return
        from repro.telemetry.instrument import (
            BUDGET_EPSILON_REMAINING,
            BUDGET_EPSILON_SPENT,
            LEASE_RECONCILIATIONS,
        )

        self._telemetry = telemetry
        registry = telemetry.registry
        registry.counter_fn(
            LEASE_RECONCILIATIONS, lambda: float(self.reconciliations)
        )
        registry.gauge_fn(BUDGET_EPSILON_SPENT, lambda: self.global_spent())
        if self.global_epsilon is not None:
            registry.gauge_fn(
                BUDGET_EPSILON_REMAINING,
                lambda: max(0.0, self.global_epsilon - self.global_spent()),
            )

    # -- routing ------------------------------------------------------------

    def shard_of(self, analyst: str) -> int:
        """The shard the named analyst's ledger lives on."""
        return stable_shard(analyst, self.shards)

    def shard_ledger(self, index: int) -> ServiceAccountant:
        """The per-shard sub-accountant (diagnostics and tests)."""
        return self._shard_ledgers[index]

    def _register(self, analyst: str, index: int) -> None:
        # Lock-free fast path: registered analysts are never removed, so a
        # plain dict read suffices after the first charge attempt.
        if analyst not in self._known:
            with self._broker_lock:
                if analyst not in self._known:
                    self._known[analyst] = index
                    self._order.append((index, analyst))

    # -- charging -----------------------------------------------------------

    def charge(self, analyst: str, count: int, epsilon_per_query: float) -> None:
        """Atomically charge ``count`` queries at ``epsilon_per_query`` each.

        Semantics of :meth:`ServiceAccountant.charge`, verdicts included:
        per-analyst refusals come from the analyst's (shard-local) ledger,
        global refusals from the exact reconciliation path.  Only the
        owning shard's lock is taken unless the shard's lease runs dry.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if epsilon_per_query < 0:
            raise ValueError("epsilon_per_query must be non-negative")
        if count == 0:
            return
        index = self.shard_of(analyst)
        shard = self._shard_ledgers[index]
        self._register(analyst, index)
        with shard._lock:
            ledger = shard._ledger_for(analyst)
            before = ledger.epsilon_composed
            ledger.reserve(count, epsilon_per_query, analyst=analyst)
            delta = ledger.epsilon_composed - before
            if self.global_epsilon is not None and not self._leases[index].consume(
                delta
            ):
                try:
                    self._reconcile_charge(index, analyst, count, epsilon_per_query, delta)
                except BudgetExhausted:
                    ledger.rollback(count, epsilon_per_query)
                    raise
            # Mirror into the shard's own single ledger so shard totals and
            # queries_charged aggregate without walking analyst ledgers.
            PrivacyAccountant.reserve(shard, count, epsilon_per_query)

    def _reconcile_charge(
        self, index: int, analyst: str, count: int, epsilon_per_query: float, delta: float
    ) -> None:
        """Exact global check at lease exhaustion; refill on success.

        Reclaims every outstanding lease, recomputes the global total the
        way the single ledger does (ordered float sum, charge already
        reserved), and refuses with the identical :class:`BudgetExhausted`
        when it crosses ``global_epsilon``.  On success the calling shard
        is granted a fresh credit chunk, capped so that spend plus every
        outstanding lease can never exceed the budget.
        """
        assert self.global_epsilon is not None
        with self._broker_lock:
            self.reconciliations += 1
            for lease in self._leases:
                lease.drain()
            grand = self._grand_total()
            if grand > self.global_epsilon + _EPSILON_TOLERANCE:
                raise BudgetExhausted(
                    f"global budget: charging analyst {analyst!r} {count} x "
                    f"eps={epsilon_per_query} would total "
                    f"{grand:.4f} > budget {self.global_epsilon}",
                    analyst=analyst,
                    scope="global",
                    requested=delta,
                    budget=self.global_epsilon,
                    spent=grand - delta,
                )
            headroom = max(0.0, self.global_epsilon - grand)
            self._leases[index].deposit(min(self.lease_chunk or headroom, headroom))

    def _grand_total(self) -> float:
        """Ordered exact sum of per-analyst composed epsilons.

        Same iteration order (first charge attempt) and same ``sum``
        semantics as ``ServiceAccountant.global_spent`` — freshly created
        ledgers contribute an exact ``0.0``, so including them is bit-safe.
        """
        return sum(
            ledger.epsilon_composed
            for index, analyst in self._order
            if (ledger := self._shard_ledgers[index]._ledgers.get(analyst)) is not None
        )

    def refund(self, analyst: str, count: int, epsilon_per_query: float) -> None:
        """Return a charge to the budgets (inverse of :meth:`charge`)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        index = self.shard_of(analyst)
        shard = self._shard_ledgers[index]
        with shard._lock:
            ledger = shard._ledgers.get(analyst)
            if ledger is None:
                raise ValueError(f"no charges recorded for analyst {analyst!r}")
            before = ledger.epsilon_composed
            ledger.rollback(count, epsilon_per_query)
            delta = before - ledger.epsilon_composed
            PrivacyAccountant.rollback(shard, count, epsilon_per_query)
        if self.global_epsilon is not None and delta > 0:
            # The freed headroom goes back to the refunding shard's lease;
            # spend dropped by exactly delta, so the invariant holds.
            self._leases[index].deposit(delta)

    def lease(self, analyst: str, count: int, epsilon_per_query: float) -> BudgetLease:
        """Charge-and-hold, the :meth:`ServiceAccountant.lease` contract."""
        return BudgetLease.acquire(self, analyst, count, epsilon_per_query)

    # -- read access (always exact; leases are invisible here) --------------

    def analyst_queries(self, analyst: str) -> int:
        """Queries charged to ``analyst`` so far."""
        return self._shard_ledgers[self.shard_of(analyst)].analyst_queries(analyst)

    def analyst_epsilon(self, analyst: str) -> float:
        """``analyst``'s composed epsilon so far."""
        return self._shard_ledgers[self.shard_of(analyst)].analyst_epsilon(analyst)

    def remaining_epsilon(self, analyst: str) -> float | None:
        """Unspent per-analyst epsilon, or ``None`` for an unlimited ledger."""
        if self.per_analyst_epsilon is None:
            return None
        return self.per_analyst_epsilon - self.analyst_epsilon(analyst)

    def global_spent(self) -> float:
        """Composed epsilon across all analysts, reconciled exactly.

        Bit-identical to ``ServiceAccountant.global_spent`` for the same
        charge history: same per-analyst composed values, summed in the
        same first-charge order.
        """
        with self._broker_lock:
            return self._grand_total()

    @property
    def queries_charged(self) -> int:
        """Unit charges recorded across every shard."""
        return sum(shard.queries_charged for shard in self._shard_ledgers)

    def total(self) -> tuple[float, float]:
        """Aggregate (epsilon, delta) under basic composition, shard order."""
        epsilon = 0.0
        delta = 0.0
        for shard in self._shard_ledgers:
            shard_epsilon, shard_delta = shard.total()
            epsilon += shard_epsilon
            delta += shard_delta
        return epsilon, delta

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shards={self.shards}, rule={self.rule!r}, "
            f"global_spent={self.global_spent():.4f}, "
            f"per_analyst_budget={self.per_analyst_epsilon}, "
            f"global_budget={self.global_epsilon})"
        )
