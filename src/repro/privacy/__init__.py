"""The layered privacy core every other layer consumes.

The paper's arc — mechanisms (Thm 1.3) through composition (Thm 2.8/2.9)
to service-level auditing — is implemented here exactly once and consumed
everywhere::

    repro.privacy.kernels          NoiseKernel, MechanismSpec
        |  sample()/sample_n() draws; calibrations live on the kernels
        v
    repro.privacy.accounting       PrivacySpend, PrivacyAccountant,
        |                          ServiceAccountant (multi-analyst)
        v
    repro.queries.mechanism        QueryAnswerer subclasses delegate all
        |                          noise to kernels, budgets to accountants
        v
    repro.service / repro.dp.verify
        QueryServer charges the spec's spend; verify_spec() empirically
        tests the very same MechanismSpec the accountant charged.

"""

from repro.privacy.accounting import (
    AdvancedAccountant,
    BasicAccountant,
    BudgetExhausted,
    BudgetLease,
    PrivacyAccountant,
    PrivacySpend,
    ServiceAccountant,
    advanced_composition,
    basic_composition,
)
from repro.privacy.kernels import (
    BoundedExtremesKernel,
    BoundedUniformKernel,
    GaussianKernel,
    GeometricKernel,
    LaplaceKernel,
    MechanismSpec,
    NoiseKernel,
    RandomizedResponseKernel,
    ZeroKernel,
)

__all__ = [
    "AdvancedAccountant",
    "BasicAccountant",
    "BoundedExtremesKernel",
    "BoundedUniformKernel",
    "BudgetExhausted",
    "BudgetLease",
    "GaussianKernel",
    "GeometricKernel",
    "LaplaceKernel",
    "MechanismSpec",
    "NoiseKernel",
    "PrivacyAccountant",
    "PrivacySpend",
    "RandomizedResponseKernel",
    "ServiceAccountant",
    "ZeroKernel",
    "advanced_composition",
    "basic_composition",
]
