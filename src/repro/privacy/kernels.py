"""Noise kernels: the single home of every noise-sampling code path.

A :class:`NoiseKernel` is a pure sampling object — it owns the calibration
(scale, sigma, flip probability, ...) but *not* the random stream: every
draw comes from a caller-supplied :class:`numpy.random.Generator`.  That
split is what makes the layering auditable:

* the **kernel** is the only place the noise distribution is implemented,
* the **answerer / mechanism** owns the RNG stream and the true statistic,
* the **accountant** charges the :class:`~repro.privacy.accounting.PrivacySpend`
  recorded next to the kernel in a :class:`MechanismSpec`,
* the **verifier** (:func:`repro.dp.verify.verify_spec`) empirically tests
  the very same spec object the accountant charged.

Bit-identity contract
---------------------
For every kernel and every ``Generator`` state, ``sample_n(rng, m)``
consumes the stream exactly as ``m`` successive ``sample(rng)`` calls
would and returns the identical floating-point bits.  The vectorized
answering path (:meth:`repro.queries.mechanism.QueryAnswerer.answer_workload`)
and all golden-output tests rely on this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.privacy.accounting import PrivacySpend

__all__ = [
    "BoundedExtremesKernel",
    "BoundedUniformKernel",
    "GaussianKernel",
    "GeometricKernel",
    "LaplaceKernel",
    "MechanismSpec",
    "NoiseKernel",
    "RandomizedResponseKernel",
    "ZeroKernel",
]

class NoiseKernel(ABC):
    """A calibrated noise distribution with scalar and vectorized draws.

    Subclasses hold their calibration as read-only attributes and implement
    two methods that share one stream contract: ``sample_n(rng, m)`` is
    bit-identical to stacking ``m`` calls of ``sample(rng)``.
    """

    #: Short stable identifier, e.g. ``"laplace"`` — used in spec names.
    name: str = "noise"

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one noise value from ``rng``."""

    @abstractmethod
    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        """Draw ``size`` noise values from ``rng``, stream-identical to a
        ``sample`` loop in C order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ZeroKernel(NoiseKernel):
    """The no-noise kernel: returns exact zeros and consumes no randomness.

    Exact, rounding, and subsampling answerers use it so that *every*
    answerer carries a kernel — the degenerate mechanisms are specs too.
    """

    name = "zero"

    def sample(self, rng: np.random.Generator) -> float:
        return 0.0

    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        return np.zeros(size, dtype=np.float64)


class LaplaceKernel(NoiseKernel):
    """Laplace noise with a fixed scale ``b``: density ``exp(-|x|/b) / 2b``.

    :meth:`calibrate` is the one implementation of the Theorem 1.3
    calibration ``b = sensitivity / epsilon`` — mechanisms and answerers
    must route through it rather than re-deriving the scale.
    """

    name = "laplace"

    def __init__(self, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    @classmethod
    def calibrate(cls, epsilon: float, sensitivity: float = 1.0) -> "LaplaceKernel":
        """Theorem 1.3 calibration: ``scale = sensitivity / epsilon``."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        return cls(sensitivity / epsilon)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.laplace(0.0, self.scale))

    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        return rng.laplace(0.0, self.scale, size=size)

    def __repr__(self) -> str:
        return f"LaplaceKernel(scale={self.scale!r})"


class GaussianKernel(NoiseKernel):
    """Gaussian noise with a fixed standard deviation ``sigma``.

    :meth:`calibrate` is the one implementation of the classical
    ``(epsilon, delta)`` calibration
    ``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon``.
    """

    name = "gaussian"

    def __init__(self, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    @classmethod
    def calibrate(
        cls, epsilon: float, delta: float, sensitivity: float = 1.0
    ) -> "GaussianKernel":
        """Classical Gaussian-mechanism calibration (valid for ``0 < eps <= 1``)."""
        if not 0 < epsilon <= 1:
            raise ValueError(
                "the classical Gaussian calibration requires 0 < epsilon <= 1, "
                f"got {epsilon}"
            )
        if not 0 < delta < 1:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        sigma = sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon
        return cls(sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(0.0, self.sigma))

    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        return rng.normal(0.0, self.sigma, size=size)

    def __repr__(self) -> str:
        return f"GaussianKernel(sigma={self.sigma!r})"


class GeometricKernel(NoiseKernel):
    """Two-sided geometric (discrete Laplace) noise.

    The noise is ``G+ - G-`` for two i.i.d. geometric variables with
    success probability ``p = 1 - exp(-epsilon / sensitivity)``; draws are
    integer-valued but returned as floats for interface uniformity.  Each
    sample consumes the positive draw, then the negative draw — the
    vectorized path preserves that interleaving exactly.
    """

    name = "geometric"

    def __init__(self, p: float) -> None:
        if not 0 < p < 1:
            raise ValueError(f"p must lie in (0, 1), got {p}")
        self.p = float(p)

    @classmethod
    def calibrate(cls, epsilon: float, sensitivity: float = 1.0) -> "GeometricKernel":
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        return cls(1.0 - np.exp(-epsilon / sensitivity))

    def sample(self, rng: np.random.Generator) -> float:
        positive = rng.geometric(self.p) - 1
        negative = rng.geometric(self.p) - 1
        return float(positive - negative)

    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        shape = (size,) if isinstance(size, int) else tuple(size)
        # One (pos, neg) pair per sample; C-order fill matches the scalar
        # interleaving draw-for-draw.
        pairs = rng.geometric(self.p, size=(*shape, 2))
        return (pairs[..., 0] - pairs[..., 1]).astype(np.float64)

    def __repr__(self) -> str:
        return f"GeometricKernel(p={self.p!r})"


class BoundedUniformKernel(NoiseKernel):
    """Uniform noise on ``[-alpha, alpha]`` (non-DP, bounded-error).

    ``alpha == 0`` is the exact mechanism and consumes no randomness at
    all — callers rely on the untouched stream.
    """

    name = "bounded-uniform"

    def __init__(self, alpha: float) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        if self.alpha == 0:
            return 0.0
        return float(rng.uniform(-self.alpha, self.alpha))

    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        if self.alpha == 0:
            return np.zeros(size, dtype=np.float64)
        return rng.uniform(-self.alpha, self.alpha, size=size)

    def __repr__(self) -> str:
        return f"BoundedUniformKernel(alpha={self.alpha!r})"


class BoundedExtremesKernel(NoiseKernel):
    """Noise that is exactly ``+alpha`` or ``-alpha`` with equal probability.

    The adversarial corner of the bounded-noise class: worst-case error is
    attained on every draw.  ``alpha == 0`` consumes no randomness.
    """

    name = "bounded-extremes"

    def __init__(self, alpha: float) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        if self.alpha == 0:
            return 0.0
        return float(self.alpha * (1 if rng.random() < 0.5 else -1))

    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        if self.alpha == 0:
            return np.zeros(size, dtype=np.float64)
        flips = rng.random(size) < 0.5
        return np.where(flips, self.alpha, -self.alpha)

    def __repr__(self) -> str:
        return f"BoundedExtremesKernel(alpha={self.alpha!r})"


class RandomizedResponseKernel(NoiseKernel):
    """Warner randomized response as a flip-indicator kernel.

    Samples are ``1.0`` when the respondent must *flip* their bit and
    ``0.0`` when they answer truthfully; the truthful probability is
    ``p = e^eps / (1 + e^eps)``.  A released bit is
    ``bit XOR flip`` — :class:`repro.dp.randomized_response.RandomizedResponse`
    applies the indicator, this kernel owns the coin.
    """

    name = "randomized-response"

    def __init__(self, truth_probability: float) -> None:
        if not 0.5 <= truth_probability <= 1:
            raise ValueError(
                f"truth_probability must lie in [0.5, 1], got {truth_probability}"
            )
        self.truth_probability = float(truth_probability)

    @classmethod
    def calibrate(cls, epsilon: float) -> "RandomizedResponseKernel":
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        exp_eps = np.exp(epsilon)
        return cls(exp_eps / (1.0 + exp_eps))

    def sample(self, rng: np.random.Generator) -> float:
        return 0.0 if rng.random() < self.truth_probability else 1.0

    def sample_n(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        # The flip mask is the exact complement of the keep mask
        # (u >= p  <=>  not (u < p)), drawn from the same uniforms.
        return (rng.random(size) >= self.truth_probability).astype(np.float64)

    def __repr__(self) -> str:
        return f"RandomizedResponseKernel(truth_probability={self.truth_probability!r})"


@dataclass(frozen=True)
class MechanismSpec:
    """The auditable identity of an answering mechanism.

    One immutable record ties together everything the three layers need to
    agree on: the noise ``kernel`` (how answers are perturbed), the
    ``sensitivity`` the calibration assumed, the per-query ``spend`` the
    accountant must charge, the worst-case ``error_bound`` the
    reconstruction theorems consume, and whether the mechanism claims
    differential privacy (``dp``).  The service charges ``spec.spend``, the
    answerer samples ``spec.kernel``, and the verifier tests the identical
    object — no drift between the layers is representable.
    """

    name: str
    kernel: NoiseKernel
    spend: PrivacySpend = field(default_factory=lambda: PrivacySpend(0.0))
    sensitivity: float = 1.0
    error_bound: float = float("inf")
    dp: bool = False

    def __post_init__(self) -> None:
        if self.sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {self.sensitivity}")
        if self.error_bound < 0:
            raise ValueError(f"error_bound must be non-negative, got {self.error_bound}")
        if self.dp and self.spend.epsilon <= 0:
            raise ValueError("a DP mechanism must carry a positive epsilon spend")

    @property
    def epsilon_per_query(self) -> float:
        """Epsilon charged per answered query (0.0 for non-DP mechanisms)."""
        return self.spend.epsilon
