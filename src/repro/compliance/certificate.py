"""Content-addressed compliance certificates.

A certificate is only worth anything if it is bound to the *bits* it
certifies.  This module gives every certifiable release a canonical
blake2b fingerprint (the same digest discipline
:mod:`repro.service.cache` uses for query fingerprints: length-prefixed
parts, 16-byte digest) and defines :class:`ComplianceCertificate`, a
frozen record binding release fingerprint + policy + per-check evidence +
the derived :class:`~repro.legal.claims.LegalVerdict` under one
self-fingerprint.  Tampering with either side — the certified release or
the certificate's own fields — breaks the binding and
:meth:`ComplianceCertificate.validate` refuses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.compliance.policy import Policy
from repro.compliance.verifiers import CheckResult
from repro.data.dataset import Dataset
from repro.data.generalized import GeneralizedDataset
from repro.legal.claims import LegalVerdict
from repro.privacy.kernels import MechanismSpec
from repro.synth.base import SyntheticRelease
from repro.synth.binary import BinaryRelease

__all__ = [
    "ComplianceCertificate",
    "release_fingerprint",
    "spec_fingerprint",
]


def _digest(*parts: bytes) -> str:
    """blake2b-128 over length-prefixed parts (no concatenation ambiguity)."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    return h.hexdigest()


def _array_bytes(array: np.ndarray) -> tuple[bytes, bytes]:
    contiguous = np.ascontiguousarray(array)
    header = f"{contiguous.dtype.str}:{contiguous.shape}".encode()
    return header, contiguous.tobytes()


def spec_fingerprint(spec: MechanismSpec) -> str:
    """Canonical fingerprint of a mechanism identity.

    Covers everything :class:`MechanismSpec` declares — name, kernel (its
    repr carries the calibrated parameters), spend, sensitivity, error
    bound, and the DP claim itself — so two specs with the same epsilon but
    different kernels, or the same kernel with a silently edited DP flag,
    never collide.
    """
    spend = spec.spend
    return _digest(
        b"mechanism-spec",
        spec.name.encode(),
        repr(spec.kernel).encode(),
        repr((float(spend.epsilon), float(spend.delta), spend.label)).encode(),
        repr(
            (
                float(spec.sensitivity),
                None if spec.error_bound is None else float(spec.error_bound),
                bool(spec.dp),
            )
        ).encode(),
    )


def release_fingerprint(release: object) -> str:
    """The canonical content address of a certifiable release.

    Dispatches over every release shape the service can be asked to serve:
    mechanism specs, synthetic binary vectors, synthetic microdata, raw
    datasets, k-anonymized :class:`GeneralizedDataset` releases, and bare
    numpy arrays.  Each embeds a type tag, so a vector and a dataset with
    identical bytes still fingerprint apart.
    """
    if isinstance(release, MechanismSpec):
        return spec_fingerprint(release)
    if isinstance(release, BinaryRelease):
        header, payload = _array_bytes(release.vector)
        return _digest(
            b"binary-release", header, payload, spec_fingerprint(release.spec).encode()
        )
    if isinstance(release, SyntheticRelease):
        parts = [
            b"synthetic-release",
            _dataset_bytes(release.data),
            spec_fingerprint(release.spec).encode(),
        ]
        if release.histogram is not None:
            header, payload = _array_bytes(np.asarray(release.histogram))
            parts.extend([header, payload])
        return _digest(*parts)
    if isinstance(release, Dataset):
        return _digest(b"dataset", _dataset_bytes(release))
    if isinstance(release, GeneralizedDataset):
        rows = "\n".join(repr(record) for record in release)
        names = ",".join(release.schema.names)
        return _digest(b"generalized-dataset", names.encode(), rows.encode())
    if isinstance(release, np.ndarray):
        header, payload = _array_bytes(release)
        return _digest(b"ndarray", header, payload)
    raise TypeError(
        f"cannot fingerprint a release of type {type(release).__name__}; "
        "supported: MechanismSpec, BinaryRelease, SyntheticRelease, Dataset, "
        "GeneralizedDataset, ndarray"
    )


def _dataset_bytes(dataset: Dataset) -> bytes:
    names = ",".join(dataset.schema.names)
    return names.encode() + b"\x00" + repr(dataset.rows).encode()


def _check_bytes(check: CheckResult) -> bytes:
    measured = sorted((str(k), repr(v)) for k, v in check.measurements.items())
    return repr(
        (check.identifier, check.requirement, check.passed, check.detail, measured)
    ).encode()


def _verdict_bytes(verdict: LegalVerdict) -> bytes:
    premises = tuple(
        (premise.identifier, premise.statement, premise.established)
        for premise in verdict.premises
    )
    return repr(
        (verdict.claim.identifier, verdict.claim.conclusion, premises)
    ).encode()


@dataclass(frozen=True)
class ComplianceCertificate:
    """A machine-checked release approval (or denial), content-addressed.

    Attributes:
        subject: operator-facing name of what was certified.
        release_fingerprint: :func:`release_fingerprint` of the certified
            object at certification time.
        policy: the :class:`~repro.compliance.policy.Policy` the checks ran
            against.
        approved: whether every check passed.
        checks: every verifier's :class:`CheckResult`, in canonical
            (identifier-sorted) order.
        verdict: the :class:`~repro.legal.claims.LegalVerdict` derived from
            the checks — an approval verdict, or a denial verdict whose
            premises name exactly the failing checks.
        seed: the pipeline seed the checks were derived from (replayable).
        fingerprint: blake2b content address over all of the above.
    """

    subject: str
    release_fingerprint: str
    policy: Policy
    approved: bool
    checks: tuple[CheckResult, ...]
    verdict: LegalVerdict
    seed: int
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if not self.fingerprint:
            object.__setattr__(self, "fingerprint", self.content_fingerprint())

    def content_fingerprint(self) -> str:
        """Recompute the certificate's content address from its fields."""
        return _digest(
            b"compliance-certificate",
            self.subject.encode(),
            self.release_fingerprint.encode(),
            self.policy.fingerprint().encode(),
            repr((self.approved, int(self.seed))).encode(),
            *[_check_bytes(check) for check in self.checks],
            _verdict_bytes(self.verdict),
        )

    @property
    def failing(self) -> tuple[str, ...]:
        """Identifiers of the checks that failed (empty when approved)."""
        return tuple(check.identifier for check in self.checks if not check.passed)

    def binds(self, release: object) -> bool:
        """Whether ``release`` is bit-identical to the certified object."""
        try:
            return release_fingerprint(release) == self.release_fingerprint
        except TypeError:
            return False

    def tampered(self) -> bool:
        """Whether the certificate's own fields no longer hash to its address."""
        return self.fingerprint != self.content_fingerprint()

    def validate(self, release: object) -> bool:
        """Approval + self-integrity + binding, in one verdict.

        True only when the certificate says *approved*, its own fields
        still hash to its recorded fingerprint, and ``release`` is
        bit-identical to the object that was certified.  A single-byte
        tamper on either side flips this to False.
        """
        return self.approved and not self.tampered() and self.binds(release)

    def render(self) -> str:
        """A human-readable certificate transcript."""
        status = "APPROVED" if self.approved else "DENIED"
        lines = [
            f"COMPLIANCE CERTIFICATE [{self.fingerprint}] — {status}",
            f"  Subject: {self.subject}",
            f"  Release: {self.release_fingerprint}",
            f"  Policy:  {self.policy.name} [{self.policy.fingerprint()}]",
            "  Checks:",
        ]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"    [{mark}] {check.identifier}: {check.requirement}")
            if check.detail and not check.passed:
                lines.append(f"           {check.detail}")
        lines.append("  " + self.verdict.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
