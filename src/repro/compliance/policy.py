"""The declared release policy the compliance pipeline enforces.

A :class:`Policy` is the operator's side of the paper's legal bargain: it
pins, as plain numbers, what "protected" is going to mean for this service
— the global epsilon cap the ledger must stay under, the minimum k a
k-anonymity claim must actually achieve, the reconstruction-agreement bar
a release must stay below (0.95 is the blatant-non-privacy threshold the
reconstruction experiments use), and how hard the empirical DP check
tries.  The policy is frozen and content-addressed so a certificate can
bind the exact policy it was issued under.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, fields
from typing import Mapping

__all__ = ["Policy"]


@dataclass(frozen=True)
class Policy:
    """Machine-checkable release requirements, one frozen record.

    Attributes:
        name: the policy's operator-facing name (part of its identity).
        epsilon_cap: total composed epsilon the accountant's ledger may
            reach (inf = uncapped).
        delta_cap: total delta the ledger may reach.
        k_min: the k a k-anonymity claim must re-derive to at least.
        reconstruction_agreement_max: a replayed reconstruction attack must
            agree with the private data strictly below this fraction
            (default: the 0.95 blatant-non-privacy bar).
        dp_trials: samples per dataset for the empirical DP check.
        dp_confidence: per-event confidence of the DP check's bounds.
        recon_queries_per_record: attack workload size, as a multiple of n.
        safe_harbor_classification: attribute -> HIPAA safe-harbor category
            (mapping accepted; stored canonically as sorted pairs).
    """

    name: str = "default"
    epsilon_cap: float = math.inf
    delta_cap: float = 1.0
    k_min: int = 2
    reconstruction_agreement_max: float = 0.95
    dp_trials: int = 1200
    dp_confidence: float = 0.999
    recon_queries_per_record: float = 2.0
    safe_harbor_classification: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.safe_harbor_classification, Mapping):
            canonical = tuple(sorted(self.safe_harbor_classification.items()))
            object.__setattr__(self, "safe_harbor_classification", canonical)
        else:
            object.__setattr__(
                self,
                "safe_harbor_classification",
                tuple(sorted(tuple(pair) for pair in self.safe_harbor_classification)),
            )
        if self.epsilon_cap <= 0:
            raise ValueError(f"epsilon_cap must be positive, got {self.epsilon_cap}")
        if not 0.0 <= self.delta_cap <= 1.0:
            raise ValueError(f"delta_cap must lie in [0, 1], got {self.delta_cap}")
        if self.k_min < 1:
            raise ValueError(f"k_min must be at least 1, got {self.k_min}")
        if not 0.0 < self.reconstruction_agreement_max <= 1.0:
            raise ValueError(
                "reconstruction_agreement_max must lie in (0, 1], got "
                f"{self.reconstruction_agreement_max}"
            )
        if self.dp_trials < 1:
            raise ValueError(f"dp_trials must be positive, got {self.dp_trials}")
        if not 0.0 < self.dp_confidence < 1.0:
            raise ValueError(
                f"dp_confidence must lie in (0, 1), got {self.dp_confidence}"
            )
        if self.recon_queries_per_record <= 0:
            raise ValueError(
                "recon_queries_per_record must be positive, got "
                f"{self.recon_queries_per_record}"
            )

    def classification(self) -> dict[str, str]:
        """The safe-harbor classification as the mapping the checker takes."""
        return dict(self.safe_harbor_classification)

    def fingerprint(self) -> str:
        """blake2b content address of the policy (certificates embed it)."""
        h = hashlib.blake2b(digest_size=16)
        for spec in fields(self):
            part = repr((spec.name, getattr(self, spec.name))).encode()
            h.update(len(part).to_bytes(8, "little"))
            h.update(part)
        return h.hexdigest()
