"""Release approval: legal theorems as a machine-checked runtime gate.

The paper runs *from* database reconstruction *to* legal theorems; this
subpackage closes the loop in the serving direction.  Before the service
will register a mechanism or activate a synthetic release, the release
must hold a :class:`ComplianceCertificate` — minted by a
:class:`CompliancePipeline` of machine-checkable
:class:`~repro.compliance.verifiers.Verifier` s that *re-derive* every
claim with the repository's own machinery (empirical DP on the exact
charged spec, ledger recomposition, k re-derivation, a replayed
reconstruction attack, HIPAA safe harbor, exact deletion), feed the
evidence through the legal layer's falsifiability gate
(:func:`repro.legal.claims.derive`), and bind release + policy + evidence
+ verdict under one blake2b content address.  At runtime the
:class:`ComplianceGate` is an O(1) fingerprint lookup; refusals are the
typed :class:`ComplianceDenied` with zero budget/cache footprint.

* :mod:`repro.compliance.policy` — the declared :class:`Policy` caps.
* :mod:`repro.compliance.verifiers` — the checkers.
* :mod:`repro.compliance.pipeline` — deterministic battery + derivation.
* :mod:`repro.compliance.certificate` — content-addressed certificates.
* :mod:`repro.compliance.gate` — runtime enforcement for the service.

Experiment E21 exercises the whole arc: the DP release is certified, the
leaky independent-marginals and k-anonymous releases are denied with the
failing premises named in the verdict.
"""

from repro.compliance.certificate import (
    ComplianceCertificate,
    release_fingerprint,
    spec_fingerprint,
)
from repro.compliance.gate import ComplianceDenied, ComplianceGate
from repro.compliance.pipeline import CompliancePipeline
from repro.compliance.policy import Policy
from repro.compliance.verifiers import (
    CheckResult,
    CompositionPolicyVerifier,
    DeletionVerifier,
    DpClaimVerifier,
    KAnonymityClaimVerifier,
    ReconstructionResistanceVerifier,
    ReleaseContext,
    SafeHarborVerifier,
    Verifier,
)

__all__ = [
    "CheckResult",
    "ComplianceCertificate",
    "ComplianceDenied",
    "ComplianceGate",
    "CompliancePipeline",
    "CompositionPolicyVerifier",
    "DeletionVerifier",
    "DpClaimVerifier",
    "KAnonymityClaimVerifier",
    "Policy",
    "ReconstructionResistanceVerifier",
    "ReleaseContext",
    "SafeHarborVerifier",
    "Verifier",
    "release_fingerprint",
    "spec_fingerprint",
]
