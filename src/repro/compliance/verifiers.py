"""Machine-checkable verifiers: one policy requirement each, re-derived.

Every verifier takes the *actual* release (plus the private data and the
live accountant ledger where the requirement needs them) and re-derives
the claimed property with the repository's own machinery instead of
trusting any label:

* :class:`DpClaimVerifier` runs :func:`repro.dp.verify.verify_spec`
  against the exact :class:`~repro.privacy.kernels.MechanismSpec` the
  accountant charges;
* :class:`CompositionPolicyVerifier` recomputes the total spend from the
  :class:`~repro.privacy.accounting.PrivacyAccountant` /
  :class:`~repro.privacy.accounting.ShardedAccountant` ledger;
* :class:`SafeHarborVerifier` re-runs
  :func:`repro.legal.hipaa.is_safe_harbor_compliant` on the data;
* :class:`KAnonymityClaimVerifier` re-derives k from
  :mod:`repro.anonymity` equivalence classes;
* :class:`ReconstructionResistanceVerifier` replays the release through
  :func:`repro.reconstruction.l2_decode.l2_decode` /
  :func:`repro.reconstruction.lp_decode.reconstruct_from_answers` — the
  auditor's attack, run *before* approval instead of after damage;
* :class:`DeletionVerifier` replays
  :func:`repro.legal.deletion.verify_exact_deletion` so the service can
  prove it honors erasure before it ever serves.

A verifier never raises on a non-compliant or inapplicable release — it
returns a failed :class:`CheckResult` (what cannot be checked cannot be
certified), which the pipeline turns into a refuting premise of the
denial verdict.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.anonymity.checks import equivalence_classes_on
from repro.data.dataset import Dataset
from repro.data.generalized import GeneralizedDataset
from repro.dp.verify import verify_spec
from repro.legal.deletion import verify_exact_deletion
from repro.legal.hipaa import is_safe_harbor_compliant
from repro.privacy.kernels import MechanismSpec
from repro.queries.workload import Workload
from repro.reconstruction.l2_decode import l2_decode
from repro.reconstruction.lp_decode import reconstruct_from_answers
from repro.synth.base import SyntheticRelease

__all__ = [
    "CheckResult",
    "CompositionPolicyVerifier",
    "DeletionVerifier",
    "DpClaimVerifier",
    "KAnonymityClaimVerifier",
    "ReconstructionResistanceVerifier",
    "ReleaseContext",
    "SafeHarborVerifier",
    "Verifier",
]

#: Epsilon-sum tolerance shared with the accountant's reconciliation.
_EPSILON_TOLERANCE = 1e-12


@dataclass(frozen=True)
class CheckResult:
    """One verifier's verdict on one policy requirement.

    Attributes:
        identifier: the verifier's stable identifier (premise name).
        requirement: the requirement, stated as the checked claim.
        passed: whether the re-derived measurement satisfies it.
        measurements: the numbers the verifier derived (evidence).
        detail: human-readable explanation, mainly for failures.
    """

    identifier: str
    requirement: str
    passed: bool
    measurements: dict[str, object] = field(default_factory=dict)
    detail: str = ""


@dataclass
class ReleaseContext:
    """Everything a verifier may consult: the release, data, and ledger.

    ``data`` is the private input the release was computed from (a binary
    vector for the Dinur-Nissim model, a histogram or
    :class:`~repro.data.dataset.Dataset` for microdata); ``accountant`` is
    the live ledger whose spend the composition check re-derives.
    """

    release: object
    data: object | None = None
    accountant: object | None = None


class Verifier(ABC):
    """One machine-checkable policy requirement.

    Subclasses set ``identifier`` (stable, unique within a pipeline — it
    names the premise in the legal verdict) and implement :meth:`check`.
    All randomness must come from the handed generator so pipeline runs
    are bit-deterministic and order-invariant.
    """

    identifier: str = "VERIFIER"

    @abstractmethod
    def check(
        self, context: ReleaseContext, policy, rng: np.random.Generator
    ) -> CheckResult:
        """Re-derive the requirement on the actual release."""

    def _fail(self, requirement: str, detail: str, **measurements) -> CheckResult:
        return CheckResult(
            identifier=self.identifier,
            requirement=requirement,
            passed=False,
            measurements=measurements,
            detail=detail,
        )


def _spec_of(release: object) -> MechanismSpec | None:
    if isinstance(release, MechanismSpec):
        return release
    spec = getattr(release, "spec", None)
    return spec if isinstance(spec, MechanismSpec) else None


def _neighbor(data: np.ndarray) -> np.ndarray:
    """A dataset differing from ``data`` in one record's contribution.

    For a binary vector, flip one bit; for a non-negative histogram, add
    one record to the first cell.  Either changes the subset-count
    statistic by exactly the unit sensitivity.
    """
    neighbor = np.array(data, dtype=np.float64, copy=True)
    values = np.unique(neighbor)
    if np.all(np.isin(values, (0.0, 1.0))):
        neighbor[0] = 1.0 - neighbor[0]
    else:
        neighbor[0] += 1.0
    return neighbor


class DpClaimVerifier(Verifier):
    """The DP claim, empirically tested on the spec the accountant charges.

    A release without a positive-epsilon DP claim fails outright: by Legal
    Theorem 2.1, syntactic (k-anonymity-class) releases fail to prevent
    singling out, so the policy's protection requirement cannot be met by
    fiat.  A release *with* a claim has the exact
    :class:`~repro.privacy.kernels.MechanismSpec` run through
    :func:`repro.dp.verify.verify_spec` on the actual private data and a
    neighbor — the certificate records the measured log-ratio bound.
    """

    identifier = "DP-CLAIM"
    _requirement = (
        "the release carries a differential-privacy guarantee and its "
        "mechanism spec is empirically consistent with the claimed epsilon"
    )

    def check(self, context, policy, rng) -> CheckResult:
        spec = _spec_of(context.release)
        if spec is None:
            return self._fail(
                self._requirement,
                "release declares no mechanism spec; unverifiable claims "
                "cannot be certified (Legal Theorem 2.1: syntactic "
                "anonymization fails to prevent singling out)",
            )
        if not spec.dp:
            return self._fail(
                self._requirement,
                f"spec {spec.name!r} makes no DP claim (dp=False); "
                "non-DP releases fail the singling-out requirement "
                "(Legal Theorem 2.1)",
                epsilon=float(spec.spend.epsilon),
            )
        if context.data is None:
            return self._fail(
                self._requirement,
                "no private data supplied; the empirical DP check cannot run",
            )
        x = np.asarray(context.data, dtype=np.float64).ravel()
        verdict = verify_spec(
            spec,
            x,
            _neighbor(x),
            trials=policy.dp_trials,
            confidence=policy.dp_confidence,
            rng=rng,
        )
        return CheckResult(
            identifier=self.identifier,
            requirement=self._requirement,
            passed=bool(verdict.consistent),
            measurements={
                "epsilon": float(spec.spend.epsilon),
                "max_observed_log_ratio": float(verdict.max_observed_log_ratio),
                "trials": int(policy.dp_trials),
                "events_tested": len(verdict.checks),
            },
            detail=""
            if verdict.consistent
            else (
                f"observed log-ratio {verdict.max_observed_log_ratio:.4f} "
                f"certifiably exceeds the claimed epsilon "
                f"{spec.spend.epsilon:g}"
            ),
        )


class CompositionPolicyVerifier(Verifier):
    """Total spend re-derived from the ledger, against the policy cap.

    Trusts no reported number: reads the accountant's own composed
    ``(epsilon, delta)`` total (``total()`` on
    :class:`~repro.privacy.accounting.PrivacyAccountant` and
    :class:`~repro.privacy.accounting.ShardedAccountant` alike) and adds
    the release's not-yet-charged spend when the release carries a spec
    that has not been booked.
    """

    identifier = "COMPOSE"
    _requirement = (
        "total privacy spend re-derived from the accountant ledger stays "
        "within the policy's (epsilon, delta) cap"
    )

    def check(self, context, policy, rng) -> CheckResult:
        accountant = context.accountant
        if accountant is None:
            return self._fail(
                self._requirement,
                "no accountant ledger supplied; spend cannot be re-derived",
            )
        epsilon_total, delta_total = (float(v) for v in accountant.total())
        within_epsilon = epsilon_total <= policy.epsilon_cap + _EPSILON_TOLERANCE
        within_delta = delta_total <= policy.delta_cap + _EPSILON_TOLERANCE
        passed = within_epsilon and within_delta
        return CheckResult(
            identifier=self.identifier,
            requirement=self._requirement,
            passed=passed,
            measurements={
                "epsilon_total": epsilon_total,
                "delta_total": delta_total,
                "epsilon_cap": float(policy.epsilon_cap),
                "delta_cap": float(policy.delta_cap),
            },
            detail=""
            if passed
            else (
                f"ledger total ({epsilon_total:g}, {delta_total:g}) exceeds "
                f"the policy cap ({policy.epsilon_cap:g}, {policy.delta_cap:g})"
            ),
        )


class SafeHarborVerifier(Verifier):
    """HIPAA safe harbor, re-run on the actual released microdata."""

    identifier = "SAFE-HARBOR"
    _requirement = (
        "the released microdata passes the HIPAA safe-harbor redaction "
        "check under the policy's attribute classification"
    )

    def check(self, context, policy, rng) -> CheckResult:
        release = context.release
        if isinstance(release, SyntheticRelease):
            dataset = release.data
        elif isinstance(release, Dataset):
            dataset = release
        else:
            return self._fail(
                self._requirement,
                f"safe-harbor check needs microdata, got "
                f"{type(release).__name__}",
            )
        classification = policy.classification()
        compliant = is_safe_harbor_compliant(dataset, classification)
        return CheckResult(
            identifier=self.identifier,
            requirement=self._requirement,
            passed=bool(compliant),
            measurements={
                "records": len(dataset),
                "classified_attributes": len(classification),
            },
            detail=""
            if compliant
            else "an enumerated identifier category survives in the release",
        )


class KAnonymityClaimVerifier(Verifier):
    """k re-derived from the release's equivalence classes, never trusted.

    Args:
        quasi_identifiers: the linkage surface to group on; defaults to
            the schema's annotated quasi-identifiers (all attributes when
            none are annotated), matching :mod:`repro.anonymity.checks`.
    """

    identifier = "K-ANON"
    _requirement = (
        "the k re-derived from the release's equivalence classes meets "
        "the policy's minimum k"
    )

    def __init__(self, quasi_identifiers: Sequence[str] | None = None):
        self.quasi_identifiers = (
            tuple(quasi_identifiers) if quasi_identifiers is not None else None
        )

    def check(self, context, policy, rng) -> CheckResult:
        release = context.release
        if not isinstance(release, GeneralizedDataset):
            return self._fail(
                self._requirement,
                f"k-anonymity check needs a GeneralizedDataset release, got "
                f"{type(release).__name__}",
            )
        if len(release) == 0:
            return self._fail(self._requirement, "empty release has no classes")
        classes = equivalence_classes_on(release, self.quasi_identifiers)
        achieved = min(len(rows) for rows in classes.values())
        passed = achieved >= policy.k_min
        return CheckResult(
            identifier=self.identifier,
            requirement=self._requirement,
            passed=passed,
            measurements={
                "achieved_k": int(achieved),
                "k_min": int(policy.k_min),
                "classes": len(classes),
                "records": len(release),
            },
            detail=""
            if passed
            else (
                f"smallest equivalence class has {achieved} records; "
                f"policy requires k >= {policy.k_min}"
            ),
        )


class ReconstructionResistanceVerifier(Verifier):
    """Replay the reconstruction attack the release would face, pre-approval.

    Draws the Theorem 1.1(ii) random workload from the pipeline's seed
    stream, answers it *on the release* (exact post-processing — precisely
    what an attacker holding the published object can do), decodes with
    the first-order :func:`~repro.reconstruction.l2_decode.l2_decode`
    (``solver="lp"`` escalates to the exact LP), and scores agreement
    against the true private data.  Agreement at or above the policy bar
    is blatant non-privacy; the release is refused before it is ever
    served.

    Args:
        solver: ``"l2"`` (default, the fast certified first-order decoder)
            or ``"lp"`` (the exact LP).
    """

    identifier = "RECON"
    _requirement = (
        "a replayed reconstruction attack on the release agrees with the "
        "private data strictly below the policy's blatant-non-privacy bar"
    )

    def __init__(self, solver: str = "l2"):
        if solver not in ("l2", "lp"):
            raise ValueError(f"solver must be 'l2' or 'lp', got {solver!r}")
        self.solver = solver

    def check(self, context, policy, rng) -> CheckResult:
        if context.data is None:
            return self._fail(
                self._requirement,
                "no private data supplied; agreement cannot be scored",
            )
        data = np.asarray(context.data).astype(np.int64).ravel()
        release = context.release
        if hasattr(release, "answer_workload"):
            n = int(getattr(release, "n", data.size))
            vector = None
        elif isinstance(release, np.ndarray):
            n = int(release.size)
            vector = np.asarray(release, dtype=np.float64).ravel()
        else:
            return self._fail(
                self._requirement,
                f"reconstruction replay needs a vector release, got "
                f"{type(release).__name__}",
            )
        if n != data.size:
            return self._fail(
                self._requirement,
                f"release has n={n}, private data has n={data.size}",
            )
        queries = max(1, int(round(policy.recon_queries_per_record * n)))
        workload = Workload.random(n, queries, rng=rng)
        if vector is None:
            answers = np.asarray(release.answer_workload(workload), dtype=np.float64)
        else:
            answers = np.asarray(
                workload.matrix(sparse=True) @ vector, dtype=np.float64
            )
        if self.solver == "lp":
            result = reconstruct_from_answers(workload, answers, alpha=0.5)
        else:
            result = l2_decode(workload, answers, 0.5, rng=rng)
        agreement = result.agreement_with(data)
        passed = agreement < policy.reconstruction_agreement_max
        return CheckResult(
            identifier=self.identifier,
            requirement=self._requirement,
            passed=passed,
            measurements={
                "agreement": float(agreement),
                "threshold": float(policy.reconstruction_agreement_max),
                "queries": int(queries),
                "solver": self.solver,
            },
            detail=""
            if passed
            else (
                f"decoded reconstruction agrees with the private data at "
                f"{agreement:.4f} >= {policy.reconstruction_agreement_max:g} "
                "(blatant non-privacy)"
            ),
        )


class DeletionVerifier(Verifier):
    """Exact-unlearning compliance, replayed on the serving corpus.

    Wraps :func:`repro.legal.deletion.verify_exact_deletion`: unlearning
    the probe document must leave the model bit-identical to one never
    trained on it.  ``context.data`` is the training corpus (a sequence of
    documents); the release under certification is whatever the corpus
    backs.

    Args:
        delete_index: which document's erasure to probe.
        order: n-gram order of the probe model.
    """

    identifier = "DELETION"
    _requirement = (
        "unlearning a probe document leaves the model bit-identical to "
        "one never trained on it (GDPR Art. 17 erasure, exactly)"
    )

    def __init__(self, delete_index: int = 0, order: int = 5):
        self.delete_index = int(delete_index)
        self.order = int(order)

    def check(self, context, policy, rng) -> CheckResult:
        corpus = context.data
        if not isinstance(corpus, Sequence) or not all(
            isinstance(doc, str) for doc in corpus
        ):
            return self._fail(
                self._requirement,
                "deletion check needs a corpus of documents in context.data",
            )
        try:
            deleted = verify_exact_deletion(
                list(corpus), self.delete_index, order=self.order
            )
        except ValueError as error:
            return self._fail(self._requirement, str(error))
        return CheckResult(
            identifier=self.identifier,
            requirement=self._requirement,
            passed=bool(deleted),
            measurements={
                "corpus_documents": len(corpus),
                "delete_index": self.delete_index,
                "order": self.order,
            },
            detail="" if deleted else "unlearned model retained trained state",
        )
