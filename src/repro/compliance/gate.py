"""Runtime enforcement: the gate the service consults before serving.

:class:`ComplianceGate` is the O(1) runtime half of the subsystem.  The
expensive work — running verifiers, deriving the legal verdict — happens
offline in :class:`~repro.compliance.pipeline.CompliancePipeline`; the
gate only *holds approvals*: :meth:`ComplianceGate.approve` validates a
certificate against the live release object once (tamper check + binding
check) and records its release fingerprint, and :meth:`require` is a
fingerprint lookup.  The gated :class:`~repro.service.server.QueryServer`
calls :meth:`require` at mechanism-spec registration and fallback
activation — never on the per-query hot path — so approval costs nothing
per answer.

Refusals are the typed :class:`ComplianceDenied`, mirroring the sharded
front end's :class:`~repro.service.sharded.Rejected`: no budget charge, no
cache entry, no audit-log *answer* record (the denial itself is noted in
the log's denial channel).
"""

from __future__ import annotations

import threading

from repro.compliance.certificate import ComplianceCertificate, release_fingerprint
from repro.compliance.policy import Policy

__all__ = ["ComplianceDenied", "ComplianceGate"]


class ComplianceDenied(RuntimeError):
    """The gate refused a release; nothing was served, charged, or cached.

    Attributes:
        subject: what was refused (e.g. ``"mechanism-spec"``).
        analyst: the session the refusal hit ("" for server-level events).
        reason: machine-readable cause (``"no-certificate"``,
            ``"denied-certificate"``, ``"fingerprint-mismatch"``,
            ``"policy-mismatch"``, ``"unspecified-release"``).
        failing: identifiers of the failed checks, when a denial
            certificate names them.
    """

    def __init__(
        self,
        message: str,
        *,
        subject: str,
        analyst: str = "",
        reason: str,
        failing: tuple[str, ...] = (),
    ):
        super().__init__(message)
        self.subject = subject
        self.analyst = analyst
        self.reason = reason
        self.failing = tuple(failing)


class ComplianceGate:
    """Thread-safe registry of approved release fingerprints.

    Args:
        policy: when set, :meth:`approve` additionally requires every
            certificate to have been issued under this exact policy
            (compared by content fingerprint), so a gate can't be fed
            approvals minted against a laxer policy.
    """

    def __init__(self, policy: Policy | None = None, *, telemetry=None):
        self.policy = policy
        self._approved: dict[str, ComplianceCertificate] = {}
        self._lock = threading.Lock()
        self._telemetry = None
        if telemetry is not None and getattr(telemetry, "enabled", False):
            self.bind_telemetry(telemetry)

    def bind_telemetry(self, telemetry) -> None:
        """Register this gate's lookup-latency and denial metrics.

        Idempotent: the gate is shared across shards, every shard server
        binds it, and the first bind wins.  ``require`` runs off the
        per-query hot path (spec registration, fallback activation), so
        timing it costs nothing per answer.
        """
        if self._telemetry is not None or not getattr(telemetry, "enabled", False):
            return
        from repro.telemetry.instrument import COMPLIANCE_REQUIRE_SECONDS

        self._telemetry = telemetry
        self._require_hist = telemetry.registry.histogram(
            COMPLIANCE_REQUIRE_SECONDS
        )

    def approve(
        self, certificate: ComplianceCertificate, release: object
    ) -> str:
        """Validate ``certificate`` against the live ``release``; register it.

        Returns the registered release fingerprint.  Raises
        :class:`ComplianceDenied` when the certificate was a denial, was
        issued under a different policy, was tampered with, or does not
        bind these exact release bits.
        """
        subject = certificate.subject
        if self.policy is not None and (
            certificate.policy.fingerprint() != self.policy.fingerprint()
        ):
            raise ComplianceDenied(
                f"certificate for {subject!r} was issued under policy "
                f"{certificate.policy.name!r}, gate enforces "
                f"{self.policy.name!r}",
                subject=subject,
                reason="policy-mismatch",
            )
        if not certificate.approved:
            raise ComplianceDenied(
                f"certificate for {subject!r} is a denial "
                f"(failing: {', '.join(certificate.failing)})",
                subject=subject,
                reason="denied-certificate",
                failing=certificate.failing,
            )
        if certificate.tampered():
            raise ComplianceDenied(
                f"certificate for {subject!r} fails its own content "
                "fingerprint (tampered fields)",
                subject=subject,
                reason="fingerprint-mismatch",
            )
        if not certificate.binds(release):
            raise ComplianceDenied(
                f"certificate for {subject!r} does not bind this release "
                "(the certified bits were mutated)",
                subject=subject,
                reason="fingerprint-mismatch",
            )
        with self._lock:
            self._approved[certificate.release_fingerprint] = certificate
        return certificate.release_fingerprint

    def revoke(self, release: object) -> bool:
        """Withdraw a prior approval; True if one was registered."""
        fingerprint = release_fingerprint(release)
        with self._lock:
            return self._approved.pop(fingerprint, None) is not None

    def require(
        self, release: object, *, subject: str = "release", analyst: str = ""
    ) -> ComplianceCertificate:
        """The runtime check: return the approval or refuse, typed.

        One fingerprint of the release (cheap and off the per-query path)
        and one dict lookup.  With telemetry bound, the lookup is timed
        and denials are counted by reason and failing requirement.
        """
        if self._telemetry is None:
            return self._require(release, subject=subject, analyst=analyst)
        clock = self._telemetry.clock
        start = clock()
        try:
            return self._require(release, subject=subject, analyst=analyst)
        except ComplianceDenied as denial:
            from repro.telemetry.instrument import COMPLIANCE_DENIALS

            registry = self._telemetry.registry
            for requirement in denial.failing or (denial.reason,):
                registry.counter(
                    COMPLIANCE_DENIALS,
                    reason=denial.reason,
                    requirement=requirement,
                ).inc()
            raise
        finally:
            self._require_hist.observe(clock() - start)

    def _require(
        self, release: object, *, subject: str = "release", analyst: str = ""
    ) -> ComplianceCertificate:
        if release is None:
            raise ComplianceDenied(
                f"{subject!r} declares no certifiable release object",
                subject=subject,
                analyst=analyst,
                reason="unspecified-release",
            )
        fingerprint = release_fingerprint(release)
        with self._lock:
            certificate = self._approved.get(fingerprint)
        if certificate is None:
            raise ComplianceDenied(
                f"no valid compliance certificate for {subject!r} "
                f"(release {fingerprint})",
                subject=subject,
                analyst=analyst,
                reason="no-certificate",
            )
        return certificate

    def is_approved(self, release: object) -> bool:
        """Whether the release's exact bits hold a registered approval."""
        try:
            fingerprint = release_fingerprint(release)
        except TypeError:
            return False
        with self._lock:
            return fingerprint in self._approved

    def certificate_for(self, release: object) -> ComplianceCertificate | None:
        """The registered certificate binding ``release``, if any."""
        try:
            fingerprint = release_fingerprint(release)
        except TypeError:
            return None
        with self._lock:
            return self._approved.get(fingerprint)

    @property
    def approved_count(self) -> int:
        with self._lock:
            return len(self._approved)

    def __repr__(self) -> str:
        policy = self.policy.name if self.policy is not None else None
        return f"ComplianceGate(policy={policy!r}, approved={self.approved_count})"
