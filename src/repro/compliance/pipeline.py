"""The release-approval pipeline: verifiers in, legal certificate out.

:class:`CompliancePipeline` runs a fixed set of
:class:`~repro.compliance.verifiers.Verifier` instances over a release,
deterministically — verifiers execute in identifier order whatever order
they were registered in, and each draws its randomness from its own
``derive_rng(seed, "compliance", policy, identifier)`` stream, so a
pipeline run is a pure function of ``(release, data, ledger, policy,
seed)`` — then feeds the results through the legal layer's falsifiability
gate (:func:`repro.legal.claims.derive`):

* every check passed → an **approval** verdict whose premises are the
  checks, each established by a passed
  :class:`~repro.core.theorems.TheoremCheck`, qualified per the paper's
  Section 2.4.1 (a necessary condition, not a compliance determination);
* any check failed → a **denial** verdict whose premises *name the
  failing checks*, each established by the measured refutation — the
  Legal Theorem 2.1 direction: a demonstrated failure of the technical
  condition is positive evidence for the negative legal conclusion.

Either way the outcome is a content-addressed
:class:`~repro.compliance.certificate.ComplianceCertificate`.
"""

from __future__ import annotations

from typing import Sequence

from repro.compliance.certificate import ComplianceCertificate, release_fingerprint
from repro.compliance.policy import Policy
from repro.compliance.verifiers import CheckResult, ReleaseContext, Verifier
from repro.core.theorems import TheoremCheck
from repro.legal.claims import LegalClaim, TechnicalPremise, derive
from repro.legal.theorems import (
    ASSUMPTION_PSO_NECESSARY,
    ASSUMPTION_SINGLING_OUT_NECESSARY,
)

__all__ = ["CompliancePipeline"]

#: Qualification carried by every approval, per the paper's Section 2.4.1.
_APPROVAL_QUALIFICATION = (
    "necessary condition only; approval under this policy is not by itself "
    "a compliance determination"
)


def _premise_from_check(check: CheckResult) -> TechnicalPremise:
    """A passed check as an established premise of the approval verdict."""
    return TechnicalPremise(
        identifier=check.identifier,
        statement=check.requirement,
        evidence=TheoremCheck(
            theorem=f"compliance:{check.identifier}",
            claim=check.requirement,
            passed=check.passed,
            measurements=dict(check.measurements),
        ),
    )


def _refutation_from_check(check: CheckResult) -> TechnicalPremise:
    """A failed check as an established *refutation* premise.

    The measured failure is itself the established fact (the same polarity
    the Theorem 2.10 checks use: the check "k-anonymity fails PSO" passes
    when the attack succeeds), so the denial verdict clears the
    falsifiability gate on real evidence.
    """
    statement = f"policy requirement violated: {check.requirement}"
    return TechnicalPremise(
        identifier=check.identifier,
        statement=statement,
        evidence=TheoremCheck(
            theorem=f"compliance:{check.identifier}",
            claim=check.detail or statement,
            passed=True,
            measurements=dict(check.measurements),
        ),
    )


class CompliancePipeline:
    """Deterministic verifier battery with a legal-derivation back end.

    Args:
        verifiers: the checks every release must face; identifiers must be
            unique (they name premises in the verdict).  Registration
            order is irrelevant — execution is in identifier order.
        policy: the :class:`~repro.compliance.policy.Policy` to enforce.
        seed: master seed for the verifiers' derived noise streams.
    """

    def __init__(
        self, verifiers: Sequence[Verifier], policy: Policy, *, seed: int = 0
    ):
        ordered = sorted(verifiers, key=lambda verifier: verifier.identifier)
        identifiers = [verifier.identifier for verifier in ordered]
        duplicates = {
            identifier
            for identifier in identifiers
            if identifiers.count(identifier) > 1
        }
        if duplicates:
            raise ValueError(
                f"duplicate verifier identifiers: {sorted(duplicates)}"
            )
        if not ordered:
            raise ValueError("a pipeline needs at least one verifier")
        self.verifiers: tuple[Verifier, ...] = tuple(ordered)
        self.policy = policy
        self.seed = int(seed)

    def run_checks(
        self,
        release: object,
        *,
        data: object | None = None,
        accountant: object | None = None,
    ) -> tuple[CheckResult, ...]:
        """Run every verifier; results come back in identifier order."""
        from repro.utils.rng import derive_rng

        context = ReleaseContext(release=release, data=data, accountant=accountant)
        results = []
        for verifier in self.verifiers:
            rng = derive_rng(
                self.seed, "compliance", self.policy.name, verifier.identifier
            )
            results.append(verifier.check(context, self.policy, rng))
        return tuple(results)

    def certify(
        self,
        release: object,
        *,
        data: object | None = None,
        accountant: object | None = None,
        subject: str = "release",
    ) -> ComplianceCertificate:
        """Check, derive the legal verdict, and mint the certificate."""
        checks = self.run_checks(release, data=data, accountant=accountant)
        approved = all(check.passed for check in checks)
        assumptions = [ASSUMPTION_PSO_NECESSARY, ASSUMPTION_SINGLING_OUT_NECESSARY]
        if approved:
            claim = LegalClaim(
                identifier="Release-Approval",
                conclusion=(
                    f"release {subject!r} meets policy "
                    f"{self.policy.name!r}: every machine-checked requirement "
                    "for preventing GDPR singling out is established; the "
                    "release may be served"
                ),
                rule=(
                    "all technical premises established by measurement => "
                    "approve (Section 2.4 falsifiability discipline)"
                ),
            )
            premises = [_premise_from_check(check) for check in checks]
            verdict = derive(claim, assumptions, premises, _APPROVAL_QUALIFICATION)
        else:
            failing = [check for check in checks if not check.passed]
            names = ", ".join(check.identifier for check in failing)
            claim = LegalClaim(
                identifier="Release-Denial",
                conclusion=(
                    f"release {subject!r} fails policy "
                    f"{self.policy.name!r} (refuted: {names}); it fails to "
                    "prevent singling out as the GDPR requires and must not "
                    "be served"
                ),
                rule=(
                    "any measured violation of a required technical "
                    "condition => deny (the Legal Theorem 2.1 direction: "
                    "failing the technical condition implies failing the "
                    "legal standard)"
                ),
            )
            premises = [_refutation_from_check(check) for check in failing]
            verdict = derive(claim, assumptions, premises)
        return ComplianceCertificate(
            subject=subject,
            release_fingerprint=release_fingerprint(release),
            policy=self.policy,
            approved=approved,
            checks=checks,
            verdict=verdict,
            seed=self.seed,
        )
