"""Query-answering mechanisms with the noise models the paper discusses.

Each :class:`QueryAnswerer` holds a private binary dataset and answers
:class:`~repro.queries.query.SubsetQuery` objects.  The subclasses realize
the regimes of Theorem 1.1 and of the "Fundamental Law of Information
Recovery":

* :class:`ExactAnswerer` — no protection at all (alpha = 0).
* :class:`BoundedNoiseAnswerer` — worst-case error bounded by ``alpha``
  (the theorem's accuracy guarantee), with selectable noise shapes.
* :class:`RoundingAnswerer` — answers rounded to a grid, a common (broken)
  pre-DP disclosure-limitation method; error bounded by half the grid step.
* :class:`SubsamplingAnswerer` — answers computed from a random subsample,
  another classic statistical-disclosure-control technique.
* :class:`LaplaceAnswerer` — the Laplace mechanism of Theorem 1.3, spending
  ``epsilon_per_query`` per answer; *not* bounded-error, and the one
  defense here that actually composes safely.
* :class:`GaussianAnswerer` — the Gaussian mechanism, (epsilon, delta)-DP
  per answer with the classical sigma calibration; the approximate-DP
  regime of the 2020 Census deployment.

Answerers serve queries two ways: one at a time through :meth:`answer`, or
a whole :class:`~repro.queries.workload.Workload` at once through
:meth:`answer_workload`, which computes every true answer with one sparse
matrix-vector product and draws all noise in one vectorized RNG call.  Because
each noise sample consumes exactly one underlying uniform draw in either
path, the batched answers are bit-identical to the per-query loop for any
seed and any batch split — determinism is never the price of speed.

All answerers count how many queries they served; the attacks report that
number, since "too many questions" is half of the Fundamental Law.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.queries.query import SubsetQuery, _validate_binary
from repro.queries.workload import Workload
from repro.utils.rng import RngSeed, ensure_rng


class QueryAnswerer(ABC):
    """Holds a private binary dataset; answers subset queries.

    The private data is validated (shape, 0/1 entries) exactly once, here at
    construction; the per-query and batched answer paths both reuse the
    validated array without re-checking it.

    Answerers are safe to share across threads: each instance serializes its
    answer paths under a lock, so concurrent :meth:`answer` /
    :meth:`answer_workload` calls cannot corrupt the RNG stream or lose
    counter increments.  *Which* answer a given call receives still depends
    on arrival order — callers that need per-caller determinism (e.g. the
    query service) give each caller its own answerer instance.
    """

    def __init__(self, data: np.ndarray):
        self._data = _validate_binary(np.asarray(data), np.asarray(data).size)
        self.queries_answered = 0
        self._answer_lock = threading.Lock()

    @property
    def n(self) -> int:
        """Size of the private dataset."""
        return int(self._data.size)

    def _true(self, query: SubsetQuery) -> int:
        """Exact answer on the (already validated) private data."""
        return int(self._data[query.mask].sum())

    def answer(self, query: SubsetQuery) -> float:
        """Answer one query (subclasses add their noise in :meth:`_noisy`)."""
        if query.n != self.n:
            raise ValueError(f"query addresses n={query.n}, data has n={self.n}")
        with self._answer_lock:
            self.queries_answered += 1
            return self._noisy(query)

    def answer_workload(self, workload: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        """Answer a packed workload; returns an ``(m,)`` array of answers.

        Bit-identical to calling :meth:`answer` on each query in order (for
        the same RNG state), but the true answers come from one sparse
        matvec and the noise from one vectorized draw.  The query counter
        advances by ``m``.
        """
        workload = Workload.coerce(workload)
        if workload.n != self.n:
            raise ValueError(f"workload addresses n={workload.n}, data has n={self.n}")
        with self._answer_lock:
            answers = self._noisy_workload(workload)
            self.queries_answered += len(workload)
        return answers

    def answer_all(self, queries: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        """Answer a workload; returns an ``(m,)`` array of answers.

        Alias of :meth:`answer_workload` (kept for the original list-based
        call sites); the batched fast path applies either way.
        """
        return self.answer_workload(queries)

    @abstractmethod
    def _noisy(self, query: SubsetQuery) -> float:
        """The (possibly noisy) answer to ``query``."""

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        """Batched noisy answers; subclasses override with vectorized paths.

        The base implementation loops :meth:`_noisy` so third-party
        subclasses that only define the scalar path stay correct.
        """
        return np.array([self._noisy(query) for query in workload], dtype=float)

    @property
    @abstractmethod
    def error_bound(self) -> float:
        """A worst-case bound alpha on ``|answer - true|``, or ``inf``."""


class ExactAnswerer(QueryAnswerer):
    """Answers every query exactly (alpha = 0): blatantly non-private."""

    @property
    def error_bound(self) -> float:
        return 0.0

    def _noisy(self, query: SubsetQuery) -> float:
        return float(self._true(query))

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        return workload.true_answers(self._data, validate=False).astype(np.float64)


class BoundedNoiseAnswerer(QueryAnswerer):
    """Adds noise guaranteed to stay within ``alpha`` of the true answer.

    ``shape`` selects the noise distribution within the [-alpha, alpha]
    envelope:

    * ``"uniform"`` — uniform on [-alpha, alpha] (the default);
    * ``"extremes"`` — a fair coin on {-alpha, +alpha} (worst case for
      averaging-style defenses, still within the theorem's model).
    """

    def __init__(self, data: np.ndarray, alpha: float, shape: str = "uniform", rng: RngSeed = None):
        super().__init__(data)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if shape not in ("uniform", "extremes"):
            raise ValueError(f"unknown noise shape: {shape!r}")
        self.alpha = float(alpha)
        self.shape = shape
        self._rng = ensure_rng(rng)

    @property
    def error_bound(self) -> float:
        return self.alpha

    def _noisy(self, query: SubsetQuery) -> float:
        true = self._true(query)
        if self.alpha == 0:
            return float(true)
        if self.shape == "uniform":
            noise = self._rng.uniform(-self.alpha, self.alpha)
        else:
            noise = self.alpha * (1 if self._rng.random() < 0.5 else -1)
        return float(true + noise)

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False).astype(np.float64)
        if self.alpha == 0:
            return true
        if self.shape == "uniform":
            noise = self._rng.uniform(-self.alpha, self.alpha, size=len(workload))
        else:
            flips = self._rng.random(len(workload)) < 0.5
            noise = np.where(flips, self.alpha, -self.alpha)
        return true + noise


class RoundingAnswerer(QueryAnswerer):
    """Rounds answers to the nearest multiple of ``step`` (alpha = step/2)."""

    def __init__(self, data: np.ndarray, step: int):
        super().__init__(data)
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self.step = int(step)

    @property
    def error_bound(self) -> float:
        return self.step / 2.0

    def _noisy(self, query: SubsetQuery) -> float:
        true = self._true(query)
        return float(round(true / self.step) * self.step)

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False)
        # np.round and Python round() both round half to even, so the
        # vectorized grid matches the scalar path exactly.
        return np.round(true / self.step) * self.step


class SubsamplingAnswerer(QueryAnswerer):
    """Answers from a random ``rate`` subsample, scaled back up.

    A classic SDC technique: compute the statistic on a subsample and
    extrapolate.  The error is *not* worst-case bounded (``error_bound`` is
    the ~95th percentile of the binomial deviation), which is exactly why
    the reconstruction experiments show it failing at high subsampling
    rates and defending only when the implied noise exceeds ~sqrt(n).
    """

    def __init__(self, data: np.ndarray, rate: float, rng: RngSeed = None):
        super().__init__(data)
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must lie in (0, 1], got {rate}")
        self.rate = float(rate)
        generator = ensure_rng(rng)
        keep = generator.random(self.n) < rate
        self._subsample_mask = keep
        # The subsample is fixed at construction, so batched answering only
        # needs the sampled records: zeroing the rest lets true_answers run
        # the same sparse matvec against the thinned data.
        self._subsampled_data = np.where(keep, self._data, 0)

    @property
    def error_bound(self) -> float:
        # ~2 standard deviations of the subsampling error on a size-n/2 query.
        return 2.0 * np.sqrt(self.n * (1 - self.rate) / max(self.rate, 1e-12)) / 2.0

    def _noisy(self, query: SubsetQuery) -> float:
        selected = query.mask & self._subsample_mask
        count = float(self._data[selected].sum())
        return count / self.rate

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        counts = workload.true_answers(self._subsampled_data, validate=False)
        return counts.astype(np.float64) / self.rate


class LaplaceAnswerer(QueryAnswerer):
    """The Laplace mechanism (Theorem 1.3), one epsilon charge per query.

    Each subset-count query has sensitivity 1, so adding ``Lap(1/eps)``
    noise makes each answer eps-differentially private; ``k`` answers
    compose to ``k * eps`` (tracked in :attr:`epsilon_spent`).
    """

    def __init__(self, data: np.ndarray, epsilon_per_query: float, rng: RngSeed = None):
        super().__init__(data)
        if epsilon_per_query <= 0:
            raise ValueError("epsilon_per_query must be positive")
        self.epsilon_per_query = float(epsilon_per_query)
        self._rng = ensure_rng(rng)

    @property
    def error_bound(self) -> float:
        return float("inf")  # Laplace noise is unbounded.

    @property
    def epsilon_spent(self) -> float:
        """Total privacy loss under basic composition."""
        return self.queries_answered * self.epsilon_per_query

    def _noisy(self, query: SubsetQuery) -> float:
        true = self._true(query)
        return float(true + self._rng.laplace(0.0, 1.0 / self.epsilon_per_query))

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False).astype(np.float64)
        scale = 1.0 / self.epsilon_per_query
        return true + self._rng.laplace(0.0, scale, size=len(workload))


class GaussianAnswerer(QueryAnswerer):
    """The Gaussian mechanism: (epsilon, delta)-DP per answer.

    Each subset-count query has sensitivity 1, so adding ``N(0, sigma^2)``
    noise with the classical calibration ``sigma = sqrt(2 ln(1.25/delta)) /
    epsilon`` makes each answer (epsilon, delta)-differentially private for
    ``epsilon <= 1``.  Like :class:`LaplaceAnswerer` the error is unbounded,
    so the LP attack must fall back to least-l1 decoding; unlike Laplace the
    guarantee is approximate DP, the regime of the 2020 Census deployment.
    """

    def __init__(
        self,
        data: np.ndarray,
        epsilon_per_query: float,
        delta_per_query: float = 1e-6,
        rng: RngSeed = None,
    ):
        super().__init__(data)
        if not 0 < epsilon_per_query <= 1:
            raise ValueError(
                "the classical Gaussian calibration requires 0 < epsilon <= 1, "
                f"got {epsilon_per_query}"
            )
        if not 0 < delta_per_query < 1:
            raise ValueError(f"delta must lie in (0, 1), got {delta_per_query}")
        self.epsilon_per_query = float(epsilon_per_query)
        self.delta_per_query = float(delta_per_query)
        self.sigma = float(
            np.sqrt(2.0 * np.log(1.25 / self.delta_per_query)) / self.epsilon_per_query
        )
        self._rng = ensure_rng(rng)

    @property
    def error_bound(self) -> float:
        return float("inf")  # Gaussian noise is unbounded.

    @property
    def epsilon_spent(self) -> float:
        """Total epsilon under basic composition (delta composes likewise)."""
        return self.queries_answered * self.epsilon_per_query

    def _noisy(self, query: SubsetQuery) -> float:
        true = self._true(query)
        return float(true + self._rng.normal(0.0, self.sigma))

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False).astype(np.float64)
        return true + self._rng.normal(0.0, self.sigma, size=len(workload))


class QueryBudgetExceeded(RuntimeError):
    """Raised when a budgeted answerer refuses further queries."""


class BudgetedAnswerer(QueryAnswerer):
    """Wraps an answerer with a hard query budget — Theorem 1.1's other escape.

    The Fundamental Law offers two defenses: add noise, or "limit the number
    of queries asked".  This wrapper implements the latter as infrastructure:
    after ``max_queries`` answers it raises :class:`QueryBudgetExceeded`,
    cutting the LP attack off below the m = Omega(n) it needs.  A batched
    workload is all-or-nothing: if it does not fit in the remaining budget
    it is refused outright, with no queries consumed.

    The charge is atomic: budget is *reserved* under a lock before the inner
    answerer runs (and released if it fails), so concurrent ``answer`` /
    ``answer_workload`` callers can never jointly overshoot ``max_queries``.
    """

    def __init__(self, inner: QueryAnswerer, max_queries: int):
        if max_queries <= 0:
            raise ValueError("max_queries must be positive")
        # Share the inner answerer's data reference without re-validating.
        self._data = inner._data
        self.queries_answered = 0
        self._answer_lock = threading.Lock()
        self.inner = inner
        self.max_queries = int(max_queries)

    @property
    def error_bound(self) -> float:
        return self.inner.error_bound

    @property
    def remaining(self) -> int:
        """Queries left in the budget."""
        return self.max_queries - self.queries_answered

    def _reserve(self, count: int) -> None:
        """Atomically claim ``count`` queries or refuse without consuming any."""
        with self._answer_lock:
            if self.queries_answered + count > self.max_queries:
                if count == 1:
                    raise QueryBudgetExceeded(
                        f"query budget of {self.max_queries} exhausted"
                    )
                raise QueryBudgetExceeded(
                    f"workload of {count} queries exceeds the remaining "
                    f"budget of {self.remaining} (max {self.max_queries})"
                )
            self.queries_answered += count

    def _release(self, count: int) -> None:
        with self._answer_lock:
            self.queries_answered -= count

    def answer(self, query: SubsetQuery) -> float:
        self._reserve(1)
        try:
            return self.inner.answer(query)
        except Exception:
            self._release(1)
            raise

    def answer_workload(self, workload: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        workload = Workload.coerce(workload)
        self._reserve(len(workload))
        try:
            return self.inner.answer_workload(workload)
        except Exception:
            self._release(len(workload))
            raise

    def _noisy(self, query: SubsetQuery) -> float:  # pragma: no cover - unused
        return self.inner._noisy(query)
