"""Query-answering mechanisms with the noise models the paper discusses.

Each :class:`QueryAnswerer` holds a private binary dataset and answers
:class:`~repro.queries.query.SubsetQuery` objects.  The subclasses realize
the regimes of Theorem 1.1 and of the "Fundamental Law of Information
Recovery":

* :class:`ExactAnswerer` — no protection at all (alpha = 0).
* :class:`BoundedNoiseAnswerer` — worst-case error bounded by ``alpha``
  (the theorem's accuracy guarantee), with selectable noise shapes.
* :class:`RoundingAnswerer` — answers rounded to a grid, a common (broken)
  pre-DP disclosure-limitation method; error bounded by half the grid step.
* :class:`SubsamplingAnswerer` — answers computed from a random subsample,
  another classic statistical-disclosure-control technique.
* :class:`LaplaceAnswerer` — the Laplace mechanism of Theorem 1.3, spending
  ``epsilon_per_query`` per answer; *not* bounded-error, and the one
  defense here that actually composes safely.
* :class:`GaussianAnswerer` — the Gaussian mechanism, (epsilon, delta)-DP
  per answer with the classical sigma calibration; the approximate-DP
  regime of the 2020 Census deployment.

Answerers serve queries two ways: one at a time through :meth:`answer`, or
a whole :class:`~repro.queries.workload.Workload` at once through
:meth:`answer_workload`, which computes every true answer with one sparse
matrix-vector product and draws all noise in one vectorized RNG call.

All noise comes from :mod:`repro.privacy.kernels`: each answerer builds its
:class:`~repro.privacy.kernels.NoiseKernel` once (the kernel owns the
sigma/scale calibration — it is not re-derived here) and publishes it in a
:class:`~repro.privacy.kernels.MechanismSpec` via :attr:`QueryAnswerer.spec`,
so the service accountant charges and the DP verifier tests the identical
object that answers queries.  Because each kernel sample consumes exactly
one underlying uniform draw in either path, the batched answers are
bit-identical to the per-query loop for any seed and any batch split —
determinism is never the price of speed.

All answerers count how many queries they served; the attacks report that
number, since "too many questions" is half of the Fundamental Law.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.privacy.accounting import BudgetExhausted, PrivacyAccountant, PrivacySpend
from repro.privacy.kernels import (
    BoundedExtremesKernel,
    BoundedUniformKernel,
    GaussianKernel,
    LaplaceKernel,
    MechanismSpec,
    ZeroKernel,
)
from repro.queries.query import SubsetQuery, _validate_binary
from repro.queries.workload import Workload
from repro.utils.rng import RngSeed, ensure_rng


class QueryAnswerer(ABC):
    """Holds a private binary dataset; answers subset queries.

    The private data is validated (shape, 0/1 entries) exactly once, here at
    construction; the per-query and batched answer paths both reuse the
    validated array without re-checking it.

    Answerers are safe to share across threads: each instance serializes its
    answer paths under a lock, so concurrent :meth:`answer` /
    :meth:`answer_workload` calls cannot corrupt the RNG stream or lose
    counter increments.  *Which* answer a given call receives still depends
    on arrival order — callers that need per-caller determinism (e.g. the
    query service) give each caller its own answerer instance.
    """

    def __init__(self, data: np.ndarray):
        self._data = _validate_binary(np.asarray(data), np.asarray(data).size)
        self.queries_answered = 0
        self._answer_lock = threading.Lock()

    @property
    def n(self) -> int:
        """Size of the private dataset."""
        return int(self._data.size)

    def _true(self, query: SubsetQuery) -> int:
        """Exact answer on the (already validated) private data."""
        return int(self._data[query.mask].sum())

    def answer(self, query: SubsetQuery) -> float:
        """Answer one query (subclasses add their noise in :meth:`_noisy`)."""
        if query.n != self.n:
            raise ValueError(f"query addresses n={query.n}, data has n={self.n}")
        with self._answer_lock:
            self.queries_answered += 1
            return self._noisy(query)

    def answer_workload(self, workload: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        """Answer a packed workload; returns an ``(m,)`` array of answers.

        Bit-identical to calling :meth:`answer` on each query in order (for
        the same RNG state), but the true answers come from one sparse
        matvec and the noise from one vectorized draw.  The query counter
        advances by ``m``.
        """
        workload = Workload.coerce(workload)
        if workload.n != self.n:
            raise ValueError(f"workload addresses n={workload.n}, data has n={self.n}")
        with self._answer_lock:
            answers = self._noisy_workload(workload)
            self.queries_answered += len(workload)
        return answers

    def answer_all(self, queries: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        """Thin alias of :meth:`answer_workload` — prefer that name.

        Kept only for backward compatibility with the original list-based
        call sites (all internal callers now use :meth:`answer_workload`);
        behavior is identical, including the batched fast path and the
        bit-for-bit RNG stream.
        """
        return self.answer_workload(queries)

    @property
    def spec(self) -> MechanismSpec:
        """The mechanism's auditable identity: kernel + per-query spend.

        The service accountant charges ``spec.spend`` per answered query and
        :func:`repro.dp.verify.verify_spec` empirically tests ``spec.kernel``
        — the same object in all three places.  Subclasses describe
        themselves in :meth:`_build_spec`; the result is cached.
        """
        spec = getattr(self, "_spec", None)
        if spec is None:
            spec = self._build_spec()
            self._spec = spec
        return spec

    def _build_spec(self) -> MechanismSpec:
        """Default spec for subclasses that predate the kernel layer."""
        return MechanismSpec(
            name=type(self).__name__,
            kernel=ZeroKernel(),
            spend=PrivacySpend(float(getattr(self, "epsilon_per_query", 0.0))),
            error_bound=self.error_bound,
        )

    @abstractmethod
    def _noisy(self, query: SubsetQuery) -> float:
        """The (possibly noisy) answer to ``query``."""

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        """Batched noisy answers; subclasses override with vectorized paths.

        The base implementation loops :meth:`_noisy` so third-party
        subclasses that only define the scalar path stay correct.
        """
        return np.array([self._noisy(query) for query in workload], dtype=float)

    @property
    @abstractmethod
    def error_bound(self) -> float:
        """A worst-case bound alpha on ``|answer - true|``, or ``inf``."""


class ExactAnswerer(QueryAnswerer):
    """Answers every query exactly (alpha = 0): blatantly non-private."""

    @property
    def error_bound(self) -> float:
        return 0.0

    def _build_spec(self) -> MechanismSpec:
        return MechanismSpec(name="exact", kernel=ZeroKernel(), error_bound=0.0)

    def _noisy(self, query: SubsetQuery) -> float:
        return float(self._true(query))

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        return workload.true_answers(self._data, validate=False).astype(np.float64)


class BoundedNoiseAnswerer(QueryAnswerer):
    """Adds noise guaranteed to stay within ``alpha`` of the true answer.

    ``shape`` selects the noise distribution within the [-alpha, alpha]
    envelope:

    * ``"uniform"`` — uniform on [-alpha, alpha] (the default);
    * ``"extremes"`` — a fair coin on {-alpha, +alpha} (worst case for
      averaging-style defenses, still within the theorem's model).
    """

    def __init__(self, data: np.ndarray, alpha: float, shape: str = "uniform", rng: RngSeed = None):
        super().__init__(data)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if shape not in ("uniform", "extremes"):
            raise ValueError(f"unknown noise shape: {shape!r}")
        self.alpha = float(alpha)
        self.shape = shape
        kernel_class = BoundedUniformKernel if shape == "uniform" else BoundedExtremesKernel
        self._kernel = kernel_class(self.alpha)
        self._rng = ensure_rng(rng)

    @property
    def error_bound(self) -> float:
        return self.alpha

    def _build_spec(self) -> MechanismSpec:
        return MechanismSpec(
            name=f"bounded-{self.shape}",
            kernel=self._kernel,
            error_bound=self.alpha,
        )

    def _noisy(self, query: SubsetQuery) -> float:
        return float(self._true(query) + self._kernel.sample(self._rng))

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False).astype(np.float64)
        return true + self._kernel.sample_n(self._rng, len(workload))


class RoundingAnswerer(QueryAnswerer):
    """Rounds answers to the nearest multiple of ``step`` (alpha = step/2)."""

    def __init__(self, data: np.ndarray, step: int):
        super().__init__(data)
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self.step = int(step)

    @property
    def error_bound(self) -> float:
        return self.step / 2.0

    def _build_spec(self) -> MechanismSpec:
        return MechanismSpec(
            name=f"rounding(step={self.step})",
            kernel=ZeroKernel(),
            error_bound=self.step / 2.0,
        )

    def _noisy(self, query: SubsetQuery) -> float:
        true = self._true(query)
        return float(round(true / self.step) * self.step)

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False)
        # np.round and Python round() both round half to even, so the
        # vectorized grid matches the scalar path exactly.
        return np.round(true / self.step) * self.step


class SubsamplingAnswerer(QueryAnswerer):
    """Answers from a random ``rate`` subsample, scaled back up.

    A classic SDC technique: compute the statistic on a subsample and
    extrapolate.  The error is *not* worst-case bounded (``error_bound`` is
    the ~95th percentile of the binomial deviation), which is exactly why
    the reconstruction experiments show it failing at high subsampling
    rates and defending only when the implied noise exceeds ~sqrt(n).
    """

    def __init__(self, data: np.ndarray, rate: float, rng: RngSeed = None):
        super().__init__(data)
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must lie in (0, 1], got {rate}")
        self.rate = float(rate)
        generator = ensure_rng(rng)
        keep = generator.random(self.n) < rate
        self._subsample_mask = keep
        # The subsample is fixed at construction, so batched answering only
        # needs the sampled records: zeroing the rest lets true_answers run
        # the same sparse matvec against the thinned data.
        self._subsampled_data = np.where(keep, self._data, 0)

    @property
    def error_bound(self) -> float:
        # ~2 standard deviations of the subsampling error on a size-n/2 query.
        return 2.0 * np.sqrt(self.n * (1 - self.rate) / max(self.rate, 1e-12)) / 2.0

    def _build_spec(self) -> MechanismSpec:
        return MechanismSpec(
            name=f"subsample(rate={self.rate})",
            kernel=ZeroKernel(),
            error_bound=self.error_bound,
        )

    def _noisy(self, query: SubsetQuery) -> float:
        selected = query.mask & self._subsample_mask
        count = float(self._data[selected].sum())
        return count / self.rate

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        counts = workload.true_answers(self._subsampled_data, validate=False)
        return counts.astype(np.float64) / self.rate


class LaplaceAnswerer(QueryAnswerer):
    """The Laplace mechanism (Theorem 1.3), one epsilon charge per query.

    Each subset-count query has sensitivity 1, so adding ``Lap(1/eps)``
    noise makes each answer eps-differentially private; ``k`` answers
    compose to ``k * eps`` (tracked in :attr:`epsilon_spent`).
    """

    def __init__(self, data: np.ndarray, epsilon_per_query: float, rng: RngSeed = None):
        super().__init__(data)
        if epsilon_per_query <= 0:
            raise ValueError("epsilon_per_query must be positive")
        self.epsilon_per_query = float(epsilon_per_query)
        self._kernel = LaplaceKernel.calibrate(self.epsilon_per_query, sensitivity=1.0)
        self._rng = ensure_rng(rng)

    @property
    def error_bound(self) -> float:
        return float("inf")  # Laplace noise is unbounded.

    @property
    def epsilon_spent(self) -> float:
        """Total privacy loss under basic composition."""
        return self.queries_answered * self.epsilon_per_query

    def _build_spec(self) -> MechanismSpec:
        return MechanismSpec(
            name=f"laplace(eps={self.epsilon_per_query})",
            kernel=self._kernel,
            spend=PrivacySpend(self.epsilon_per_query),
            dp=True,
        )

    def _noisy(self, query: SubsetQuery) -> float:
        return float(self._true(query) + self._kernel.sample(self._rng))

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False).astype(np.float64)
        return true + self._kernel.sample_n(self._rng, len(workload))


class GaussianAnswerer(QueryAnswerer):
    """The Gaussian mechanism: (epsilon, delta)-DP per answer.

    Each subset-count query has sensitivity 1, so adding ``N(0, sigma^2)``
    noise with the classical calibration ``sigma = sqrt(2 ln(1.25/delta)) /
    epsilon`` makes each answer (epsilon, delta)-differentially private for
    ``epsilon <= 1``.  Like :class:`LaplaceAnswerer` the error is unbounded,
    so the LP attack must fall back to least-l1 decoding; unlike Laplace the
    guarantee is approximate DP, the regime of the 2020 Census deployment.
    """

    def __init__(
        self,
        data: np.ndarray,
        epsilon_per_query: float,
        delta_per_query: float = 1e-6,
        rng: RngSeed = None,
    ):
        super().__init__(data)
        # The kernel owns the classical sigma calibration (and its
        # 0 < epsilon <= 1 validity check) — nothing is re-derived here.
        self._kernel = GaussianKernel.calibrate(
            epsilon_per_query, delta_per_query, sensitivity=1.0
        )
        self.epsilon_per_query = float(epsilon_per_query)
        self.delta_per_query = float(delta_per_query)
        self.sigma = self._kernel.sigma
        self._rng = ensure_rng(rng)

    @property
    def error_bound(self) -> float:
        return float("inf")  # Gaussian noise is unbounded.

    @property
    def epsilon_spent(self) -> float:
        """Total epsilon under basic composition (delta composes likewise)."""
        return self.queries_answered * self.epsilon_per_query

    def _build_spec(self) -> MechanismSpec:
        return MechanismSpec(
            name=f"gaussian(eps={self.epsilon_per_query}, delta={self.delta_per_query})",
            kernel=self._kernel,
            spend=PrivacySpend(self.epsilon_per_query, self.delta_per_query),
            dp=True,
        )

    def _noisy(self, query: SubsetQuery) -> float:
        return float(self._true(query) + self._kernel.sample(self._rng))

    def _noisy_workload(self, workload: Workload) -> np.ndarray:
        true = workload.true_answers(self._data, validate=False).astype(np.float64)
        return true + self._kernel.sample_n(self._rng, len(workload))


class QueryBudgetExceeded(BudgetExhausted):
    """Raised when a budgeted answerer refuses further queries.

    A :class:`~repro.privacy.accounting.BudgetExhausted` (and therefore a
    ``RuntimeError``, as before the accounting layers were unified): the
    mechanism-level query budget is the same kind of refusal the service
    accountant issues, carrying the same ``scope``/``requested``/``budget``/
    ``spent`` attributes.
    """


class BudgetedAnswerer(QueryAnswerer):
    """Wraps an answerer with a hard query budget — Theorem 1.1's other escape.

    The Fundamental Law offers two defenses: add noise, or "limit the number
    of queries asked".  This wrapper implements the latter as infrastructure:
    after ``max_queries`` answers it raises :class:`QueryBudgetExceeded`,
    cutting the LP attack off below the m = Omega(n) it needs.  A batched
    workload is all-or-nothing: if it does not fit in the remaining budget
    it is refused outright, with no queries consumed.

    The budget is a real :class:`~repro.privacy.accounting.PrivacyAccountant`
    ledger — the same all-or-nothing reserve/rollback the service accountant
    uses, charging the inner answerer's ``spec.spend`` per query — so
    concurrent ``answer`` / ``answer_workload`` callers can never jointly
    overshoot ``max_queries``, and :attr:`epsilon_spent` falls out of the
    ledger instead of a private counter.
    """

    def __init__(self, inner: QueryAnswerer, max_queries: int):
        if max_queries <= 0:
            raise ValueError("max_queries must be positive")
        # Share the inner answerer's data reference without re-validating.
        self._data = inner._data
        self.inner = inner
        self.max_queries = int(max_queries)
        self._epsilon_per_query = inner.spec.epsilon_per_query
        self._ledger = PrivacyAccountant(
            max_queries=self.max_queries, record_entries=False
        )

    @property
    def spec(self) -> MechanismSpec:
        """The wrapped mechanism's spec (budgeting adds no noise)."""
        return self.inner.spec

    @property
    def error_bound(self) -> float:
        return self.inner.error_bound

    @property
    def queries_answered(self) -> int:
        """Queries charged against the budget so far."""
        return self._ledger.queries_charged

    @property
    def epsilon_spent(self) -> float:
        """Composed epsilon charged through the ledger (basic composition)."""
        return self._ledger.total()[0]

    @property
    def remaining(self) -> int:
        """Queries left in the budget."""
        return self.max_queries - self._ledger.queries_charged

    def _reserve(self, count: int) -> None:
        """Atomically claim ``count`` queries or refuse without consuming any."""
        try:
            self._ledger.reserve(count, self._epsilon_per_query)
        except BudgetExhausted as refusal:
            if count == 1:
                message = f"query budget of {self.max_queries} exhausted"
            else:
                message = (
                    f"workload of {count} queries exceeds the remaining "
                    f"budget of {self.remaining} (max {self.max_queries})"
                )
            raise QueryBudgetExceeded(
                message,
                scope=refusal.scope,
                requested=refusal.requested,
                budget=refusal.budget,
                spent=refusal.spent,
            ) from None

    def _release(self, count: int) -> None:
        self._ledger.rollback(count, self._epsilon_per_query)

    def answer(self, query: SubsetQuery) -> float:
        self._reserve(1)
        try:
            return self.inner.answer(query)
        except Exception:
            self._release(1)
            raise

    def answer_workload(self, workload: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        workload = Workload.coerce(workload)
        self._reserve(len(workload))
        try:
            return self.inner.answer_workload(workload)
        except Exception:
            self._release(len(workload))
            raise

    def _noisy(self, query: SubsetQuery) -> float:  # pragma: no cover - unused
        return self.inner._noisy(query)
