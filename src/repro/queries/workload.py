"""Query workloads for the reconstruction attacks.

Theorem 1.1 distinguishes two regimes by workload: *all* ``2^n`` subset
queries (exponential attack) versus polynomially many random subsets
(LP-decoding attack).  Both workloads are generated here, and the
:class:`Workload` class packs a whole workload into one ``(m, n)`` boolean
matrix so the answering mechanisms and the LP decoder can process every
query at once instead of looping in Python.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np
import scipy.sparse

from repro.queries.query import SubsetQuery, _validate_binary
from repro.utils.rng import RngSeed, ensure_rng

#: Refuse to materialize exponential workloads beyond this n.
MAX_EXHAUSTIVE_N = 20


class Workload:
    """An ``(m, n)`` batch of subset queries packed as one boolean matrix.

    Row ``i`` is the membership mask of query ``i``.  The packed form gives
    the hot paths what they need without per-query Python overhead:

    * :meth:`true_answers` computes all ``m`` exact answers with one sparse
      matrix-vector product (``A @ x``);
    * :meth:`matrix` exposes dense views in any dtype plus a cached
      :class:`scipy.sparse.csr_matrix` for the LP solver, so feasibility and
      least-l1 decoding reuse one assembled matrix;
    * :meth:`select_columns` / :meth:`select_rows` slice the workload by
      operating on the cached CSR view directly, so the sharded
      reconstruction pipeline never re-packs (or even materializes) a dense
      mask matrix per shard;
    * indexing/iteration recovers per-query :class:`SubsetQuery` objects for
      code that still wants the one-at-a-time interface.

    A workload is either *mask-backed* (built from a dense boolean matrix,
    the common case) or *CSR-backed* (built by :meth:`from_csr` or the
    slicing methods); either representation materializes the other lazily
    and caches it, so hot paths pay only for the view they touch.
    """

    __slots__ = ("_masks", "_csr", "_shape")

    def __init__(self, masks: np.ndarray | Sequence[Sequence[bool]], copy: bool = True):
        array = np.array(masks, dtype=bool, copy=copy)
        if array.ndim != 2:
            raise ValueError(f"a workload must be a 2-D mask matrix, got ndim={array.ndim}")
        self._check_shape(array.shape)
        array.setflags(write=False)
        self._masks: np.ndarray | None = array
        self._csr: scipy.sparse.csr_matrix | None = None
        self._shape = array.shape

    @staticmethod
    def _check_shape(shape: tuple[int, int]) -> None:
        if shape[0] == 0:
            raise ValueError("a workload needs at least one query")
        if shape[1] == 0:
            raise ValueError("a workload must address at least one position")

    @classmethod
    def from_csr(cls, matrix: scipy.sparse.spmatrix, copy: bool = True) -> "Workload":
        """Build a workload directly from a sparse 0/1 matrix.

        The CSR (float64, the dtype the LP solver consumes) becomes the
        cached assembly immediately; the dense boolean mask matrix is only
        materialized if something asks for it.  This is how census-scale
        block-diagonal workloads are built without ever holding an
        ``(m, n)`` dense matrix in memory.
        """
        csr = scipy.sparse.csr_matrix(matrix, dtype=np.float64, copy=copy)
        cls._check_shape(csr.shape)
        instance = cls.__new__(cls)
        instance._masks = None
        instance._csr = csr
        instance._shape = (int(csr.shape[0]), int(csr.shape[1]))
        return instance

    @property
    def _mask_view(self) -> np.ndarray:
        """The dense boolean masks, materialized from the CSR on demand."""
        if self._masks is None:
            masks = self._csr.toarray().astype(bool)
            masks.setflags(write=False)
            self._masks = masks
        return self._masks

    @classmethod
    def from_queries(cls, queries: Sequence[SubsetQuery]) -> "Workload":
        """Pack a list of :class:`SubsetQuery` into one workload."""
        if not queries:
            raise ValueError("a workload needs at least one query")
        n = queries[0].n
        for query in queries:
            if query.n != n:
                raise ValueError("all queries must address the same dataset size")
        return cls(np.stack([query.mask for query in queries]), copy=False)

    @classmethod
    def coerce(cls, value: "Workload" | Sequence[SubsetQuery]) -> "Workload":
        """Accept either a :class:`Workload` or a sequence of queries."""
        if isinstance(value, cls):
            return value
        return cls.from_queries(list(value))

    @classmethod
    def random(
        cls, n: int, count: int, density: float = 0.5, rng: RngSeed = None
    ) -> "Workload":
        """``count`` i.i.d. random subsets, each position included w.p. ``density``.

        This is the polynomial workload of Theorem 1.1(ii).  All ``count * n``
        inclusion coin-flips come from one vectorized draw (row-major, so the
        stream matches ``count`` sequential per-query draws); degenerate
        all-empty rows are then redrawn so every query is informative.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if not 0.0 < density < 1.0:
            raise ValueError(f"density must lie in (0, 1), got {density}")
        generator = ensure_rng(rng)
        masks = generator.random((count, n)) < density
        empty = ~masks.any(axis=1)
        while empty.any():
            masks[empty] = generator.random((int(empty.sum()), n)) < density
            empty = ~masks.any(axis=1)
        return cls(masks, copy=False)

    @classmethod
    def all_subsets(cls, n: int) -> "Workload":
        """Every non-empty subset of ``[n]`` — the Theorem 1.1(i) workload.

        Row ``b - 1`` is the little-endian bit expansion of ``b`` for
        ``b = 1 .. 2^n - 1``, matching the candidate enumeration used by the
        exhaustive attack.  Bounded to ``n <= 20``.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if n > MAX_EXHAUSTIVE_N:
            mask_bytes = (2**n - 1) * n
            raise ValueError(
                f"refusing to materialize 2^{n} - 1 = {2**n - 1:,} queries: "
                f"the boolean mask matrix alone would need {mask_bytes:,} "
                f"bytes (~{mask_bytes / 2**30:,.1f} GiB); the cap is "
                f"n={MAX_EXHAUSTIVE_N}"
            )
        bits = np.arange(1, 2**n, dtype=np.int64)
        masks = ((bits[:, None] >> np.arange(n)) & 1).astype(bool)
        return cls(masks, copy=False)

    @property
    def m(self) -> int:
        """Number of queries in the workload."""
        return int(self._shape[0])

    @property
    def n(self) -> int:
        """The dataset size every query addresses."""
        return int(self._shape[1])

    @property
    def masks(self) -> np.ndarray:
        """The packed ``(m, n)`` boolean mask matrix (read-only)."""
        return self._mask_view

    def matrix(self, dtype: np.dtype | type = np.float64, sparse: bool = False):
        """The workload as an ``(m, n)`` matrix.

        ``sparse=True`` returns a CSR matrix; the float64 CSR is assembled
        once and cached, so the LP attack's feasibility and least-l1 modes
        (and repeated solves over the same workload) share one assembly.
        """
        if sparse:
            if self._csr is None:
                self._csr = scipy.sparse.csr_matrix(self._mask_view, dtype=np.float64)
            if np.dtype(dtype) == np.float64:
                return self._csr
            return self._csr.astype(dtype)
        return np.asarray(self._mask_view, dtype=dtype)

    def select_columns(self, idx: np.ndarray | Sequence[int]) -> "Workload":
        """The same ``m`` queries restricted to positions ``idx``.

        The slice is taken on the cached CSR assembly (assembling it on
        first use), not by re-packing the dense boolean mask matrix, so
        carving a per-block subproblem out of a census-scale workload costs
        O(nnz of the slice) instead of O(m * n).  The sliced workload is
        CSR-backed: its own dense masks only materialize if asked for.
        """
        idx = np.asarray(idx, dtype=np.intp)
        if idx.ndim != 1 or idx.size == 0:
            raise ValueError("idx must be a non-empty 1-D index array")
        return Workload.from_csr(self.matrix(sparse=True)[:, idx], copy=False)

    def select_rows(self, idx: np.ndarray | Sequence[int]) -> "Workload":
        """The sub-workload of queries ``idx``, sliced on the cached CSR."""
        idx = np.asarray(idx, dtype=np.intp)
        if idx.ndim != 1 or idx.size == 0:
            raise ValueError("idx must be a non-empty 1-D index array")
        return Workload.from_csr(self.matrix(sparse=True)[idx], copy=False)

    def true_answers(self, data: np.ndarray, validate: bool = True) -> np.ndarray:
        """All ``m`` exact answers ``A @ x`` on binary data ``x``, as int64.

        Computed as one CSR matrix-vector product against the same cached
        assembly the LP decoder uses — on realistic workloads the sparse
        matvec beats the dense boolean matmul (which must promote the whole
        mask matrix to int64) by one to two orders of magnitude.  The
        float64 accumulation is exact: every term is 0 or 1 and every count
        is at most ``n``, far below 2^53.  Answerers that validated their
        data once at construction pass ``validate=False`` to skip the O(n)
        binary check.
        """
        if validate:
            data = _validate_binary(np.asarray(data), self.n)
        else:
            data = np.asarray(data)
        products = self.matrix(sparse=True) @ data.astype(np.float64, copy=False)
        return products.astype(np.int64)

    def query(self, index: int) -> SubsetQuery:
        """Query ``index`` as a standalone :class:`SubsetQuery`."""
        return SubsetQuery(self._mask_view[index])

    def __len__(self) -> int:
        return self.m

    def __getitem__(self, index: int) -> SubsetQuery:
        return self.query(index)

    def __iter__(self) -> Iterator[SubsetQuery]:
        for row in self._mask_view:
            yield SubsetQuery(row)

    def __repr__(self) -> str:
        return f"Workload(m={self.m}, n={self.n})"


def all_subset_queries(n: int, include_empty: bool = False) -> list[SubsetQuery]:
    """Every subset of ``[n]`` as a query — the Theorem 1.1(i) workload.

    The empty subset carries no information and is skipped unless
    ``include_empty`` is set.  Bounded to ``n <= 20`` (about a million
    queries) so a typo cannot take the process down.
    """
    queries = list(Workload.all_subsets(n))
    if include_empty:
        queries.insert(0, SubsetQuery.from_indices([], n))
    return queries


def random_subset_queries(
    n: int, count: int, density: float = 0.5, rng: RngSeed = None
) -> list[SubsetQuery]:
    """``count`` i.i.d. random subsets, each position included w.p. ``density``.

    This is the polynomial workload of Theorem 1.1(ii); density-1/2 subsets
    are the standard choice for LP decoding.  Degenerate all-empty masks are
    resampled so every query is informative.
    """
    return list(Workload.random(n, count, density=density, rng=rng))


def singleton_queries(n: int) -> list[SubsetQuery]:
    """The ``n`` singleton queries {i} — maximally invasive, for baselines."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return list(Workload(np.eye(n, dtype=bool), copy=False))
