"""Query-workload generators for the reconstruction attacks.

Theorem 1.1 distinguishes two regimes by workload: *all* ``2^n`` subset
queries (exponential attack) versus polynomially many random subsets
(LP-decoding attack).  Both workloads are generated here.
"""

from __future__ import annotations

import numpy as np

from repro.queries.query import SubsetQuery
from repro.utils.rng import RngSeed, ensure_rng

#: Refuse to materialize exponential workloads beyond this n.
MAX_EXHAUSTIVE_N = 20


def all_subset_queries(n: int, include_empty: bool = False) -> list[SubsetQuery]:
    """Every subset of ``[n]`` as a query — the Theorem 1.1(i) workload.

    The empty subset carries no information and is skipped unless
    ``include_empty`` is set.  Bounded to ``n <= 20`` (about a million
    queries) so a typo cannot take the process down.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if n > MAX_EXHAUSTIVE_N:
        raise ValueError(
            f"refusing to materialize 2^{n} queries (cap is n={MAX_EXHAUSTIVE_N})"
        )
    masks = []
    start = 0 if include_empty else 1
    for bits in range(start, 2**n):
        mask = np.array([(bits >> i) & 1 for i in range(n)], dtype=bool)
        masks.append(SubsetQuery(mask))
    return masks


def random_subset_queries(
    n: int, count: int, density: float = 0.5, rng: RngSeed = None
) -> list[SubsetQuery]:
    """``count`` i.i.d. random subsets, each position included w.p. ``density``.

    This is the polynomial workload of Theorem 1.1(ii); density-1/2 subsets
    are the standard choice for LP decoding.  Degenerate all-empty masks are
    resampled so every query is informative.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0.0 < density < 1.0:
        raise ValueError(f"density must lie in (0, 1), got {density}")
    generator = ensure_rng(rng)
    queries = []
    while len(queries) < count:
        mask = generator.random(n) < density
        if not mask.any():
            continue
        queries.append(SubsetQuery(mask))
    return queries


def singleton_queries(n: int) -> list[SubsetQuery]:
    """The ``n`` singleton queries {i} — maximally invasive, for baselines."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [SubsetQuery.from_indices([i], n) for i in range(n)]
