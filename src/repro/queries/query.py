"""Subset queries over binary datasets.

A :class:`SubsetQuery` is the paper's ``q subseteq [n]``: a subset of record
positions whose true answer on ``x in {0,1}^n`` is ``sum_{i in q} x_i``.
Queries are stored as boolean numpy masks so attack code can evaluate whole
workloads with matrix arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse


class SubsetQuery:
    """An index-subset counting query on a length-``n`` binary dataset."""

    __slots__ = ("_mask",)

    def __init__(self, mask: Sequence[bool] | np.ndarray):
        array = np.asarray(mask, dtype=bool)
        if array.ndim != 1:
            raise ValueError("a query mask must be one-dimensional")
        if array.size == 0:
            raise ValueError("a query must be over at least one position")
        self._mask = array
        self._mask.setflags(write=False)

    @classmethod
    def from_indices(cls, indices: Iterable[int], n: int) -> "SubsetQuery":
        """Build a query over dataset size ``n`` from explicit indices."""
        mask = np.zeros(n, dtype=bool)
        index_array = np.array(list(indices))
        if index_array.size:
            if index_array.dtype.kind not in "iu":
                raise ValueError("indices must be integers")
            out_of_range = (index_array < 0) | (index_array >= n)
            if out_of_range.any():
                offender = int(index_array[out_of_range][0])
                raise ValueError(f"index {offender} outside [0, {n})")
            mask[index_array] = True
        return cls(mask)

    @property
    def mask(self) -> np.ndarray:
        """The boolean membership mask (read-only)."""
        return self._mask

    @property
    def n(self) -> int:
        """The dataset size this query addresses."""
        return int(self._mask.size)

    @property
    def size(self) -> int:
        """Number of positions in the subset, ``|q|``."""
        return int(self._mask.sum())

    def indices(self) -> np.ndarray:
        """The positions in the subset, ascending."""
        return np.flatnonzero(self._mask)

    def true_answer(self, data: np.ndarray) -> int:
        """Exact answer ``sum_{i in q} x_i`` on binary data ``x``."""
        data = _validate_binary(data, self.n)
        return int(data[self._mask].sum())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubsetQuery) and np.array_equal(self._mask, other._mask)

    def __hash__(self) -> int:
        return hash(self._mask.tobytes())

    def __repr__(self) -> str:
        return f"SubsetQuery(n={self.n}, size={self.size})"


def queries_to_matrix(
    queries: Sequence[SubsetQuery],
    dtype: np.dtype | type = np.float64,
    sparse: bool = False,
):
    """Stack queries into an ``(m, n)`` 0/1 matrix for linear-algebra attacks.

    Args:
        queries: the workload rows, all addressing the same ``n``.
        dtype: element type of the result.  ``bool`` returns the packed masks
            themselves (1 byte/cell instead of float64's 8 — a 16k x 2k
            workload drops from ~256 MB to ~32 MB).
        sparse: return a :class:`scipy.sparse.csr_matrix` instead of a dense
            array; the memory then scales with the number of *set* positions.
    """
    if not queries:
        raise ValueError("need at least one query")
    n = queries[0].n
    for query in queries:
        if query.n != n:
            raise ValueError("all queries must address the same dataset size")
    stacked = np.stack([query.mask for query in queries])
    if sparse:
        return scipy.sparse.csr_matrix(stacked, dtype=dtype)
    return np.asarray(stacked, dtype=dtype)


def _validate_binary(data: np.ndarray, n: int) -> np.ndarray:
    data = np.asarray(data)
    if data.shape != (n,):
        raise ValueError(f"data must have shape ({n},), got {data.shape}")
    if not np.isin(data, (0, 1)).all():
        raise ValueError("data must be binary (0/1 entries)")
    return data.astype(np.int64)
