"""Subset queries over binary datasets.

A :class:`SubsetQuery` is the paper's ``q subseteq [n]``: a subset of record
positions whose true answer on ``x in {0,1}^n`` is ``sum_{i in q} x_i``.
Queries are stored as boolean numpy masks so attack code can evaluate whole
workloads with matrix arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class SubsetQuery:
    """An index-subset counting query on a length-``n`` binary dataset."""

    __slots__ = ("_mask",)

    def __init__(self, mask: Sequence[bool] | np.ndarray):
        array = np.asarray(mask, dtype=bool)
        if array.ndim != 1:
            raise ValueError("a query mask must be one-dimensional")
        if array.size == 0:
            raise ValueError("a query must be over at least one position")
        self._mask = array
        self._mask.setflags(write=False)

    @classmethod
    def from_indices(cls, indices: Iterable[int], n: int) -> "SubsetQuery":
        """Build a query over dataset size ``n`` from explicit indices."""
        mask = np.zeros(n, dtype=bool)
        index_list = list(indices)
        for index in index_list:
            if not 0 <= index < n:
                raise ValueError(f"index {index} outside [0, {n})")
        mask[index_list] = True
        return cls(mask)

    @property
    def mask(self) -> np.ndarray:
        """The boolean membership mask (read-only)."""
        return self._mask

    @property
    def n(self) -> int:
        """The dataset size this query addresses."""
        return int(self._mask.size)

    @property
    def size(self) -> int:
        """Number of positions in the subset, ``|q|``."""
        return int(self._mask.sum())

    def indices(self) -> np.ndarray:
        """The positions in the subset, ascending."""
        return np.flatnonzero(self._mask)

    def true_answer(self, data: np.ndarray) -> int:
        """Exact answer ``sum_{i in q} x_i`` on binary data ``x``."""
        data = _validate_binary(data, self.n)
        return int(data[self._mask].sum())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubsetQuery) and np.array_equal(self._mask, other._mask)

    def __hash__(self) -> int:
        return hash(self._mask.tobytes())

    def __repr__(self) -> str:
        return f"SubsetQuery(n={self.n}, size={self.size})"


def queries_to_matrix(queries: Sequence[SubsetQuery]) -> np.ndarray:
    """Stack queries into an ``(m, n)`` 0/1 matrix for linear-algebra attacks."""
    if not queries:
        raise ValueError("need at least one query")
    n = queries[0].n
    for query in queries:
        if query.n != n:
            raise ValueError("all queries must address the same dataset size")
    return np.stack([query.mask for query in queries]).astype(np.float64)


def _validate_binary(data: np.ndarray, n: int) -> np.ndarray:
    data = np.asarray(data)
    if data.shape != (n,):
        raise ValueError(f"data must have shape ({n},), got {data.shape}")
    if not np.isin(data, (0, 1)).all():
        raise ValueError("data must be binary (0/1 entries)")
    return data.astype(np.int64)
