"""Statistical-query substrate: the access model of Dinur-Nissim [16].

The paper's Section 1 analyzes an analyst who reaches a binary dataset
``x in {0,1}^n`` only through subset-counting queries ``q subseteq [n]``
answered with bounded error ``|a_q - sum_{i in q} x_i| <= alpha``.  This
subpackage provides the queries (:mod:`repro.queries.query`), the answering
mechanisms with their noise models (:mod:`repro.queries.mechanism`), and
query-workload generators (:mod:`repro.queries.workload`).  The
reconstruction attacks in :mod:`repro.reconstruction` consume these.
"""

from repro.queries.mechanism import (
    BoundedNoiseAnswerer,
    BudgetedAnswerer,
    QueryBudgetExceeded,
    ExactAnswerer,
    GaussianAnswerer,
    LaplaceAnswerer,
    QueryAnswerer,
    RoundingAnswerer,
    SubsamplingAnswerer,
)
from repro.queries.query import SubsetQuery, queries_to_matrix
from repro.queries.workload import Workload, all_subset_queries, random_subset_queries

__all__ = [
    "BoundedNoiseAnswerer",
    "BudgetedAnswerer",
    "QueryBudgetExceeded",
    "ExactAnswerer",
    "GaussianAnswerer",
    "LaplaceAnswerer",
    "QueryAnswerer",
    "RoundingAnswerer",
    "SubsamplingAnswerer",
    "SubsetQuery",
    "Workload",
    "all_subset_queries",
    "queries_to_matrix",
    "random_subset_queries",
]
