"""repro — Privacy: From Database Reconstruction to Legal Theorems.

A comprehensive reproduction of Kobbi Nissim's PODS 2021 keynote paper:
every attack it surveys, the predicate-singling-out (PSO) framework it
contributes, and the legal-theorem layer it derives — all executable and
measured.

The package is organized by subsystem (see DESIGN.md for the inventory);
the most commonly used entry points are re-exported here:

* the PSO game and its cast —
  :class:`~repro.core.pso.PSOGame`,
  :class:`~repro.core.mechanisms.KAnonymityMechanism`,
  :class:`~repro.core.attackers.KAnonymityPSOAttacker`, ...
* the executable theorem checks —
  :func:`~repro.core.theorems.run_all_checks` and friends;
* the legal layer —
  :func:`~repro.legal.theorems.legal_theorem_2_1`,
  :func:`~repro.legal.theorems.differential_privacy_assessment`, and the
  derivation API :func:`~repro.legal.claims.derive` /
  :class:`~repro.legal.claims.LegalVerdict`;
* the release-approval layer —
  :class:`~repro.compliance.pipeline.CompliancePipeline`,
  :class:`~repro.compliance.certificate.ComplianceCertificate`, and the
  typed refusal :class:`~repro.compliance.gate.ComplianceDenied`;
* the service layer —
  :class:`~repro.service.server.QueryServer`,
  :class:`~repro.service.audit.ReconstructionAuditor`, and the typed
  refusals :class:`~repro.privacy.accounting.BudgetExhausted` /
  :class:`~repro.service.audit.CircuitBreakerTripped`;
* the observability layer —
  :class:`~repro.telemetry.MetricsRegistry`,
  :class:`~repro.telemetry.SpanRecorder`, and
  :func:`~repro.telemetry.snapshot` (enable with ``REPRO_TELEMETRY=1``);
* the experiment harness —
  :func:`~repro.experiments.run_experiment` (E1-E19).

Quick tour::

    from repro import PSOGame, KAnonymityMechanism, KAnonymityPSOAttacker
    from repro.anonymity import AgreementAnonymizer
    from repro.data.distributions import uniform_bits_distribution

    game = PSOGame(uniform_bits_distribution(128), n=250,
                   mechanism=KAnonymityMechanism(AgreementAnonymizer(4)),
                   adversary=KAnonymityPSOAttacker("refine"))
    print(game.run(trials=100, rng=0))
"""

from repro.core.attackers import (
    CompositionAttacker,
    CountExploitingAttacker,
    IdentityAttacker,
    KAnonymityPSOAttacker,
    TrivialAttacker,
    build_composition_suite,
)
from repro.core.mechanisms import (
    ComposedMechanism,
    ConstantMechanism,
    CountMechanism,
    DPCountMechanism,
    IdentityMechanism,
    KAnonymityMechanism,
    Mechanism,
    PostProcessedMechanism,
)
from repro.compliance import (
    ComplianceCertificate,
    ComplianceDenied,
    CompliancePipeline,
)
from repro.core.predicate import Predicate, attribute_predicate
from repro.core.pso import PSOContext, PSOGame, PSOGameResult
from repro.core.theorems import TheoremCheck, run_all_checks
from repro.legal.claims import LegalVerdict, TechnicalPremise, derive
from repro.legal.theorems import (
    differential_privacy_assessment,
    legal_corollary_2_1,
    legal_theorem_2_1,
    working_party_comparison,
)
from repro.privacy import MechanismSpec, PrivacySpend
from repro.service import (
    BudgetExhausted,
    CircuitBreakerTripped,
    QueryServer,
    ReconstructionAuditor,
)
from repro.telemetry import MetricsRegistry, SpanRecorder, snapshot

__version__ = "1.0.0"

__all__ = [
    "BudgetExhausted",
    "CircuitBreakerTripped",
    "ComplianceCertificate",
    "ComplianceDenied",
    "CompliancePipeline",
    "ComposedMechanism",
    "CompositionAttacker",
    "ConstantMechanism",
    "CountExploitingAttacker",
    "CountMechanism",
    "DPCountMechanism",
    "IdentityAttacker",
    "IdentityMechanism",
    "KAnonymityMechanism",
    "KAnonymityPSOAttacker",
    "LegalVerdict",
    "Mechanism",
    "MechanismSpec",
    "MetricsRegistry",
    "PSOContext",
    "PSOGame",
    "PSOGameResult",
    "PostProcessedMechanism",
    "Predicate",
    "PrivacySpend",
    "QueryServer",
    "ReconstructionAuditor",
    "SpanRecorder",
    "TechnicalPremise",
    "TheoremCheck",
    "TrivialAttacker",
    "__version__",
    "attribute_predicate",
    "build_composition_suite",
    "derive",
    "differential_privacy_assessment",
    "legal_corollary_2_1",
    "legal_theorem_2_1",
    "run_all_checks",
    "snapshot",
    "working_party_comparison",
]
