"""Sharded, admission-controlled front end over :class:`QueryServer`.

BENCH_service.json's original story was throughput *falling* with
concurrency: one analyst registry lock, one accountant ledger lock, and
per-analyst dict caches meant 16 sessions convoyed on shared mutexes.  The
:class:`ShardedQueryServer` removes every global lock from the request hot
path:

- **Analyst sharding.**  Analysts hash-partition across ``S`` independent
  :class:`QueryServer` shards (:func:`~repro.privacy.accounting.
  stable_shard` — same digest the sharded accountant routes by, so an
  analyst's ledger, cache stripe, and serving state all live on one shard).
  A request touches only its own shard.

- **Per-shard striped LRU cache.**  Each shard owns one
  :class:`~repro.service.cache.StripedAnswerCache` shared by its analysts
  through :class:`~repro.service.cache.AnalystCacheView` windows — keys are
  analyst-scoped so answers can never leak across sessions, the LRU bound
  is global per shard (10^5 sessions no longer mean 10^5 unbounded dicts),
  and an analyst's whole batch lands in one stripe: one lock acquisition.

- **Leased global budget.**  The default accountant is a
  :class:`~repro.privacy.accounting.ShardedAccountant`: per-shard
  sub-ledgers with the global epsilon cap enforced through pre-authorized
  leases, reconciled *exactly* (same float summation order) at exhaustion
  and on reads — budget verdicts are bit-identical to the single-ledger
  server, which the golden tests pin.

- **Admission control.**  Per-analyst token buckets (:class:`RateLimit`)
  and a per-shard in-flight gate reject overload with a typed
  :class:`Rejected` carrying ``retry_after`` — callers back off instead of
  convoying on a lock, so saturation degrades gracefully.

Determinism is unchanged: answers derive from
``derive_rng(seed, "service", analyst)`` exactly as on the single server,
so for a fixed seed every analyst's answer stream is bit-identical under
any shard count — including ``shards=1`` (the single server itself).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.compliance.gate import ComplianceGate
from repro.privacy.accounting import ShardedAccountant, stable_shard
from repro.privacy.kernels import MechanismSpec
from repro.queries.mechanism import QueryAnswerer
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service.audit import AuditLog, ReconstructionAuditor
from repro.service.audit_worker import resolve_audit_dispatch
from repro.service.cache import AnalystCacheView, StripedAnswerCache
from repro.service.pipeline import AdmissionControl, resolve_execution_backend
from repro.service.server import AnalystSession, QueryServer, SyntheticFallback
from repro.synth.binary import BinaryRelease
from repro.telemetry import resolve_telemetry
from repro.telemetry.instrument import (
    CACHE_ENTRIES,
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
)

__all__ = [
    "RateLimit",
    "Rejected",
    "ShardedAnalystSession",
    "ShardedQueryServer",
]


class Rejected(RuntimeError):
    """A request refused by admission control (not by privacy budgets).

    ``reason`` is ``"rate_limit"`` (the analyst's token bucket is empty) or
    ``"overload"`` (the shard's in-flight gate is full); ``retry_after`` is
    the suggested back-off in seconds (0.0 when immediate retry may work).
    Unlike :class:`~repro.privacy.accounting.BudgetExhausted`, a rejected
    request has *no* privacy cost and no audit-log footprint — it never
    reached the mechanism.
    """

    def __init__(self, message: str, *, analyst: str, reason: str, retry_after: float):
        super().__init__(message)
        self.analyst = analyst
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class RateLimit:
    """Per-analyst token-bucket policy: ``rate`` requests/s, ``burst`` deep."""

    rate: float
    burst: int

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be at least 1, got {self.burst}")


class _TokenBucket:
    """One analyst's token bucket; refills continuously on the given clock."""

    __slots__ = ("_lock", "_policy", "_clock", "_tokens", "_stamp", "rejections")

    def __init__(self, policy: RateLimit, clock: Callable[[], float]):
        self._lock = threading.Lock()
        self._policy = policy
        self._clock = clock
        self._tokens = float(policy.burst)
        self._stamp = clock()
        self.rejections = 0

    def admit(self, analyst: str) -> None:
        """Consume one token or raise :class:`Rejected` with a back-off."""
        with self._lock:
            now = self._clock()
            # Clamp: a clock that steps backwards (a wall clock under NTP,
            # or any non-monotonic injected source) must never *drain*
            # tokens or push retry_after past one full refill interval.
            elapsed = max(0.0, now - self._stamp)
            self._tokens = min(
                float(self._policy.burst),
                self._tokens + elapsed * self._policy.rate,
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            self.rejections += 1
            retry_after = (1.0 - self._tokens) / self._policy.rate
        raise Rejected(
            f"analyst {analyst!r} over rate limit "
            f"({self._policy.rate:g}/s, burst {self._policy.burst}); "
            f"retry in {retry_after:.3f}s",
            analyst=analyst,
            reason="rate_limit",
            retry_after=retry_after,
        )


class _AdmissionGate:
    """Per-shard bound on concurrently served requests."""

    __slots__ = ("_lock", "max_inflight", "inflight", "rejections")

    def __init__(self, max_inflight: int):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be at least 1, got {max_inflight}")
        self._lock = threading.Lock()
        self.max_inflight = max_inflight
        self.inflight = 0
        self.rejections = 0

    def acquire(self, analyst: str) -> None:
        """Take an in-flight slot or raise :class:`Rejected` (overload)."""
        with self._lock:
            if self.inflight < self.max_inflight:
                self.inflight += 1
                return
            self.rejections += 1
            full = self.inflight
        raise Rejected(
            f"shard at capacity ({full}/{self.max_inflight} in flight); "
            f"analyst {analyst!r} should retry",
            analyst=analyst,
            reason="overload",
            retry_after=0.0,
        )

    def release(self) -> None:
        """Return a slot taken by a successful :meth:`acquire`."""
        with self._lock:
            self.inflight -= 1

    @contextmanager
    def slot(self, analyst: str) -> Iterator[None]:
        self.acquire(analyst)
        try:
            yield
        finally:
            self.release()


class ShardedAnalystSession(AnalystSession):
    """An :class:`AnalystSession` routed through admission control.

    Resolves its shard, serving state, token bucket, and gate once at
    construction; per-request work is bucket -> gate -> the shard-local
    serve path, with no global lock anywhere.
    """

    def __init__(self, front: "ShardedQueryServer", analyst: str):
        shard = front.shard_of(analyst)
        super().__init__(front._shard_servers[shard], analyst)
        self.shard = shard
        self._bucket = front._bucket(analyst)
        self._gate = front._gates[shard]
        # The session's pipeline is the shard's pipeline (same stages, same
        # caches, same audit log) with this session's bucket/gate composed
        # in front as the Admission stage.
        if self._bucket is None and self._gate is None:
            self._pipeline = self._server.pipeline
        else:
            self._pipeline = self._server.pipeline.with_admission(
                AdmissionControl(self._bucket, self._gate)
            )

    def ask(self, query: SubsetQuery) -> float:
        """Answer one query; may raise :class:`Rejected` before any charge."""
        return self._pipeline.serve_single(self._state, self.analyst, query)

    def ask_workload(self, workload: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        """Answer a workload (one admission token for the whole batch)."""
        return self._pipeline.serve_workload(self._state, self.analyst, workload)


class ShardedQueryServer:
    """``S`` :class:`QueryServer` shards behind one deterministic router.

    Construction args mirror :class:`QueryServer`; the extras:

    Args:
        shards: number of independent shards analysts hash across.
        cache_stripes: lock stripes per shard cache.
        cache_entries: LRU bound *per shard* (shared by that shard's
            analysts), ``None`` = unbounded.
        rate_limit: optional per-analyst :class:`RateLimit`.
        max_inflight_per_shard: optional per-shard concurrency bound;
            ``None`` disables the overload gate.
        clock: monotonic time source for token buckets (injectable so
            tests can drive refills deterministically).
        accountant: defaults to a :class:`ShardedAccountant` with matching
            shard count and no budgets; pass a configured one to enforce
            per-analyst/global caps.  A plain :class:`ServiceAccountant`
            also works (it is simply shared across shards).
        telemetry: observability — a :class:`~repro.telemetry.Telemetry`
            instance, ``True``/``False``, or ``None`` (default: consult
            ``REPRO_TELEMETRY``).  When enabled, every shard server
            instruments its pipeline with this facade and per-stripe
            cache counters are exported at snapshot time.

    The auditor, accountant, synthetic-fallback release, compliance gate,
    and dataset are shared across shards; caches and serving states are
    shard-local.  One :class:`~repro.compliance.gate.ComplianceGate`
    approval therefore admits a spec on every shard, and a denial refuses
    it everywhere (logged in the refusing shard's audit log).
    """

    def __init__(
        self,
        data: np.ndarray,
        mechanism: str | Callable[..., QueryAnswerer] = "laplace",
        mechanism_params: dict | None = None,
        accountant=None,
        auditor: ReconstructionAuditor | None = None,
        cache_entries: int | None = None,
        seed: int = 0,
        synthetic_fallback: SyntheticFallback | bool | None = None,
        compliance: ComplianceGate | None = None,
        *,
        shards: int = 16,
        cache_stripes: int = 8,
        rate_limit: RateLimit | None = None,
        max_inflight_per_shard: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        execution=None,
        audit_dispatch=None,
        telemetry=None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if accountant is None:
            accountant = ShardedAccountant(shards=shards)
        self.shards = int(shards)
        self.accountant = accountant
        self.auditor = auditor
        self.compliance = compliance
        self.rate_limit = rate_limit
        self._clock = clock
        self.telemetry = resolve_telemetry(telemetry)
        # One execution backend and one audit dispatch for the whole front
        # end: shards bind the same backend (sharing its pools/workers) and
        # publish audit signals through the same worker pool.
        self.execution = resolve_execution_backend(execution)
        self.audit_dispatch = resolve_audit_dispatch(audit_dispatch, auditor)
        self._shard_caches = tuple(
            StripedAnswerCache(max_entries=cache_entries, stripes=cache_stripes)
            for _ in range(self.shards)
        )
        self._shard_servers = tuple(
            QueryServer(
                data,
                mechanism,
                mechanism_params,
                accountant=accountant,
                auditor=auditor,
                cache_entries=cache_entries,
                seed=seed,
                synthetic_fallback=synthetic_fallback,
                compliance=compliance,
                execution=self.execution,
                audit_dispatch=self.audit_dispatch,
                telemetry=self.telemetry,
                shard_index=index,
            )
            for index in range(self.shards)
        )
        # Shards share one fallback holder (one release, paid once) and
        # scope their analysts' caches into the shard's striped cache.
        holder = self._shard_servers[0]._fallback_holder
        for index, server in enumerate(self._shard_servers):
            server._fallback_holder = holder
            cache = self._shard_caches[index]
            server._cache_factory = (
                lambda analyst, _cache=cache: AnalystCacheView(_cache, analyst)
            )
        if self.telemetry.enabled:
            self._register_cache_metrics()
        # No bound configured -> no gate object at all: the unbounded hot
        # path must not pay two lock acquisitions per request for a gate
        # that can never refuse.
        self._gates: tuple[_AdmissionGate | None, ...] = tuple(
            _AdmissionGate(max_inflight_per_shard)
            if max_inflight_per_shard is not None
            else None
            for _ in range(self.shards)
        )
        self._buckets: dict[str, _TokenBucket] = {}
        self._buckets_lock = threading.Lock()

    def _register_cache_metrics(self) -> None:
        """Expose every stripe's counters as snapshot-time callbacks.

        Stripes already count hits/misses/evictions as plain ints under
        their own locks; sampling those at snapshot time costs the hot
        path nothing.  Labels are ``(shard, stripe)`` so hot-stripe skew
        shows up on a dashboard without any per-request work.
        """
        registry = self.telemetry.registry
        for shard, cache in enumerate(self._shard_caches):
            for index, stripe in enumerate(cache._stripes):
                labels = {"shard": str(shard), "stripe": str(index)}
                registry.counter_fn(
                    CACHE_HITS, lambda s=stripe: float(s.hits), **labels
                )
                registry.counter_fn(
                    CACHE_MISSES, lambda s=stripe: float(s.misses), **labels
                )
                registry.counter_fn(
                    CACHE_EVICTIONS, lambda s=stripe: float(s.evictions), **labels
                )
                registry.gauge_fn(
                    CACHE_ENTRIES, lambda s=stripe: float(len(s)), **labels
                )

    # -- routing ------------------------------------------------------------

    def shard_of(self, analyst: str) -> int:
        """The shard serving the named analyst (same digest the
        :class:`ShardedAccountant` routes ledgers by)."""
        return stable_shard(analyst, self.shards)

    def shard_server(self, index: int) -> QueryServer:
        """One shard's inner server (diagnostics and tests)."""
        return self._shard_servers[index]

    def shard_cache(self, index: int) -> StripedAnswerCache:
        """One shard's striped cache (aggregate hit statistics)."""
        return self._shard_caches[index]

    def _bucket(self, analyst: str) -> _TokenBucket | None:
        if self.rate_limit is None:
            return None
        bucket = self._buckets.get(analyst)
        if bucket is None:
            with self._buckets_lock:
                bucket = self._buckets.get(analyst)
                if bucket is None:
                    bucket = _TokenBucket(self.rate_limit, self._clock)
                    self._buckets[analyst] = bucket
        return bucket

    # -- serving ------------------------------------------------------------

    def session(self, analyst: str) -> ShardedAnalystSession:
        """Open (or re-enter) the named analyst's admission-controlled
        session on its home shard."""
        return ShardedAnalystSession(self, analyst)

    def ask(self, analyst: str, query: SubsetQuery) -> float:
        """Sessionless single ask (admission control still applies)."""
        return self.session(analyst).ask(query)

    def ask_workload(
        self, analyst: str, workload: Workload | Sequence[SubsetQuery]
    ) -> np.ndarray:
        """Sessionless workload ask (admission control still applies)."""
        return self.session(analyst).ask_workload(workload)

    def mechanism_spec(self, analyst: str) -> MechanismSpec | None:
        """The named analyst's served :class:`MechanismSpec`."""
        return self._shard_servers[self.shard_of(analyst)].mechanism_spec(analyst)

    # -- aggregate views ----------------------------------------------------

    @property
    def n(self) -> int:
        """Size of the private dataset."""
        return self._shard_servers[0].n

    @property
    def analysts(self) -> tuple[str, ...]:
        """All analysts with open sessions, grouped by shard."""
        return tuple(
            analyst for server in self._shard_servers for analyst in server.analysts
        )

    @property
    def audit_logs(self) -> tuple[AuditLog, ...]:
        """Per-shard audit logs (an analyst's records all live on one)."""
        return tuple(server.audit_log for server in self._shard_servers)

    def audit_log_for(self, analyst: str) -> AuditLog:
        """The audit log holding the named analyst's records."""
        return self._shard_servers[self.shard_of(analyst)].audit_log

    @property
    def served(self) -> int:
        """Total requests recorded across every shard's audit log."""
        return sum(len(server.audit_log) for server in self._shard_servers)

    @property
    def rejections(self) -> dict[str, int]:
        """Admission-control refusals by reason."""
        rate_limited = sum(bucket.rejections for bucket in self._buckets.values())
        overloaded = sum(gate.rejections for gate in self._gates if gate is not None)
        return {"rate_limit": rate_limited, "overload": overloaded}

    def stats(self) -> dict:
        """Cache statistics merged across every shard's striped cache.

        Top-level ``hits``/``misses``/``evictions``/``entries``/``hit_rate``
        sum over all shards; ``per_shard`` holds each shard's own
        :meth:`~repro.service.cache.StripedAnswerCache.stats` dict (which
        in turn carries ``per_stripe``) for drill-down.
        """
        per_shard = tuple(cache.stats() for cache in self._shard_caches)
        hits = sum(s["hits"] for s in per_shard)
        misses = sum(s["misses"] for s in per_shard)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": sum(s["evictions"] for s in per_shard),
            "entries": sum(s["entries"] for s in per_shard),
            "hit_rate": hits / total if total else 0.0,
            "per_shard": per_shard,
        }

    @property
    def fallback_release(self) -> BinaryRelease | None:
        """The shared synthetic release, if synthesized yet."""
        return self._shard_servers[0].fallback_release

    def close(self) -> None:
        """Drain background audit workers and release serving resources.

        The dispatch and backend are shared across shards, so they are
        closed once here, not per shard.
        """
        self.audit_dispatch.flush()
        self.audit_dispatch.close()
        self.execution.close()

    def __enter__(self) -> "ShardedQueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedQueryServer(n={self.n}, shards={self.shards}, "
            f"analysts={len(self.analysts)}, served={self.served})"
        )
