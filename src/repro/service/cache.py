"""Canonical query fingerprints and the service answer cache.

The paper's consistency requirement — ask the same question twice, get the
same answer — is what kills averaging attacks against noisy mechanisms,
and it comes for free operationally: a repeated query is served from cache
with *zero* additional privacy charge, because replaying an already
released answer is post-processing.

A query's fingerprint is a 16-byte BLAKE2b digest of its dataset size and
bit-packed membership mask, so two :class:`~repro.queries.query.SubsetQuery`
objects over the same subset always collide (and queries over different
``n`` never do, even when their packed masks share bytes).  Whole workloads
fingerprint in one vectorized ``packbits`` pass.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload


def query_fingerprint(query: SubsetQuery | np.ndarray) -> bytes:
    """The 16-byte canonical fingerprint of one subset query."""
    mask = query.mask if isinstance(query, SubsetQuery) else mask_arg(query)
    return fingerprint_and_packed(mask)[0]


def fingerprint_and_packed(mask: np.ndarray) -> tuple[bytes, bytes]:
    """``(fingerprint, packed mask bytes)`` in one bit-packing pass.

    The serving hot path needs both — the fingerprint for the cache key and
    the packed mask for the audit record — so packing twice per request
    would double the dominant per-ask numpy cost.
    """
    packed = np.packbits(mask).tobytes()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(int(mask.size).to_bytes(8, "little"))
    digest.update(packed)
    return digest.digest(), packed


def mask_arg(mask: np.ndarray) -> np.ndarray:
    """Normalize a raw mask argument to a 1-D boolean array."""
    array = np.asarray(mask, dtype=bool)
    if array.ndim != 1:
        raise ValueError("a query mask must be one-dimensional")
    return array


def workload_fingerprints(workload: Workload) -> list[bytes]:
    """Per-row fingerprints of a packed workload, in row order.

    Equivalent to ``[query_fingerprint(q) for q in workload]`` but the bit
    packing runs once over the whole ``(m, n)`` matrix.
    """
    return workload_fingerprints_packed(workload)[0]


def workload_fingerprints_packed(
    workload: Workload,
) -> tuple[list[bytes], list[bytes], np.ndarray]:
    """``(fingerprints, packed mask bytes, query sizes)`` per row.

    The batched serving path logs every row it fingerprints, so it takes
    the packed bytes and sizes from the same vectorized pass instead of
    re-packing each mask at append time.
    """
    packed = np.packbits(workload.masks, axis=1)
    sizes = workload.masks.sum(axis=1)
    prefix = int(workload.n).to_bytes(8, "little")
    fingerprints = []
    packed_rows = []
    for row in packed:
        row_bytes = row.tobytes()
        digest = hashlib.blake2b(digest_size=16)
        digest.update(prefix)
        digest.update(row_bytes)
        fingerprints.append(digest.digest())
        packed_rows.append(row_bytes)
    return fingerprints, packed_rows, sizes


class AnswerCache:
    """Fingerprint -> released answer, with LRU eviction and hit statistics.

    Thread-safe; the server consults it before the accountant so cache hits
    are free (no budget charge) and bit-identical to the first release.
    ``max_entries=None`` means unbounded (the default — consistency is a
    privacy property, so evicting is a deliberate trade-off: an evicted
    query re-answered draws fresh noise and *is* charged again).
    """

    def __init__(self, max_entries: int | None = None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when set")
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, float] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Point-in-time ``{hits, misses, evictions, entries, hit_rate}``."""
        with self._lock:
            hits = self.hits
            misses = self.misses
            evictions = self.evictions
            entries = len(self._entries)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "entries": entries,
            "hit_rate": hits / total if total else 0.0,
        }

    def get(self, fingerprint: bytes) -> float | None:
        """The cached answer, or ``None``; counts a hit or miss."""
        with self._lock:
            answer = self._entries.get(fingerprint)
            if answer is None:
                self.misses += 1
                return None
            self.hits += 1
            if self.max_entries is not None:
                self._entries.move_to_end(fingerprint)
            return answer

    def put(self, fingerprint: bytes, answer: float) -> None:
        """Record a released answer, evicting the LRU entry when full."""
        with self._lock:
            self._entries[fingerprint] = float(answer)
            if self.max_entries is not None:
                self._entries.move_to_end(fingerprint)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def lookup_many(self, fingerprints: list[bytes]) -> list[float | None]:
        """Batch :meth:`get`, one lock acquisition for the whole workload."""
        with self._lock:
            results: list[float | None] = []
            for fingerprint in fingerprints:
                answer = self._entries.get(fingerprint)
                if answer is None:
                    self.misses += 1
                else:
                    self.hits += 1
                    if self.max_entries is not None:
                        self._entries.move_to_end(fingerprint)
                results.append(answer)
            return results

    def put_many(self, entries: list[tuple[bytes, float]]) -> None:
        """Batch :meth:`put`, one lock acquisition for the whole batch."""
        if not entries:
            return
        with self._lock:
            for fingerprint, answer in entries:
                self._entries[fingerprint] = float(answer)
                if self.max_entries is not None:
                    self._entries.move_to_end(fingerprint)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1


class StripedAnswerCache:
    """An :class:`AnswerCache` split across independently locked stripes.

    One shared dict behind one mutex serializes every concurrent session;
    striping by fingerprint prefix makes lock contention ``1/stripes`` on
    average while keeping each stripe an ordinary LRU :class:`AnswerCache`.
    Fingerprints are BLAKE2b digests, so their first 8 bytes are already
    uniformly distributed — no extra hashing needed to pick a stripe.

    ``max_entries`` bounds the cache *globally*; each stripe gets an equal
    share (rounded up), so the worst-case total is ``max_entries + stripes``.
    """

    def __init__(self, max_entries: int | None = None, stripes: int = 8):
        if stripes < 1:
            raise ValueError(f"stripes must be positive, got {stripes}")
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when set")
        self.stripes = int(stripes)
        self.max_entries = max_entries
        per_stripe = None if max_entries is None else -(-max_entries // self.stripes)
        self._stripes = tuple(AnswerCache(per_stripe) for _ in range(self.stripes))

    def stripe_index(self, fingerprint: bytes) -> int:
        """Which stripe holds ``fingerprint`` (stable for a fixed stripe count)."""
        return int.from_bytes(fingerprint[:8], "little") % self.stripes

    def _stripe(self, fingerprint: bytes) -> AnswerCache:
        return self._stripes[self.stripe_index(fingerprint)]

    def __len__(self) -> int:
        return sum(len(stripe) for stripe in self._stripes)

    @property
    def hits(self) -> int:
        return sum(stripe.hits for stripe in self._stripes)

    @property
    def misses(self) -> int:
        return sum(stripe.misses for stripe in self._stripes)

    @property
    def evictions(self) -> int:
        return sum(stripe.evictions for stripe in self._stripes)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache, across all stripes."""
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def stats(self) -> dict:
        """Merged ``{hits, misses, evictions, entries, hit_rate, per_stripe}``.

        ``per_stripe`` is a tuple of each stripe's own :meth:`AnswerCache.stats`
        dict, in stripe order, so hot-stripe skew is visible.
        """
        per_stripe = tuple(stripe.stats() for stripe in self._stripes)
        hits = sum(s["hits"] for s in per_stripe)
        misses = sum(s["misses"] for s in per_stripe)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": sum(s["evictions"] for s in per_stripe),
            "entries": sum(s["entries"] for s in per_stripe),
            "hit_rate": hits / total if total else 0.0,
            "per_stripe": per_stripe,
        }

    def get(self, fingerprint: bytes) -> float | None:
        return self._stripe(fingerprint).get(fingerprint)

    def put(self, fingerprint: bytes, answer: float) -> None:
        self._stripe(fingerprint).put(fingerprint, answer)

    def lookup_many(self, fingerprints: list[bytes]) -> list[float | None]:
        """Batch get: group by stripe, one lock acquisition per stripe hit."""
        groups: dict[int, list[int]] = {}
        for position, fingerprint in enumerate(fingerprints):
            index = int.from_bytes(fingerprint[:8], "little") % self.stripes
            groups.setdefault(index, []).append(position)
        results: list[float | None] = [None] * len(fingerprints)
        for index, positions in groups.items():
            answers = self._stripes[index].lookup_many(
                [fingerprints[position] for position in positions]
            )
            for position, answer in zip(positions, answers):
                results[position] = answer
        return results

    def put_many(self, entries: list[tuple[bytes, float]]) -> None:
        """Batch put: group by stripe, one lock acquisition per stripe hit."""
        groups: dict[int, list[tuple[bytes, float]]] = {}
        for fingerprint, answer in entries:
            index = int.from_bytes(fingerprint[:8], "little") % self.stripes
            groups.setdefault(index, []).append((fingerprint, answer))
        for index, batch in groups.items():
            self._stripes[index].put_many(batch)


class AnalystCacheView:
    """A per-analyst window onto a shared (striped) cache.

    The server historically gave every analyst a private :class:`AnswerCache`;
    at 10^5+ sessions that is 10^5 dicts and no shared LRU bound.  A view
    scopes keys into one shared cache by prefixing each query fingerprint
    with an 8-byte analyst digest — different analysts can never collide
    (answers are per-analyst noise draws), and because the scoped key
    *starts* with the analyst digest, one analyst's whole workload lands in
    a single stripe: a batched lookup or insert is exactly one lock
    acquisition.  Hit statistics are tracked per view, so per-analyst
    ``hit_rate`` telemetry survives the sharing.
    """

    __slots__ = ("_cache", "_prefix", "hits", "misses")

    def __init__(self, cache: AnswerCache | StripedAnswerCache, analyst: str):
        self._cache = cache
        self._prefix = hashlib.blake2b(analyst.encode("utf-8"), digest_size=8).digest()
        self.hits = 0
        self.misses = 0

    def _key(self, fingerprint: bytes) -> bytes:
        return self._prefix + fingerprint

    @property
    def hit_rate(self) -> float:
        """Fraction of this analyst's lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, fingerprint: bytes) -> float | None:
        answer = self._cache.get(self._key(fingerprint))
        if answer is None:
            self.misses += 1
        else:
            self.hits += 1
        return answer

    def put(self, fingerprint: bytes, answer: float) -> None:
        self._cache.put(self._key(fingerprint), answer)

    def lookup_many(self, fingerprints: list[bytes]) -> list[float | None]:
        answers = self._cache.lookup_many([self._key(f) for f in fingerprints])
        found = sum(answer is not None for answer in answers)
        self.hits += found
        self.misses += len(answers) - found
        return answers

    def put_many(self, entries: list[tuple[bytes, float]]) -> None:
        self._cache.put_many([(self._key(f), answer) for f, answer in entries])
