"""Canonical query fingerprints and the service answer cache.

The paper's consistency requirement — ask the same question twice, get the
same answer — is what kills averaging attacks against noisy mechanisms,
and it comes for free operationally: a repeated query is served from cache
with *zero* additional privacy charge, because replaying an already
released answer is post-processing.

A query's fingerprint is a 16-byte BLAKE2b digest of its dataset size and
bit-packed membership mask, so two :class:`~repro.queries.query.SubsetQuery`
objects over the same subset always collide (and queries over different
``n`` never do, even when their packed masks share bytes).  Whole workloads
fingerprint in one vectorized ``packbits`` pass.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload


def query_fingerprint(query: SubsetQuery | np.ndarray) -> bytes:
    """The 16-byte canonical fingerprint of one subset query."""
    mask = query.mask if isinstance(query, SubsetQuery) else mask_arg(query)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(int(mask.size).to_bytes(8, "little"))
    digest.update(np.packbits(mask).tobytes())
    return digest.digest()


def mask_arg(mask: np.ndarray) -> np.ndarray:
    """Normalize a raw mask argument to a 1-D boolean array."""
    array = np.asarray(mask, dtype=bool)
    if array.ndim != 1:
        raise ValueError("a query mask must be one-dimensional")
    return array


def workload_fingerprints(workload: Workload) -> list[bytes]:
    """Per-row fingerprints of a packed workload, in row order.

    Equivalent to ``[query_fingerprint(q) for q in workload]`` but the bit
    packing runs once over the whole ``(m, n)`` matrix.
    """
    packed = np.packbits(workload.masks, axis=1)
    prefix = int(workload.n).to_bytes(8, "little")
    fingerprints = []
    for row in packed:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(prefix)
        digest.update(row.tobytes())
        fingerprints.append(digest.digest())
    return fingerprints


class AnswerCache:
    """Fingerprint -> released answer, with LRU eviction and hit statistics.

    Thread-safe; the server consults it before the accountant so cache hits
    are free (no budget charge) and bit-identical to the first release.
    ``max_entries=None`` means unbounded (the default — consistency is a
    privacy property, so evicting is a deliberate trade-off: an evicted
    query re-answered draws fresh noise and *is* charged again).
    """

    def __init__(self, max_entries: int | None = None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when set")
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, float] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, fingerprint: bytes) -> float | None:
        """The cached answer, or ``None``; counts a hit or miss."""
        with self._lock:
            answer = self._entries.get(fingerprint)
            if answer is None:
                self.misses += 1
                return None
            self.hits += 1
            if self.max_entries is not None:
                self._entries.move_to_end(fingerprint)
            return answer

    def put(self, fingerprint: bytes, answer: float) -> None:
        """Record a released answer, evicting the LRU entry when full."""
        with self._lock:
            self._entries[fingerprint] = float(answer)
            if self.max_entries is not None:
                self._entries.move_to_end(fingerprint)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def lookup_many(self, fingerprints: list[bytes]) -> list[float | None]:
        """Batch :meth:`get`, one lock acquisition for the whole workload."""
        with self._lock:
            results: list[float | None] = []
            for fingerprint in fingerprints:
                answer = self._entries.get(fingerprint)
                if answer is None:
                    self.misses += 1
                else:
                    self.hits += 1
                    if self.max_entries is not None:
                        self._entries.move_to_end(fingerprint)
                results.append(answer)
            return results
