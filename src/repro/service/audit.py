"""Audit log and the online reconstruction-risk auditor.

"Linear Program Reconstruction in Practice" (Cohen-Nissim, [13] in the
paper) ran the Dinur-Nissim LP attack against a *production* query server;
the lesson for operators is that the query log itself is the attack
transcript.  This module turns that observation into a defense: the server
appends every interaction to a structured :class:`AuditLog`, and a
:class:`ReconstructionAuditor` periodically replays each analyst's logged
(query, answer) transcript through the repository's own LP decoder
(:func:`repro.reconstruction.lp_decode.reconstruct_from_answers`) and
measures the agreement of the resulting candidate with the true private
data.  The agreement *is* the analyst's current reconstruction capability
— the auditor runs exactly the computation the attacker would — so when it
crosses the configured threshold the auditor trips a per-analyst circuit
breaker and the server refuses further queries from that session.

Cached answers are replayed too (they were released), but duplicate
fingerprints are collapsed: a repeated query adds no LP constraint, which
is precisely why the answer cache is privacy-neutral.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:
    from repro.privacy.kernels import MechanismSpec

from repro.queries.query import _validate_binary
from repro.queries.workload import Workload
from repro.reconstruction.l2_decode import l2_decode
from repro.reconstruction.lp_decode import DEFAULT_LP_SOLVER, reconstruct_from_answers

#: Recognized auditor screening modes.
SCREEN_MODES = ("lp", "l2")

#: Default safety margin (in agreement) below the trip threshold under
#: which the cheap l2 screen is trusted without confirming via the LP.
DEFAULT_SCREEN_MARGIN = 0.15


class CircuitBreakerTripped(RuntimeError):
    """The auditor has flagged this analyst; the server refuses to answer.

    Attributes:
        analyst: the flagged session.
        report: the :class:`AuditReport` that tripped the breaker.
    """

    def __init__(self, message: str, *, analyst: str, report: "AuditReport"):
        super().__init__(message)
        self.analyst = analyst
        self.report = report


@dataclass(frozen=True)
class AuditRecord:
    """One served query, as the append-only log stores it.

    The packed mask is retained so the auditor can rebuild the exact
    workload the analyst holds; ``cached`` marks answers replayed from the
    cache (free, and redundant for reconstruction).
    """

    seq: int
    analyst: str
    fingerprint: bytes
    n: int
    query_size: int
    packed_mask: bytes
    answer: float
    cached: bool
    epsilon: float
    timestamp: float
    #: Where the answer came from: ``"mechanism"`` for the interactive
    #: noise mechanism, ``"synthetic"`` for the pre-paid fallback release.
    source: str = "mechanism"

    def to_dict(self) -> dict:
        """A JSON-serializable view (fingerprint and mask hex-encoded)."""
        return {
            "seq": self.seq,
            "analyst": self.analyst,
            "fingerprint": self.fingerprint.hex(),
            "n": self.n,
            "query_size": self.query_size,
            "packed_mask": self.packed_mask.hex(),
            "answer": self.answer,
            "cached": self.cached,
            "epsilon": self.epsilon,
            "timestamp": self.timestamp,
            "source": self.source,
        }

    def mask(self) -> np.ndarray:
        """The query's boolean membership mask, unpacked."""
        return np.unpackbits(
            np.frombuffer(self.packed_mask, dtype=np.uint8), count=self.n
        ).astype(bool)


@dataclass(frozen=True)
class ReleaseRecord:
    """One synthetic release noted in the audit log.

    The release's :class:`~repro.privacy.kernels.MechanismSpec` is logged
    whole so an auditor can replay the fallback's provenance: which
    kernel, what spend, charged to which analyst's budget.
    """

    seq: int
    analyst: str
    spec: "MechanismSpec"
    timestamp: float


@dataclass(frozen=True)
class CertificateRecord:
    """One compliance approval consulted by the gated server.

    Logged whenever a gated registration or fallback activation is served
    under a valid :class:`~repro.compliance.certificate.
    ComplianceCertificate`; the certificate's content address and the
    release fingerprint it binds make the approval independently
    re-checkable from the log alone.
    """

    seq: int
    analyst: str
    subject: str
    fingerprint: str
    release_fingerprint: str
    timestamp: float


@dataclass(frozen=True)
class DenialRecord:
    """One compliance refusal: the release the server would not serve.

    Denials live in their own channel — they are *not* answer records
    (nothing was released), so ``len(log)`` and the reconstruction
    auditor's transcripts are untouched, but the refusal itself is
    durable evidence.
    """

    seq: int
    analyst: str
    subject: str
    reason: str
    message: str
    timestamp: float


class AuditLog:
    """Append-only, thread-safe structured log of every served query."""

    def __init__(self):
        self._records: list[AuditRecord] = []
        self._releases: list[ReleaseRecord] = []
        self._certificates: list[CertificateRecord] = []
        self._denials: list[DenialRecord] = []
        self._lock = threading.Lock()
        self._seq = 0
        # Per-analyst append-order index, plus an incremental cursor for
        # unique_records: (seen fingerprints, unique list, rows consumed).
        # Background audit workers poll the log after every append burst,
        # so the effective-transcript query must cost O(new records), not
        # O(whole log).
        self._by_analyst: dict[str, list[AuditRecord]] = {}
        self._unique_cursors: dict[str, tuple[set, list, int]] = {}

    def append(
        self,
        analyst: str,
        fingerprint: bytes,
        mask: np.ndarray,
        answer: float,
        cached: bool,
        epsilon: float,
        source: str = "mechanism",
        *,
        packed_mask: bytes | None = None,
        query_size: int | None = None,
    ) -> AuditRecord:
        """Append one served query; the log assigns the sequence number.

        The server already bit-packs each mask to fingerprint it, so the
        hot path hands the packed bytes and query size in via the keyword
        arguments rather than paying for a second ``packbits``/``sum`` —
        and all mask work stays outside the log's lock either way.
        """
        n = int(np.asarray(mask).size)
        if packed_mask is None or query_size is None:
            record_mask = np.asarray(mask, dtype=bool)
            if packed_mask is None:
                packed_mask = np.packbits(record_mask).tobytes()
            if query_size is None:
                query_size = int(np.count_nonzero(record_mask))
        answer = float(answer)
        cached = bool(cached)
        epsilon = float(epsilon)
        with self._lock:
            record = AuditRecord(
                seq=self._seq,
                analyst=analyst,
                fingerprint=fingerprint,
                n=n,
                query_size=int(query_size),
                packed_mask=packed_mask,
                answer=answer,
                cached=cached,
                epsilon=epsilon,
                timestamp=time.time(),
                source=source,
            )
            self._records.append(record)
            rows = self._by_analyst.get(analyst)
            if rows is None:
                rows = self._by_analyst[analyst] = []
            rows.append(record)
            self._seq += 1
            return record

    def note_release(self, analyst: str, spec: "MechanismSpec") -> ReleaseRecord:
        """Record a synthetic release (its full mechanism spec) in the log."""
        with self._lock:
            record = ReleaseRecord(
                seq=self._seq,
                analyst=analyst,
                spec=spec,
                timestamp=time.time(),
            )
            self._releases.append(record)
            self._seq += 1
            return record

    @property
    def releases(self) -> tuple[ReleaseRecord, ...]:
        """Every noted synthetic release, in append order."""
        with self._lock:
            return tuple(self._releases)

    def note_certificate(self, analyst: str, certificate) -> CertificateRecord:
        """Record a consulted compliance approval (fingerprints only)."""
        with self._lock:
            record = CertificateRecord(
                seq=self._seq,
                analyst=analyst,
                subject=certificate.subject,
                fingerprint=certificate.fingerprint,
                release_fingerprint=certificate.release_fingerprint,
                timestamp=time.time(),
            )
            self._certificates.append(record)
            self._seq += 1
            return record

    def note_denial(
        self, analyst: str, subject: str, reason: str, message: str = ""
    ) -> DenialRecord:
        """Record a compliance refusal (its own channel, not an answer)."""
        with self._lock:
            record = DenialRecord(
                seq=self._seq,
                analyst=analyst,
                subject=subject,
                reason=reason,
                message=message,
                timestamp=time.time(),
            )
            self._denials.append(record)
            self._seq += 1
            return record

    @property
    def certificates(self) -> tuple[CertificateRecord, ...]:
        """Every consulted compliance approval, in append order."""
        with self._lock:
            return tuple(self._certificates)

    @property
    def denials(self) -> tuple[DenialRecord, ...]:
        """Every compliance refusal, in append order."""
        with self._lock:
            return tuple(self._denials)

    def __len__(self) -> int:
        return len(self._records)

    def records(self, analyst: str | None = None) -> tuple[AuditRecord, ...]:
        """All records (optionally one analyst's), in append order."""
        with self._lock:
            if analyst is None:
                return tuple(self._records)
            return tuple(self._by_analyst.get(analyst, ()))

    def unique_records(self, analyst: str) -> tuple[AuditRecord, ...]:
        """One record per distinct fingerprint (first release wins).

        This is the analyst's effective reconstruction transcript: repeats
        replay the same released answer and add no information.  Computed
        incrementally — only records appended since the previous call are
        scanned — so the auditor's per-append cadence check stays cheap on
        long transcripts.
        """
        with self._lock:
            rows = self._by_analyst.get(analyst)
            if rows is None:
                return ()
            cursor = self._unique_cursors.get(analyst)
            if cursor is None:
                seen: set[bytes] = set()
                unique: list[AuditRecord] = []
                consumed = 0
            else:
                seen, unique, consumed = cursor
            for record in rows[consumed:]:
                if record.fingerprint not in seen:
                    seen.add(record.fingerprint)
                    unique.append(record)
            self._unique_cursors[analyst] = (seen, unique, len(rows))
            return tuple(unique)

    def export_jsonl(self, path) -> int:
        """Write the log as JSON lines; returns the number of records."""
        snapshot = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in snapshot:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return len(snapshot)


@dataclass(frozen=True)
class AuditReport:
    """One auditor pass over an analyst's transcript."""

    analyst: str
    queries_logged: int
    unique_queries: int
    agreement: float
    flagged: bool
    mode: str
    threshold: float
    elapsed_seconds: float = field(compare=False, default=0.0)
    #: Whether an l2 screening pass escalated to the confirming LP solve
    #: (always ``False`` for pure-LP auditors).
    escalated: bool = False


class ReconstructionAuditor:
    """Replays analysts' logged transcripts through LP decoding.

    The auditor is server-side infrastructure and therefore holds the true
    private data: its agreement estimate is exact, not a proxy.  Auditing
    is *periodic* — a pass runs whenever an analyst has accumulated
    ``audit_every`` new unique queries past ``min_queries`` — because each
    pass costs an LP solve.  A pass whose agreement reaches
    ``agreement_threshold`` trips that analyst's circuit breaker; the
    threshold therefore sits *below* the blatant-non-privacy bar the
    operator wants to prevent (flag at 0.8 to stop reconstruction before it
    reaches 0.9), and the audit cadence bounds how much an analyst can
    learn between passes.

    Args:
        data: the server's private binary dataset.
        agreement_threshold: trip when replayed agreement reaches this.
        audit_every: run a pass every this-many new unique queries.
        min_queries: no pass before an analyst has this many unique queries
            (the LP is meaningless far below ``m ~ n``).
        alpha: feasibility slack for the replay LP; ``None`` uses least-l1
            decoding (the right mode for unbounded-noise mechanisms).
        solver: HiGHS algorithm for the replay LP.
        screen: ``"lp"`` replays every pass through the LP decoder (the
            original behavior).  ``"l2"`` first replays through the cheap
            first-order decoder (:func:`repro.reconstruction.l2_decode.
            l2_decode`) and only escalates to the confirming LP solve when
            the screened agreement lands within ``screen_margin`` of the
            trip threshold — so routine passes cost two matvecs per
            iteration instead of an LP, while any pass that could possibly
            trip is still decided by the exact same LP solve (and therefore
            the same agreement value and verdict) as ``screen="lp"``.
        screen_margin: how far below the threshold the l2 agreement must
            stay for a screened pass to skip the confirming LP.
        warm_start_passes: start each pass's decoder from the previous
            pass's fractional solution for the same analyst.  Consecutive
            passes differ by one ``audit_every`` window of queries, so the
            old solution is near-optimal for the new system — the l2 screen
            converges in a fraction of its cold iterations, and a
            feasibility-mode LP replay can certify the warm candidate
            outright.  Off by default: a warm-started screen can converge
            to a *different* (equally valid) fractional point, so enabling
            it may change screened agreement values; verdicts near the trip
            threshold are still decided by the exact LP either way.
    """

    def __init__(
        self,
        data: np.ndarray,
        agreement_threshold: float = 0.8,
        audit_every: int = 64,
        min_queries: int = 64,
        alpha: float | None = None,
        solver: str = DEFAULT_LP_SOLVER,
        screen: str = "lp",
        screen_margin: float = DEFAULT_SCREEN_MARGIN,
        warm_start_passes: bool = False,
    ):
        data = np.asarray(data)
        self._data = _validate_binary(data, data.size)
        if not 0.5 < agreement_threshold <= 1.0:
            raise ValueError("agreement_threshold must lie in (0.5, 1.0]")
        if audit_every <= 0:
            raise ValueError("audit_every must be positive")
        if min_queries <= 0:
            raise ValueError("min_queries must be positive")
        if screen not in SCREEN_MODES:
            raise ValueError(f"unknown screen mode {screen!r}; known: {SCREEN_MODES}")
        if screen_margin < 0:
            raise ValueError("screen_margin must be non-negative")
        self.agreement_threshold = float(agreement_threshold)
        self.audit_every = int(audit_every)
        self.min_queries = int(min_queries)
        self.alpha = alpha
        self.solver = solver
        self.screen = screen
        self.screen_margin = float(screen_margin)
        self.warm_start_passes = bool(warm_start_passes)
        self._lock = threading.Lock()
        self._audited_at: dict[str, int] = {}
        self._tripped: dict[str, AuditReport] = {}
        self._reports: list[AuditReport] = []
        # Last pass's fractional solution per analyst (warm-start state).
        self._warm: dict[str, np.ndarray] = {}

    @property
    def reports(self) -> tuple[AuditReport, ...]:
        """Every pass run so far, in order."""
        with self._lock:
            return tuple(self._reports)

    def is_tripped(self, analyst: str) -> bool:
        """Whether ``analyst``'s circuit breaker is open."""
        with self._lock:
            return analyst in self._tripped

    def tripped_report(self, analyst: str) -> AuditReport | None:
        """The report that tripped ``analyst``, if any."""
        with self._lock:
            return self._tripped.get(analyst)

    def check(self, analyst: str) -> None:
        """Raise :class:`CircuitBreakerTripped` if ``analyst`` is flagged."""
        report = self.tripped_report(analyst)
        if report is not None:
            raise CircuitBreakerTripped(
                f"analyst {analyst!r} flagged by the reconstruction auditor "
                f"(replayed agreement {report.agreement:.3f} >= "
                f"{report.threshold})",
                analyst=analyst,
                report=report,
            )

    def maybe_audit(self, log: AuditLog, analyst: str) -> AuditReport | None:
        """Run a pass if the analyst crossed the next audit checkpoint."""
        unique = log.unique_records(analyst)
        with self._lock:
            if analyst in self._tripped:
                return None
            last = self._audited_at.get(analyst, 0)
            due = (
                len(unique) >= self.min_queries
                and len(unique) - last >= self.audit_every
            )
            if not due:
                return None
            # Claim the checkpoint inside the lock so concurrent callers
            # cannot both launch the same (expensive) pass.
            self._audited_at[analyst] = len(unique)
        return self._audit_records(log, analyst, unique)

    def audit(self, log: AuditLog, analyst: str) -> AuditReport | None:
        """Run a pass now (cadence ignored); ``None`` if too few queries."""
        unique = log.unique_records(analyst)
        if len(unique) < self.min_queries:
            return None
        with self._lock:
            self._audited_at[analyst] = len(unique)
        return self._audit_records(log, analyst, unique)

    def _audit_records(
        self, log: AuditLog, analyst: str, unique: Iterable[AuditRecord]
    ) -> AuditReport:
        unique = tuple(unique)
        start = time.perf_counter()
        workload = Workload(
            np.stack([record.mask() for record in unique]), copy=False
        )
        answers = np.array([record.answer for record in unique], dtype=float)
        warm = None
        if self.warm_start_passes:
            with self._lock:
                warm = self._warm.get(analyst)
        escalated = False
        final_fractional: np.ndarray | None = None
        if self.screen == "l2":
            screened = l2_decode(workload, answers, self.alpha, x0=warm)
            agreement = screened.agreement_with(self._data)
            mode = "l2-screen"
            final_fractional = screened.fractional
            if agreement >= self.agreement_threshold - self.screen_margin:
                # Near or above the trip bar: the verdict must come from
                # the exact LP replay, warm-started with the l2 iterate.
                escalated = True
                result = reconstruct_from_answers(
                    workload,
                    answers,
                    alpha=self.alpha,
                    solver=self.solver,
                    warm_start=screened.fractional,
                )
                agreement = result.agreement_with(self._data)
                mode = result.mode
                final_fractional = result.fractional
        else:
            result = reconstruct_from_answers(
                workload,
                answers,
                alpha=self.alpha,
                solver=self.solver,
                warm_start=warm,
            )
            agreement = result.agreement_with(self._data)
            mode = result.mode
            final_fractional = result.fractional
        if self.warm_start_passes and final_fractional is not None:
            with self._lock:
                self._warm[analyst] = np.asarray(final_fractional, dtype=np.float64)
        elapsed = time.perf_counter() - start
        report = AuditReport(
            analyst=analyst,
            queries_logged=len(log.records(analyst)),
            unique_queries=len(unique),
            agreement=agreement,
            flagged=agreement >= self.agreement_threshold,
            mode=mode,
            threshold=self.agreement_threshold,
            elapsed_seconds=elapsed,
            escalated=escalated,
        )
        with self._lock:
            self._reports.append(report)
            if report.flagged:
                self._tripped.setdefault(analyst, report)
        return report
