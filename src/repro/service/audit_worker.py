"""Background audit workers: reconstruction auditing off the hot path.

The E18 experiments put the cost of inline auditing at two orders of
magnitude over plain serving — every ``audit_every`` checkpoint stalls the
analyst's serving thread for an l2/LP replay pass.  *Linear Program
Reconstruction in Practice* (PAPERS.md) is the reason the auditing cannot
simply be turned off: the attack is cheap enough that the transcript must
be watched continuously.  This module resolves the tension by moving the
*passes* (not the evidence) off the hot path: the
:class:`~repro.service.pipeline.AuditAppendStage` still appends every
release synchronously — the log stays the complete attack transcript —
and then hands the "this analyst may have crossed a checkpoint" signal to
an :class:`AuditDispatch`.

Three dispatches:

:class:`InlineAuditDispatch`
    Runs :meth:`~repro.service.audit.ReconstructionAuditor.maybe_audit`
    on the serving thread — the pre-refactor behavior, and the default,
    so E18's golden headlines are untouched.
:class:`AuditWorkerPool`
    Background worker threads, one queue per analyst shard
    (:func:`~repro.privacy.accounting.stable_shard` routing, the same
    partitioner the sharded accountant uses).  Workers tail the
    append-only :class:`~repro.service.audit.AuditLog` and run the same
    warm-started screening passes the inline path would; verdicts publish
    through the *existing* circuit breaker
    (``ReconstructionAuditor._tripped``), so a tripped analyst is refused
    by the very next request's Compliance stage.  Because an analyst's
    checkpoints always land on the same shard queue, passes for one
    analyst never run concurrently — the auditor sees the same
    one-pass-at-a-time discipline as inline dispatch, and a drained pool
    (:meth:`~AuditWorkerPool.flush`) has produced bit-identical reports.
    What background dispatch trades is *latency*, not evidence: an
    analyst can slip in the few extra queries that arrive while their
    pass is in flight.
:class:`NullAuditDispatch`
    No auditor configured; appends are evidence only.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import warnings
from abc import ABC, abstractmethod

from repro.privacy.accounting import stable_shard
from repro.service.audit import AuditLog, ReconstructionAuditor
from repro.telemetry.instrument import (
    AUDIT_ERRORS,
    AUDIT_ESCALATIONS,
    AUDIT_PASS_SECONDS,
    AUDIT_QUEUE_DEPTH,
    AUDIT_QUEUE_DEPTH_PEAK,
    BREAKER_TRIPS,
)

__all__ = [
    "AuditDispatch",
    "AuditWorkerPool",
    "InlineAuditDispatch",
    "NullAuditDispatch",
    "resolve_audit_dispatch",
]

#: Environment variable overriding the default background worker count.
AUDIT_WORKERS_ENV = "REPRO_AUDIT_WORKERS"


def default_audit_workers() -> int:
    """Background worker count: ``REPRO_AUDIT_WORKERS`` or 2."""
    return max(1, int(os.environ.get(AUDIT_WORKERS_ENV, "2")))


class AuditDispatch(ABC):
    """Where a post-append "checkpoint may be due" signal goes."""

    @abstractmethod
    def after_append(self, log: AuditLog, analyst: str) -> None:
        """Called by the AuditAppend stage after fresh records land."""

    def flush(self, timeout: float | None = None) -> bool:
        """Wait until every signalled pass has run (no-op inline)."""
        return True

    def close(self) -> None:
        """Release dispatch resources (no-op inline)."""


class NullAuditDispatch(AuditDispatch):
    """No auditor: appends are evidence only, nothing to run."""

    def after_append(self, log: AuditLog, analyst: str) -> None:
        pass


class InlineAuditDispatch(AuditDispatch):
    """Run due passes on the serving thread (pre-refactor behavior)."""

    __slots__ = ("_auditor",)

    def __init__(self, auditor: ReconstructionAuditor):
        self._auditor = auditor

    def after_append(self, log: AuditLog, analyst: str) -> None:
        self._auditor.maybe_audit(log, analyst)


class AuditWorkerPool(AuditDispatch):
    """Daemon worker threads tailing the audit log per analyst shard.

    Signals are deduplicated per ``(log, analyst)`` while queued — a burst
    of appends costs one pass, and the pass itself re-reads the log, so it
    always audits the freshest transcript.  The pending mark is dropped
    *before* the pass runs: appends landing mid-pass re-enqueue, so no
    checkpoint is ever silently skipped.

    Args:
        auditor: the shared :class:`ReconstructionAuditor` verdicts
            publish through.
        workers: worker-thread count (default
            :func:`default_audit_workers`).  Analysts are partitioned
            over workers by :func:`stable_shard`, which serializes each
            analyst's passes.
    """

    #: Distinguishes pools living in one shared registry (CI smoke, env
    #: default): each pool's metrics carry a stable ``pool=<n>`` label.
    _pool_ids = itertools.count()

    def __init__(
        self,
        auditor: ReconstructionAuditor,
        workers: int | None = None,
        telemetry=None,
    ):
        if workers is None:
            workers = default_audit_workers()
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self._auditor = auditor
        self._cond = threading.Condition()
        self._pending: set[tuple[int, str]] = set()
        self._inflight = 0
        self._closed = False
        self._errors: list[BaseException] = []
        self._telemetry = None
        self.depth_peak = 0
        if telemetry is not None and getattr(telemetry, "enabled", False):
            self.bind_telemetry(telemetry)
        self._queues: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._run,
                args=(q,),
                name=f"repro-audit-{i}",
                daemon=True,
            )
            for i, q in enumerate(self._queues)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def auditor(self) -> ReconstructionAuditor:
        return self._auditor

    @property
    def workers(self) -> int:
        return len(self._queues)

    @property
    def errors(self) -> tuple[BaseException, ...]:
        """Exceptions raised by background passes (kept, never fatal)."""
        with self._cond:
            return tuple(self._errors)

    def bind_telemetry(self, telemetry) -> None:
        """Register this pool's queue/pass metrics (idempotent).

        Every shard server sharing one pool calls in; the first bind wins.
        Depth and error counts are snapshot-time callbacks over state the
        pool already maintains, so the signal path pays nothing; pass
        latency, escalations, and breaker trips are recorded on the worker
        threads, off the serving hot path.
        """
        if self._telemetry is not None or not getattr(telemetry, "enabled", False):
            return
        self._telemetry = telemetry
        registry = telemetry.registry
        pool = str(next(AuditWorkerPool._pool_ids))
        registry.gauge_fn(
            AUDIT_QUEUE_DEPTH, lambda: float(self._inflight), pool=pool
        )
        registry.gauge_fn(
            AUDIT_QUEUE_DEPTH_PEAK, lambda: float(self.depth_peak), pool=pool
        )
        registry.counter_fn(
            AUDIT_ERRORS, lambda: float(len(self._errors)), pool=pool
        )
        self._pass_hist = {
            "cold": registry.histogram(AUDIT_PASS_SECONDS, pool=pool, warm="cold"),
            "warm": registry.histogram(AUDIT_PASS_SECONDS, pool=pool, warm="warm"),
        }
        self._escalations = registry.counter(AUDIT_ESCALATIONS, pool=pool)
        self._trips = registry.counter(BREAKER_TRIPS, pool=pool)
        self._audited: set[tuple[int, str]] = set()

    def after_append(self, log: AuditLog, analyst: str) -> None:
        key = (id(log), analyst)
        with self._cond:
            if self._closed:
                closed = True
            else:
                closed = False
                if key in self._pending:
                    return
                self._pending.add(key)
                self._inflight += 1
                if self._inflight > self.depth_peak:
                    self.depth_peak = self._inflight
        if closed:
            # Late signals after shutdown still get their verdicts — they
            # just pay for the pass inline, like the pre-refactor path.
            self._auditor.maybe_audit(log, analyst)
            return
        shard = stable_shard(analyst, len(self._queues))
        self._queues[shard].put((log, analyst))

    def _run(self, jobs: queue.SimpleQueue) -> None:
        while True:
            item = jobs.get()
            if item is None:
                return
            log, analyst = item
            with self._cond:
                self._pending.discard((id(log), analyst))
            try:
                report = self._auditor.maybe_audit(log, analyst)
                if self._telemetry is not None and report is not None:
                    self._record_pass((id(log), analyst), report)
            except BaseException as error:  # a failed pass must not kill the tail
                with self._cond:
                    self._errors.append(error)
                warnings.warn(
                    f"background audit pass for {analyst!r} failed ({error!r})",
                    RuntimeWarning,
                    stacklevel=2,
                )
            finally:
                with self._cond:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._cond.notify_all()

    def _record_pass(self, key: tuple[int, str], report) -> None:
        """Record one completed pass: latency (cold/warm), escalation, trip.

        "Warm" means this pool has already audited the same ``(log,
        analyst)`` — later passes reuse the auditor's warm-started solver
        state, so their latency belongs in a separate histogram.
        """
        warm = key in self._audited
        self._audited.add(key)
        self._pass_hist["warm" if warm else "cold"].observe(
            float(report.elapsed_seconds)
        )
        if getattr(report, "escalated", False):
            self._escalations.inc()
        if getattr(report, "flagged", False):
            self._trips.inc()

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every signalled pass has completed.

        After a clean flush, the auditor's reports and breaker state are
        bit-identical to what inline dispatch would have produced for the
        same append sequence.  Returns ``False`` on timeout.
        """
        with self._cond:
            return self._cond.wait_for(lambda: self._inflight == 0, timeout)

    def close(self) -> None:
        """Drain, stop the workers, and switch to inline fallback."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
        self.flush()
        for q in self._queues:
            q.put(None)
        for thread in self._threads:
            thread.join()


def resolve_audit_dispatch(
    audit_dispatch: str | AuditDispatch | None,
    auditor: ReconstructionAuditor | None,
) -> AuditDispatch:
    """Normalize an ``audit_dispatch`` argument into a dispatch instance.

    An explicit :class:`AuditDispatch` instance passes through untouched;
    otherwise ``"inline"`` (default) or ``"background"`` select the
    built-in dispatches over ``auditor`` — which, when ``None``, always
    yields the do-nothing :class:`NullAuditDispatch`.
    """
    if isinstance(audit_dispatch, AuditDispatch):
        return audit_dispatch
    if auditor is None:
        return NullAuditDispatch()
    if audit_dispatch is None or audit_dispatch == "inline":
        return InlineAuditDispatch(auditor)
    if audit_dispatch == "background":
        return AuditWorkerPool(auditor)
    raise ValueError(
        f"unknown audit dispatch {audit_dispatch!r}; "
        "known: 'inline', 'background', or an AuditDispatch instance"
    )
