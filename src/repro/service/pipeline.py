"""The staged serve pipeline: one fixed stage list, many drivers.

PRs 3-8 grew ``QueryServer._serve``/``_serve_workload`` into a ~250-line
monolith where admission, compliance, caching, budget reservation, noise
sampling, and audit logging interleaved under one lock discipline — which
blocked both remaining scale items (a front end that escapes the GIL for
uncached traffic, and background audit workers).  This module decomposes
the serve path into the fixed sequence

    Admission -> Compliance -> CacheLookup -> BudgetReserve -> Execute
              -> CachePut -> AuditAppend

where each stage is a small, separately testable unit and every server
(:class:`~repro.service.server.QueryServer`, the sharded front end) is a
thin driver over the same stage list.  The frozen :class:`Request` /
:class:`Outcome` pair is the typed boundary an external (async, RPC)
front end drives the pipeline through; the in-process servers call the
drivers directly.

**Bit-identity contract.**  The stages perform exactly the operations of
the pre-refactor monolith, in exactly the same order, under the same
per-analyst lock window (``Compliance`` through ``AuditAppend``; admission
runs outside it and has zero budget/cache/audit footprint).  Golden tests
pin served answers, budget-exhaustion points, compliance denials, and E18
headlines across the refactor and across every execution backend.

**Execution backends.**  The ``Execute`` stage delegates mechanism calls
to a pluggable :class:`ExecutionBackend`:

``"inline"``
    The calling thread answers (the pre-refactor behavior, and the
    default).
``"thread"``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor` answers.
    NumPy noise sampling releases the GIL, so serving threads stay
    responsive while big uncached batches draw.
``"process"``
    A persistent fork-based process pool
    (:func:`repro.utils.parallel.shared_fork_executor`) answers.  Noise
    is bit-identical to inline because the per-analyst ``Generator``
    *state* travels with each call: the parent ships the analyst's
    current ``bit_generator.state`` plus the packed query masks (already
    produced by fingerprinting), the worker rebuilds the analyst's
    answerer from the same ``derive_rng(seed, "service", analyst)``
    construction path, restores the stream position, answers, and ships
    the advanced state back.  Workers cache one answerer per
    (server, analyst), so steady-state traffic moves only a few hundred
    bytes per call.  Select per server via the ``execution`` argument or
    globally via the ``REPRO_EXEC_BACKEND`` environment variable.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.privacy.accounting import BudgetExhausted, BudgetLease
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service.cache import fingerprint_and_packed, workload_fingerprints_packed
from repro.telemetry.instrument import (
    ADMISSION_REJECTS,
    REQUESTS_TOTAL,
    STAGE_SECONDS,
    TelemetryAdmission,
    TelemetryStage,
    analyst_digest_prefix,
)
from repro.utils.parallel import fork_available, shared_fork_executor
from repro.utils.rng import derive_rng

if TYPE_CHECKING:
    from repro.service.server import QueryServer, _AnalystState

#: Fused cache hits are latency-sampled every ``mask + 1`` hits (the first
#: hit always lands, keeping the family non-zero after one replay).  Must
#: be ``2**k - 1`` so the sampling test is one AND.
_HIT_SAMPLE_MASK = 7

__all__ = [
    "EXECUTION_BACKENDS",
    "AdmissionControl",
    "AuditAppendStage",
    "BudgetReserveStage",
    "CacheLookupStage",
    "CachePutStage",
    "ComplianceStage",
    "ExecuteStage",
    "Exchange",
    "ExecutionBackend",
    "InlineExecutionBackend",
    "Outcome",
    "ProcessExecutionBackend",
    "Request",
    "ServePipeline",
    "ThreadExecutionBackend",
    "resolve_execution_backend",
]

#: Recognized execution backend names, in documentation order.
EXECUTION_BACKENDS = ("inline", "thread", "process")

#: Environment variable selecting the default execution backend.
EXEC_BACKEND_ENV = "REPRO_EXEC_BACKEND"


# ---------------------------------------------------------------------------
# Typed request/outcome boundary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One unit of serve work: a single query or a packed workload."""

    analyst: str
    query: SubsetQuery | None = None
    workload: Workload | None = None

    def __post_init__(self) -> None:
        if (self.query is None) == (self.workload is None):
            raise ValueError("a Request carries exactly one of query/workload")

    @property
    def single(self) -> bool:
        """Whether this is a single-query request."""
        return self.query is not None


@dataclass(frozen=True)
class Outcome:
    """What the pipeline released for one :class:`Request`.

    ``answer`` is set for single-query requests, ``answers`` (a tuple, so
    the outcome stays hashable/frozen) for workloads.  ``epsilon_charged``
    is the total budget this request consumed (0 for pure replay and for
    synthetic-fallback service).
    """

    analyst: str
    answer: float | None
    answers: tuple[float, ...] | None
    cached: bool
    synthetic: bool
    fresh_queries: int
    epsilon_charged: float


class Exchange:
    """Mutable per-request state threaded through the stages.

    One exchange lives strictly inside one driver invocation (and, for
    the serving stages, inside the per-analyst lock), so it needs no
    synchronization.  Slotted: the cached-replay hot path allocates none,
    and the miss path's allocation cost is noise next to a mechanism call.
    """

    __slots__ = (
        "server",
        "state",
        "analyst",
        "single",
        # single-query shape
        "query",
        "mask",
        "fingerprint",
        "packed",
        "size",
        "cached_answer",
        "done",
        "answer",
        # workload shape
        "workload",
        "fingerprints",
        "packed_rows",
        "sizes",
        "looked_up",
        "miss_rows",
        "miss_fps",
        "answer_by_fp",
        "fresh_entries",
        "answers",
        # budget stage contract
        "epsilon",
        "lease",
        "synthetic",
    )

    def __init__(
        self,
        server: "QueryServer",
        state: "_AnalystState",
        analyst: str,
        *,
        query: SubsetQuery | None = None,
        workload: Workload | None = None,
    ):
        self.server = server
        self.state = state
        self.analyst = analyst
        self.single = workload is None
        self.query = query
        self.workload = workload
        self.mask = None
        self.fingerprint = None
        self.packed = None
        self.size = 0
        self.cached_answer = None
        self.done = False
        self.answer = None
        self.fingerprints = None
        self.packed_rows = None
        self.sizes = None
        self.looked_up = None
        self.miss_rows = None
        self.miss_fps = None
        self.answer_by_fp = None
        self.fresh_entries = None
        self.answers = None
        self.epsilon = 0.0
        self.lease = None
        self.synthetic = False


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


class AdmissionControl:
    """The ``Admission`` stage: token bucket + in-flight gate, pre-lock.

    Runs *before* the per-analyst serialization lock and has zero budget,
    cache, and audit footprint — a rejected request never reached the
    mechanism.  Duck-typed over the sharded front end's bucket
    (``admit(analyst)``) and gate (``acquire(analyst)``/``release()``)
    so the stage itself carries no admission policy.
    """

    __slots__ = ("bucket", "gate")

    name = "admission"

    def __init__(self, bucket=None, gate=None):
        self.bucket = bucket
        self.gate = gate

    def enter(self, analyst: str) -> None:
        """Admit or raise (:class:`~repro.service.sharded.Rejected`)."""
        if self.bucket is not None:
            self.bucket.admit(analyst)
        if self.gate is not None:
            self.gate.acquire(analyst)

    def exit(self, analyst: str) -> None:
        """Release the in-flight slot taken by a successful :meth:`enter`."""
        if self.gate is not None:
            self.gate.release()


class ComplianceStage:
    """Per-request compliance: the auditor's circuit breaker.

    The expensive compliance work happens elsewhere, off the hot path —
    certificate verification at session *registration* (see
    ``QueryServer._state``) and reconstruction passes in the auditor —
    this stage only enforces their verdicts: a tripped analyst is refused
    with ``CircuitBreakerTripped`` before any budget or cache touch.
    """

    __slots__ = ("_auditor",)

    name = "compliance"

    def __init__(self, auditor):
        self._auditor = auditor

    def check(self, analyst: str) -> None:
        """Raise if the analyst's breaker is open; no-op unaudited."""
        if self._auditor is not None:
            self._auditor.check(analyst)

    def single(self, x: Exchange) -> None:
        self.check(x.analyst)

    def batch(self, x: Exchange) -> None:
        self.check(x.analyst)


class CacheLookupStage:
    """Fingerprint the request and consult the analyst's answer cache.

    Budget footprint: none (hits are post-processing).  Cache footprint:
    read + LRU touch.  Produces the packed mask bytes the later stages
    reuse (audit records, process-backend wire format) so bit-packing
    runs exactly once per request.
    """

    __slots__ = ()

    name = "cache_lookup"

    @staticmethod
    def probe(state, mask) -> tuple[bytes, bytes, int, float | None]:
        """``(fingerprint, packed, size, cached_answer)`` for one mask."""
        fingerprint, packed = fingerprint_and_packed(mask)
        size = int(np.count_nonzero(mask))
        return fingerprint, packed, size, state.cache.get(fingerprint)

    def single(self, x: Exchange) -> None:
        mask = x.query.mask
        x.mask = mask
        x.fingerprint, x.packed, x.size, cached = self.probe(x.state, mask)
        if cached is not None:
            x.cached_answer = cached
            x.done = True

    def batch(self, x: Exchange) -> None:
        fingerprints, packed_rows, sizes = workload_fingerprints_packed(x.workload)
        x.fingerprints = fingerprints
        x.packed_rows = packed_rows
        x.sizes = sizes
        looked_up = x.state.cache.lookup_many(fingerprints)
        x.looked_up = looked_up
        miss_rows: list[int] = []
        miss_fps: list[bytes] = []
        seen: set[bytes] = set()
        for row, (fingerprint, hit) in enumerate(zip(fingerprints, looked_up)):
            if hit is None and fingerprint not in seen:
                seen.add(fingerprint)
                miss_rows.append(row)
                miss_fps.append(fingerprint)
        x.miss_rows = miss_rows
        x.miss_fps = miss_fps
        x.answer_by_fp = {
            fingerprint: hit
            for fingerprint, hit in zip(fingerprints, looked_up)
            if hit is not None
        }


class BudgetReserveStage:
    """Charge the misses all-or-nothing, held as a :class:`BudgetLease`.

    Verdicts (including the :class:`BudgetExhausted` raise points and
    messages) are bit-identical to the pre-refactor direct ``charge``;
    the lease only adds the rollback path the driver invokes when a later
    stage fails, so budget is never burned for answers never released.
    With a synthetic fallback configured, a refused charge flips the
    exchange to synthetic service (zero further epsilon) instead of
    propagating.
    """

    __slots__ = ()

    name = "budget_reserve"

    @staticmethod
    def reserve(x: Exchange, count: int) -> None:
        x.epsilon = x.state.epsilon_per_query
        try:
            x.lease = BudgetLease.acquire(
                x.server.accountant, x.analyst, count, x.epsilon
            )
        except BudgetExhausted:
            if x.server.synthetic_fallback is None:
                raise
            x.synthetic = True

    def single(self, x: Exchange) -> None:
        self.reserve(x, 1)

    def batch(self, x: Exchange) -> None:
        if not x.miss_rows:
            x.epsilon = x.state.epsilon_per_query
            return
        self.reserve(x, len(x.miss_rows))


class ExecuteStage:
    """Run the mechanism (or the synthetic fallback) for the misses.

    The only stage that draws noise; everything else is bookkeeping.
    Mechanism calls go through the bound :class:`ExecutionBackend`;
    synthetic-fallback answers are exact post-processing of the pre-paid
    release and always compute inline.
    """

    __slots__ = ("_bound",)

    name = "execute"

    def __init__(self, bound: "BoundExecution"):
        self._bound = bound

    @property
    def bound(self) -> "BoundExecution":
        """The backend binding answering this server's mechanism calls."""
        return self._bound

    def single(self, x: Exchange) -> None:
        if x.synthetic:
            x.answer = float(x.server._fallback().answer(x.mask))
        else:
            x.answer = self._bound.answer(x.state, x.analyst, x.query, x.packed)

    def batch(self, x: Exchange) -> None:
        if not x.miss_rows:
            return
        sub_workload = Workload(x.workload.masks[x.miss_rows], copy=False)
        if x.synthetic:
            fresh = x.server._fallback().answer_workload(sub_workload)
            for fingerprint, answer in zip(x.miss_fps, fresh):
                x.answer_by_fp[fingerprint] = float(answer)
        else:
            packed_rows = [x.packed_rows[row] for row in x.miss_rows]
            fresh = self._bound.answer_workload(
                x.state, x.analyst, sub_workload, packed_rows
            )
            x.fresh_entries = [
                (fingerprint, float(answer))
                for fingerprint, answer in zip(x.miss_fps, fresh)
            ]
            x.answer_by_fp.update(x.fresh_entries)


class CachePutStage:
    """Insert freshly released answers into the analyst's cache.

    Synthetic answers stay out of the cache so every one is logged with
    its true source (pre-refactor behavior); cache hits obviously skip.
    """

    __slots__ = ()

    name = "cache_put"

    def single(self, x: Exchange) -> None:
        if not x.synthetic:
            x.state.cache.put(x.fingerprint, x.answer)

    def batch(self, x: Exchange) -> None:
        if x.miss_rows and not x.synthetic:
            x.state.cache.put_many(x.fresh_entries)


class AuditAppendStage:
    """Append every release to the audit log, then poke the auditor.

    The append itself stays on the hot path (the log *is* the server's
    evidence trail); what happens after is the pluggable part — the
    configured :class:`~repro.service.audit_worker.AuditDispatch` either
    runs ``maybe_audit`` inline (pre-refactor behavior) or wakes a
    background audit worker.  Cached single replays append but do not
    poke (they add no unique record, matching the monolith).
    """

    __slots__ = ("_log", "_dispatch")

    name = "audit_append"

    def __init__(self, log, dispatch):
        self._log = log
        self._dispatch = dispatch

    @property
    def dispatch(self):
        """The audit dispatch verdicts flow through (tests, telemetry)."""
        return self._dispatch

    def append_hit(self, analyst, fingerprint, mask, answer, packed, size) -> None:
        """Log one cached replay (free, no auditor poke)."""
        self._log.append(
            analyst,
            fingerprint,
            mask,
            answer,
            True,
            0.0,
            packed_mask=packed,
            query_size=size,
        )

    def single(self, x: Exchange) -> None:
        if x.done:
            self.append_hit(
                x.analyst, x.fingerprint, x.mask, x.cached_answer, x.packed, x.size
            )
            return
        synthetic = x.synthetic
        self._log.append(
            x.analyst,
            x.fingerprint,
            x.mask,
            x.answer,
            False,
            0.0 if synthetic else x.epsilon,
            source="synthetic" if synthetic else "mechanism",
            packed_mask=x.packed,
            query_size=x.size,
        )
        self._dispatch.after_append(self._log, x.analyst)

    def batch(self, x: Exchange) -> None:
        answers = np.array(
            [x.answer_by_fp[fingerprint] for fingerprint in x.fingerprints],
            dtype=np.float64,
        )
        x.answers = answers
        fresh_rows = set(x.miss_rows)
        masks = x.workload.masks
        epsilon = x.epsilon
        synthetic = x.synthetic
        for row, fingerprint in enumerate(x.fingerprints):
            is_fresh = row in fresh_rows
            self._log.append(
                x.analyst,
                fingerprint,
                masks[row],
                answers[row],
                not is_fresh,
                epsilon if is_fresh and not synthetic else 0.0,
                source="synthetic" if is_fresh and synthetic else "mechanism",
                packed_mask=x.packed_rows[row],
                query_size=int(x.sizes[row]),
            )
        self._dispatch.after_append(self._log, x.analyst)


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------


class BoundExecution(ABC):
    """A backend bound to one server: the ``Execute`` stage's call target."""

    @abstractmethod
    def answer(self, state, analyst: str, query: SubsetQuery, packed: bytes) -> float:
        """Answer one query on the analyst's answerer."""

    @abstractmethod
    def answer_workload(
        self, state, analyst: str, workload: Workload, packed_rows: Sequence[bytes]
    ) -> np.ndarray:
        """Answer a deduplicated miss workload on the analyst's answerer."""


class ExecutionBackend(ABC):
    """Where the ``Execute`` stage runs mechanism calls.

    A backend is *bound* to a server once (:meth:`bind`), yielding the
    per-server call target; every backend must be bit-identical to
    inline execution for a fixed server seed, which the backend suite
    pins across single asks, workloads, and interleaved sessions.
    """

    name: str = "?"

    @abstractmethod
    def bind(self, server: "QueryServer") -> BoundExecution:
        """Bind to one server, returning its execution call target."""

    def close(self) -> None:
        """Release backend resources (shared pools persist; default no-op)."""


class _InlineBound(BoundExecution):
    __slots__ = ()

    def answer(self, state, analyst, query, packed):
        return state.answerer.answer(query)

    def answer_workload(self, state, analyst, workload, packed_rows):
        return state.answerer.answer_workload(workload)


class InlineExecutionBackend(ExecutionBackend):
    """The calling thread answers: zero indirection, the reference."""

    name = "inline"

    _BOUND = _InlineBound()

    def bind(self, server):
        return self._BOUND


_POOL_GUARD = threading.Lock()
_THREAD_POOL: ThreadPoolExecutor | None = None


def _shared_thread_pool() -> ThreadPoolExecutor:
    global _THREAD_POOL
    with _POOL_GUARD:
        if _THREAD_POOL is None:
            _THREAD_POOL = ThreadPoolExecutor(
                max_workers=min(32, 4 * (os.cpu_count() or 1)),
                thread_name_prefix="repro-exec",
            )
        return _THREAD_POOL


class _ThreadBound(BoundExecution):
    __slots__ = ()

    def answer(self, state, analyst, query, packed):
        return _shared_thread_pool().submit(state.answerer.answer, query).result()

    def answer_workload(self, state, analyst, workload, packed_rows):
        return (
            _shared_thread_pool()
            .submit(state.answerer.answer_workload, workload)
            .result()
        )


class ThreadExecutionBackend(ExecutionBackend):
    """A shared thread pool answers.

    Same objects, same calls, same noise stream as inline (the analyst
    lock already serializes per-analyst work), so bit-identity is free;
    the point is that NumPy sampling releases the GIL, keeping serving
    threads responsive under big uncached batches — and it is the shape
    an asyncio front end awaits on.
    """

    name = "thread"

    def bind(self, server):
        return _ThreadBound()


# Worker-process side of the process backend.  Both dicts live in the
# forked children only; keyed by the parent-assigned server token.
_POOL_INITS: dict[int, tuple] = {}
_POOL_ANSWERERS: dict[tuple[int, str], object] = {}

_BIND_TOKENS = itertools.count(1)


def _pool_answer(token, analyst, init, rng_state, packed_rows, n, single):
    """Worker body: rebuild the analyst's answerer, position its noise
    stream at the shipped state, answer, and return the advanced state.

    Returns ``None`` when this worker has not yet seen ``token``'s init
    payload — the parent resubmits with it attached (a one-time double
    round trip per worker, so steady-state calls stay small).
    """
    spec = _POOL_INITS.get(token)
    if spec is None:
        if init is None:
            return None
        spec = pickle.loads(init)
        _POOL_INITS[token] = spec
    mechanism, params, data, seed = spec
    key = (token, analyst)
    answerer = _POOL_ANSWERERS.get(key)
    if answerer is None:
        from repro.service.server import make_answerer

        # The same construction path the parent took at registration:
        # construction-time draws (e.g. a subsample mask) replay from the
        # same derived stream, then the shipped state repositions it.
        answerer = make_answerer(
            mechanism, data, rng=derive_rng(seed, "service", analyst), **params
        )
        _POOL_ANSWERERS[key] = answerer
    rng = getattr(answerer, "_rng", None)
    if rng is not None and rng_state is not None:
        rng.bit_generator.state = rng_state
    rows = np.frombuffer(b"".join(packed_rows), dtype=np.uint8)
    masks = np.unpackbits(
        rows.reshape(len(packed_rows), -1), axis=1, count=n
    ).astype(bool)
    if single:
        result = answerer.answer(SubsetQuery(masks[0]))
    else:
        result = answerer.answer_workload(Workload(masks, copy=False))
    new_state = rng.bit_generator.state if rng is not None else None
    return result, new_state


class _ProcessBound(BoundExecution):
    __slots__ = ("_token", "_init", "_n", "_workers", "_degraded", "_lock")

    def __init__(self, token: int, init: bytes, n: int, workers: int | None):
        self._token = token
        self._init = init
        self._n = n
        self._workers = workers
        self._degraded = False
        self._lock = threading.Lock()

    def _degrade(self, error: BaseException) -> None:
        with self._lock:
            if not self._degraded:
                self._degraded = True
                warnings.warn(
                    f"process execution backend degraded to inline ({error!r})",
                    RuntimeWarning,
                    stacklevel=3,
                )

    def _roundtrip(self, state, analyst, packed_rows, single):
        answerer = state.answerer
        rng = getattr(answerer, "_rng", None)
        rng_state = rng.bit_generator.state if rng is not None else None
        pool = shared_fork_executor(self._workers)
        reply = pool.submit(
            _pool_answer, self._token, analyst, None, rng_state, packed_rows,
            self._n, single,
        ).result()
        if reply is None:
            reply = pool.submit(
                _pool_answer, self._token, analyst, self._init, rng_state,
                packed_rows, self._n, single,
            ).result()
        result, new_state = reply
        if rng is not None and new_state is not None:
            # The worker consumed the draws; adopt its advanced stream so
            # the analyst's next answer continues bit-exactly.
            rng.bit_generator.state = new_state
        lock = getattr(answerer, "_answer_lock", None)
        count = 1 if single else len(packed_rows)
        if lock is not None:
            with lock:
                answerer.queries_answered += count
        return result

    def answer(self, state, analyst, query, packed):
        if self._degraded:
            return state.answerer.answer(query)
        try:
            return self._roundtrip(state, analyst, [packed], True)
        except Exception as error:  # pool broke or payload would not cross
            self._degrade(error)
            return state.answerer.answer(query)

    def answer_workload(self, state, analyst, workload, packed_rows):
        if self._degraded:
            return state.answerer.answer_workload(workload)
        try:
            return self._roundtrip(state, analyst, list(packed_rows), False)
        except Exception as error:
            self._degrade(error)
            return state.answerer.answer_workload(workload)


class ProcessExecutionBackend(ExecutionBackend):
    """A persistent fork pool answers: uncached traffic escapes the GIL.

    Binding pickles the server's ``(mechanism, params, data, seed)`` once;
    workers lazily rebuild each analyst's answerer from it and cache the
    result, so steady-state calls ship only packed masks and a generator
    state.  Bit-identity with inline holds because answers are a pure
    function of (construction path, stream position) and both travel with
    the call.  Degrades to inline — bit-identically, thanks to the same
    state-based contract — with a ``RuntimeWarning`` when ``fork`` is
    unavailable, the server's mechanism cannot cross a process boundary
    (an unpicklable callable), or the pool breaks mid-flight.
    """

    name = "process"

    def __init__(self, workers: int | None = None):
        self._workers = workers

    def bind(self, server):
        if not fork_available():
            warnings.warn(
                "process execution backend needs the fork start method; "
                "executing inline",
                RuntimeWarning,
                stacklevel=2,
            )
            return _InlineBound()
        try:
            init = pickle.dumps(
                (server.mechanism, server.mechanism_params, server._data, server.seed)
            )
        except Exception as error:  # lambdas, closures, local classes
            warnings.warn(
                f"mechanism cannot cross a process boundary ({error!r}); "
                "executing inline",
                RuntimeWarning,
                stacklevel=2,
            )
            return _InlineBound()
        # Fork the shared pool now, before the server spawns or joins any
        # serving threads — forking a threaded parent risks inheriting
        # held locks.
        shared_fork_executor(self._workers)
        return _ProcessBound(next(_BIND_TOKENS), init, server.n, self._workers)


def resolve_execution_backend(
    execution: str | ExecutionBackend | None,
) -> ExecutionBackend:
    """Normalize an ``execution`` argument into a backend instance.

    ``None`` consults the ``REPRO_EXEC_BACKEND`` environment variable
    (default ``"inline"``) — which is how CI pins backend bit-identity by
    running the whole tier-1 suite under ``REPRO_EXEC_BACKEND=process``.
    """
    if isinstance(execution, ExecutionBackend):
        return execution
    if execution is None:
        execution = os.environ.get(EXEC_BACKEND_ENV, "inline") or "inline"
    if execution == "inline":
        return InlineExecutionBackend()
    if execution == "thread":
        return ThreadExecutionBackend()
    if execution == "process":
        return ProcessExecutionBackend()
    raise ValueError(
        f"unknown execution backend {execution!r}; known: {EXECUTION_BACKENDS}"
    )


# ---------------------------------------------------------------------------
# The pipeline driver
# ---------------------------------------------------------------------------


class ServePipeline:
    """The fixed stage list plus the drivers every server runs requests by.

    One pipeline per server; sessions on an admission-controlled front
    end layer their bucket/gate in via :meth:`with_admission` (stages are
    shared, only the admission slot differs).  Two drivers:

    * :meth:`serve_single` — the per-query hot path.  The cached-replay
      branch is *fused*: it calls the same stage units
      (``ComplianceStage.check`` -> ``CacheLookupStage.probe`` ->
      ``AuditAppendStage.append_hit``) as straight-line code, because at
      ~8 us/ask a generic stage loop is measurable overhead; the miss
      branch (dominated by the mechanism call) runs the staged sequence.
      ``submit``/``_staged_single`` is the unfused reference the tests
      hold it bit-identical to.
    * :meth:`serve_workload` — the batched path, fully staged.

    Both drivers settle the ``BudgetReserve`` stage's lease: committed
    after ``AuditAppend``, rolled back if any stage after the reserve
    raises — the pipeline never burns budget for answers never released.
    """

    def __init__(self, server: "QueryServer", bound: BoundExecution, dispatch):
        self._server = server
        self._admission: AdmissionControl | None = None
        self._compliance = ComplianceStage(server.auditor)
        self._cache_lookup = CacheLookupStage()
        self._budget = BudgetReserveStage()
        self._execute = ExecuteStage(bound)
        self._cache_put = CachePutStage()
        self._audit_append = AuditAppendStage(server.audit_log, dispatch)
        self._serving = (
            self._compliance,
            self._cache_lookup,
            self._budget,
            self._execute,
            self._cache_put,
            self._audit_append,
        )
        self._miss_stages = (
            self._budget,
            self._execute,
            self._cache_put,
            self._audit_append,
        )
        # Telemetry attaches at this one seam: the stage tuples get wrapped
        # (the raw stage attributes above stay raw, so identity-sensitive
        # consumers — execute_stage, audit_stage, the fused fast path —
        # keep the unwrapped units), and the disabled path pays exactly
        # one `is None` check per request.
        telemetry = getattr(server, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            self._telemetry = telemetry
            self._instrument(server)
        else:
            self._telemetry = None

    def _instrument(self, server: "QueryServer") -> None:
        """Wrap the stage tuples and pre-resolve every hot-path instrument."""
        telemetry = self._telemetry
        registry = telemetry.registry
        clock = telemetry.clock
        self._clock = clock
        mechanism = server.mechanism if isinstance(server.mechanism, str) else "custom"
        self._labels = {
            "shard": str(getattr(server, "shard_index", 0)),
            "mechanism": mechanism,
        }

        def stage_hist(stage_name: str):
            return registry.histogram(
                STAGE_SECONDS, stage=stage_name, **self._labels
            )

        wrapped = {
            stage.name: TelemetryStage(stage, stage_hist(stage.name), clock)
            for stage in self._serving
        }
        self._serving = tuple(wrapped[stage.name] for stage in self._serving)
        self._miss_stages = tuple(wrapped[stage.name] for stage in self._miss_stages)
        # The fused cached-replay branch is one histogram observation: per-
        # unit timing there would cost more than the work it measures.  The
        # batched path (and the miss stages) carry the per-stage split.
        self._hit_hist = stage_hist("cache_hit_fastpath")
        self._single_miss_hist = stage_hist("single_miss")
        self._admission_hist = stage_hist("admission")
        # Bound-method handles shave one attribute walk per request off the
        # fused branch, which operates on a single-digit-microsecond budget.
        self._hit_observe = self._hit_hist.observe
        self._single_miss_observe = self._single_miss_hist.observe
        # The fused hit path samples every _HIT_SAMPLE_MASK + 1-th hit (first
        # hit always included): a full histogram record costs a measurable
        # slice of the ~8 us hit itself, and the latency *distribution*
        # does not need every data point — while misses, dominated by the
        # >=50 us mechanism call, are always recorded.
        self._hit_tick = 0
        # Shadow the fused single-query path with its timed twin so the
        # untimed body never has to test for telemetry per request.
        self._single_locked = self._single_locked_instrumented
        # Pre-created at zero so the reject families are present in every
        # snapshot, not only after the first refusal.
        self._reject_counters = {
            reason: registry.counter(
                ADMISSION_REJECTS, reason=reason, shard=self._labels["shard"]
            )
            for reason in ("rate_limit", "overload", "other")
        }
        # analyst digest prefix -> caches contributing to its request count;
        # sampled at snapshot time from the hit/miss ints the caches already
        # maintain, so counting requests costs the hot path nothing.
        self._request_groups: dict[str, list] = {}

    def register_analyst(self, analyst: str, cache) -> None:
        """Expose one analyst's request counts (no-op with telemetry off).

        Requests are read off the analyst cache's ``hits + misses`` at
        snapshot time — every served query (single or workload row)
        performs exactly one cache consultation.  Analysts sharing a
        digest prefix sum into one series, so the counter stays monotone
        even across label collisions.
        """
        if self._telemetry is None:
            return
        prefix = analyst_digest_prefix(analyst)
        group = self._request_groups.get(prefix)
        if group is None:
            group = self._request_groups.setdefault(prefix, [])
            self._telemetry.registry.counter_fn(
                REQUESTS_TOTAL,
                lambda caches=group: float(
                    sum(c.hits + c.misses for c in caches)
                ),
                analyst=prefix,
                **self._labels,
            )
        group.append(cache)

    @property
    def stages(self) -> tuple:
        """The fixed stage sequence (admission first when configured)."""
        if self._admission is None:
            return self._serving
        return (self._admission, *self._serving)

    @property
    def execute_stage(self) -> ExecuteStage:
        return self._execute

    @property
    def audit_stage(self) -> AuditAppendStage:
        return self._audit_append

    def with_admission(self, admission: AdmissionControl) -> "ServePipeline":
        """A view of this pipeline with an admission stage in front.

        Serving stages are shared (same caches, same audit log, same
        backend binding); only the pre-lock admission slot differs, which
        is how per-session bucket/gate pairs ride one shard pipeline.
        """
        clone = object.__new__(ServePipeline)
        clone.__dict__.update(self.__dict__)
        if self._telemetry is not None:
            admission = TelemetryAdmission(
                admission, self._admission_hist, self._reject_counters, self._clock
            )
        clone._admission = admission
        return clone

    # -- single-query driver ------------------------------------------------

    def serve_single(self, state, analyst: str, query: SubsetQuery) -> float:
        admission = self._admission
        if admission is None:
            return self._single_locked(state, analyst, query)
        # Admission precedes everything, including validation: a rejected
        # request must cost nothing, and an admitted bad request still
        # consumed its token (the pre-refactor sharded ordering).
        admission.enter(analyst)
        try:
            return self._single_locked(state, analyst, query)
        finally:
            admission.exit(analyst)

    def _single_locked(self, state, analyst: str, query: SubsetQuery) -> float:
        # With telemetry enabled, ``_instrument`` shadows this method with
        # ``_single_locked_instrumented`` on the instance, so neither mode
        # pays a per-request dispatch branch here.
        server = self._server
        if query.n != server.n:
            raise ValueError(f"query addresses n={query.n}, data has n={server.n}")
        with state.lock:
            self._compliance.check(analyst)
            mask = query.mask
            fingerprint, packed, size, cached = self._cache_lookup.probe(state, mask)
            if cached is not None:
                # Fused replay fast path: same three stage units, no
                # exchange, no loop — the bit-for-bit pre-refactor ops.
                self._audit_append.append_hit(
                    analyst, fingerprint, mask, cached, packed, size
                )
                return cached
            x = Exchange(self._server, state, analyst, query=query)
            x.mask = mask
            x.fingerprint = fingerprint
            x.packed = packed
            x.size = size
            self._run_miss_single(x)
            return x.answer

    def _single_locked_instrumented(
        self, state, analyst: str, query: SubsetQuery
    ) -> float:
        """The same operations as :meth:`_single_locked`, timed.

        The cached-replay branch samples one histogram record
        (``stage="cache_hit_fastpath"``) on every ``_HIT_SAMPLE_MASK +
        1``-th hit, first hit always included, so the family is non-zero
        after a single replay.  A full record (clock read + bucket
        observe) costs ~10% of the ~8 us hit itself; sampling keeps the
        steady-state telemetry tax to one clock read and a counter bump
        per hit, well inside the bench guard band, while the recorded
        distribution stays representative.  The miss branch records
        whole-request latency (``stage="single_miss"``) on every miss and
        lets the wrapped miss stages time themselves; its pre-mechanism
        compliance/lookup work is sub-microsecond against a >=50 us
        mechanism call, so it carries no per-unit split here — the
        batched path provides that.  Operation order is identical to the
        uninstrumented body, so answers, charges, and audit records stay
        bit-identical.
        """
        server = self._server
        if query.n != server.n:
            raise ValueError(f"query addresses n={query.n}, data has n={server.n}")
        clock = self._clock
        with state.lock:
            start = clock()
            self._compliance.check(analyst)
            mask = query.mask
            fingerprint, packed, size, cached = self._cache_lookup.probe(state, mask)
            if cached is not None:
                self._audit_append.append_hit(
                    analyst, fingerprint, mask, cached, packed, size
                )
                tick = self._hit_tick + 1
                self._hit_tick = tick
                if (tick & _HIT_SAMPLE_MASK) == 1:
                    self._hit_observe(clock() - start)
                return cached
            x = Exchange(server, state, analyst, query=query)
            x.mask = mask
            x.fingerprint = fingerprint
            x.packed = packed
            x.size = size
            self._run_miss_single(x)
            self._single_miss_observe(clock() - start)
            return x.answer

    def _run_miss_single(self, x: Exchange) -> None:
        try:
            for stage in self._miss_stages:
                stage.single(x)
        except BaseException:
            lease = x.lease
            if lease is not None and not lease.settled:
                lease.rollback()
            raise
        if x.lease is not None:
            x.lease.commit()

    # -- workload driver ----------------------------------------------------

    def serve_workload(
        self, state, analyst: str, workload: Workload | Sequence[SubsetQuery]
    ) -> np.ndarray:
        admission = self._admission
        if admission is None:
            return self._workload_locked(state, analyst, workload).answers
        admission.enter(analyst)
        try:
            return self._workload_locked(state, analyst, workload).answers
        finally:
            admission.exit(analyst)

    def _workload_locked(self, state, analyst: str, workload) -> Exchange:
        workload = Workload.coerce(workload)
        server = self._server
        if workload.n != server.n:
            raise ValueError(
                f"workload addresses n={workload.n}, data has n={server.n}"
            )
        x = Exchange(server, state, analyst, workload=workload)
        with state.lock:
            try:
                for stage in self._serving:
                    stage.batch(x)
            except BaseException:
                lease = x.lease
                if lease is not None and not lease.settled:
                    lease.rollback()
                raise
            if x.lease is not None:
                x.lease.commit()
            return x

    # -- typed boundary -----------------------------------------------------

    def submit(self, request: Request) -> Outcome:
        """Drive one :class:`Request` through the full staged sequence.

        The entry point for out-of-process front ends (and the unfused
        reference path the hot-path fusion is tested against).  Resolves
        the analyst's serving state through the server registry, so a
        first request performs registration (including the compliance
        gate) exactly like ``QueryServer.session`` does.
        """
        state = self._server._state(request.analyst)
        if request.single:
            x = self._staged_single(state, request.analyst, request.query)
            if x.done:
                return Outcome(
                    analyst=request.analyst,
                    answer=x.cached_answer,
                    answers=None,
                    cached=True,
                    synthetic=False,
                    fresh_queries=0,
                    epsilon_charged=0.0,
                )
            return Outcome(
                analyst=request.analyst,
                answer=x.answer,
                answers=None,
                cached=False,
                synthetic=x.synthetic,
                fresh_queries=1,
                epsilon_charged=0.0 if x.synthetic else x.epsilon,
            )
        admission = self._admission
        if admission is not None:
            admission.enter(request.analyst)
        try:
            x = self._workload_locked(state, request.analyst, request.workload)
        finally:
            if admission is not None:
                admission.exit(request.analyst)
        fresh = len(x.miss_rows)
        return Outcome(
            analyst=request.analyst,
            answer=None,
            answers=tuple(float(a) for a in x.answers),
            cached=fresh == 0,
            synthetic=x.synthetic,
            fresh_queries=fresh,
            epsilon_charged=0.0 if x.synthetic else fresh * x.epsilon,
        )

    def _staged_single(self, state, analyst: str, query: SubsetQuery) -> Exchange:
        server = self._server
        admission = self._admission
        if admission is not None:
            admission.enter(analyst)
        try:
            if query.n != server.n:
                raise ValueError(
                    f"query addresses n={query.n}, data has n={server.n}"
                )
            x = Exchange(server, state, analyst, query=query)
            with state.lock:
                self._compliance.single(x)
                self._cache_lookup.single(x)
                if x.done:
                    self._audit_append.single(x)
                else:
                    self._run_miss_single(x)
        finally:
            if admission is not None:
                admission.exit(analyst)
        return x

    def __repr__(self) -> str:
        names = " -> ".join(stage.name for stage in self.stages)
        return f"ServePipeline({names})"
