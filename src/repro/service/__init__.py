"""Interactive statistical-query service with privacy accounting.

The deployment layer the paper's story presumes: Dinur-Nissim style
reconstruction was demonstrated against a *production* query server
("Linear Program Reconstruction in Practice", [13]), and the legal-theorem
layer only bites once a mechanism sits behind an interface.  This
subpackage is that interface, in-process:

* :mod:`repro.service.server` — :class:`QueryServer`, multi-analyst
  sessions routing queries and workloads to a configured mechanism;
* :mod:`repro.privacy.accounting` — pluggable per-analyst/global epsilon
  ledgers (basic and advanced composition) with all-or-nothing charges and
  typed :class:`BudgetExhausted` refusals (``repro.service.accountant`` is
  a deprecated re-export shim);
* :mod:`repro.service.cache` — canonical query fingerprints and the answer
  cache that makes repeated queries free and bit-identical (consistency),
  plus the striped LRU cache concurrent sessions share;
* :mod:`repro.service.sharded` — :class:`ShardedQueryServer`, the
  hash-partitioned front end with leased global budgets, per-shard striped
  caches, and token-bucket admission control (typed :class:`Rejected`);
* :mod:`repro.service.audit` — the append-only audit log and the online
  :class:`ReconstructionAuditor` that replays logged transcripts through
  LP decoding and trips a per-analyst circuit breaker.

Experiment E18 and ``benchmarks/bench_service_throughput.py`` exercise the
whole stack end to end.
"""

from repro.privacy.accounting import (
    AdvancedAccountant,
    BasicAccountant,
    BudgetExhausted,
    ServiceAccountant,
    ShardedAccountant,
    stable_shard,
)
from repro.service.audit import (
    AuditLog,
    AuditRecord,
    AuditReport,
    CertificateRecord,
    CircuitBreakerTripped,
    DenialRecord,
    ReconstructionAuditor,
    ReleaseRecord,
)
from repro.service.cache import (
    AnalystCacheView,
    AnswerCache,
    StripedAnswerCache,
    query_fingerprint,
    workload_fingerprints,
)
from repro.service.server import (
    MECHANISM_FACTORIES,
    AnalystSession,
    QueryServer,
    SyntheticFallback,
    make_answerer,
    per_query_epsilon,
)
from repro.service.sharded import (
    RateLimit,
    Rejected,
    ShardedAnalystSession,
    ShardedQueryServer,
)

__all__ = [
    "AdvancedAccountant",
    "AnalystCacheView",
    "AnalystSession",
    "AnswerCache",
    "AuditLog",
    "AuditRecord",
    "AuditReport",
    "BasicAccountant",
    "BudgetExhausted",
    "CertificateRecord",
    "CircuitBreakerTripped",
    "DenialRecord",
    "MECHANISM_FACTORIES",
    "QueryServer",
    "RateLimit",
    "ReconstructionAuditor",
    "Rejected",
    "ReleaseRecord",
    "ServiceAccountant",
    "ShardedAccountant",
    "ShardedAnalystSession",
    "ShardedQueryServer",
    "StripedAnswerCache",
    "SyntheticFallback",
    "make_answerer",
    "per_query_epsilon",
    "query_fingerprint",
    "stable_shard",
    "workload_fingerprints",
]
