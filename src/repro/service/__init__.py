"""Interactive statistical-query service with privacy accounting.

The deployment layer the paper's story presumes: Dinur-Nissim style
reconstruction was demonstrated against a *production* query server
("Linear Program Reconstruction in Practice", [13]), and the legal-theorem
layer only bites once a mechanism sits behind an interface.  This
subpackage is that interface, in-process:

* :mod:`repro.service.pipeline` — the staged serve path every server
  drives requests through (Admission -> Compliance -> CacheLookup ->
  BudgetReserve -> Execute -> CachePut -> AuditAppend), with pluggable
  :class:`ExecutionBackend` (inline / thread / process) for the Execute
  stage;
* :mod:`repro.service.server` — :class:`QueryServer`, multi-analyst
  sessions routing queries and workloads to a configured mechanism;
* :mod:`repro.privacy.accounting` — pluggable per-analyst/global epsilon
  ledgers (basic and advanced composition) with all-or-nothing charges,
  typed :class:`BudgetExhausted` refusals, and the
  :class:`~repro.privacy.accounting.BudgetLease` reserve/rollback contract
  the BudgetReserve stage holds;
* :mod:`repro.service.cache` — canonical query fingerprints and the answer
  cache that makes repeated queries free and bit-identical (consistency),
  plus the striped LRU cache concurrent sessions share;
* :mod:`repro.service.sharded` — :class:`ShardedQueryServer`, the
  hash-partitioned front end with leased global budgets, per-shard striped
  caches, and token-bucket admission control (typed :class:`Rejected`);
* :mod:`repro.service.audit` — the append-only audit log and the online
  :class:`ReconstructionAuditor` that replays logged transcripts through
  LP decoding and trips a per-analyst circuit breaker;
* :mod:`repro.service.audit_worker` — audit dispatch: run auditor passes
  inline (default) or on background workers tailing the log per analyst
  shard (:class:`AuditWorkerPool`).

Experiment E18 and ``benchmarks/bench_service_throughput.py`` exercise the
whole stack end to end.
"""

from repro.privacy.accounting import (
    AdvancedAccountant,
    BasicAccountant,
    BudgetExhausted,
    BudgetLease,
    ServiceAccountant,
    ShardedAccountant,
    stable_shard,
)
from repro.service.audit import (
    AuditLog,
    AuditRecord,
    AuditReport,
    CertificateRecord,
    CircuitBreakerTripped,
    DenialRecord,
    ReconstructionAuditor,
    ReleaseRecord,
)
from repro.service.audit_worker import (
    AuditDispatch,
    AuditWorkerPool,
    InlineAuditDispatch,
    NullAuditDispatch,
    resolve_audit_dispatch,
)
from repro.service.cache import (
    AnalystCacheView,
    AnswerCache,
    StripedAnswerCache,
    query_fingerprint,
    workload_fingerprints,
)
from repro.service.pipeline import (
    EXECUTION_BACKENDS,
    AdmissionControl,
    ExecutionBackend,
    InlineExecutionBackend,
    Outcome,
    ProcessExecutionBackend,
    Request,
    ServePipeline,
    ThreadExecutionBackend,
    resolve_execution_backend,
)
from repro.service.server import (
    MECHANISM_FACTORIES,
    AnalystSession,
    QueryServer,
    SyntheticFallback,
    make_answerer,
    per_query_epsilon,
)
from repro.service.sharded import (
    RateLimit,
    Rejected,
    ShardedAnalystSession,
    ShardedQueryServer,
)

__all__ = [
    "AdmissionControl",
    "AdvancedAccountant",
    "AnalystCacheView",
    "AnalystSession",
    "AnswerCache",
    "AuditDispatch",
    "AuditLog",
    "AuditRecord",
    "AuditReport",
    "AuditWorkerPool",
    "BasicAccountant",
    "BudgetExhausted",
    "BudgetLease",
    "CertificateRecord",
    "CircuitBreakerTripped",
    "DenialRecord",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "InlineAuditDispatch",
    "InlineExecutionBackend",
    "MECHANISM_FACTORIES",
    "NullAuditDispatch",
    "Outcome",
    "ProcessExecutionBackend",
    "QueryServer",
    "RateLimit",
    "ReconstructionAuditor",
    "Rejected",
    "ReleaseRecord",
    "Request",
    "ServePipeline",
    "ServiceAccountant",
    "ShardedAccountant",
    "ShardedAnalystSession",
    "ShardedQueryServer",
    "StripedAnswerCache",
    "SyntheticFallback",
    "ThreadExecutionBackend",
    "make_answerer",
    "per_query_epsilon",
    "query_fingerprint",
    "resolve_audit_dispatch",
    "resolve_execution_backend",
    "stable_shard",
    "workload_fingerprints",
]
