"""Privacy accounting for the query service.

The service-side accountant enforces the paper's "fundamental law" budget
in deployment terms: every analyst session carries an epsilon ledger, the
server as a whole carries another, and a query (or whole workload) that
would push either past its budget is refused *before any answer is
computed*.  Charges are all-or-nothing — a refused workload consumes
nothing — matching the semantics of
:class:`~repro.queries.mechanism.BudgetedAnswerer` at the mechanism layer.

Two composition rules are provided, built on
:mod:`repro.dp.composition`:

* :class:`BasicAccountant` — epsilons add (basic composition), the
  conservative ledger;
* :class:`AdvancedAccountant` — homogeneous per-epsilon groups compose via
  the sqrt(k) advanced-composition bound, the ledger that makes
  high-query-count sessions feasible at all.

Both also support a plain query-count budget (``max_queries_per_analyst``),
which is the only meaningful limit for non-DP mechanisms (exact, rounding,
subsampling) whose per-query epsilon is not finite.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import defaultdict

from repro.dp.composition import advanced_composition


class BudgetExhausted(RuntimeError):
    """A charge was refused: answering would exceed a privacy budget.

    Attributes:
        analyst: the session whose charge was refused.
        scope: ``"analyst"``, ``"global"``, or ``"queries"`` — which budget
            would have been exceeded.
        requested: the epsilon (or query count, for ``"queries"``) asked for.
        budget: the limit that would have been crossed.
        spent: the ledger total before the refused charge.
    """

    def __init__(
        self,
        message: str,
        *,
        analyst: str,
        scope: str,
        requested: float,
        budget: float,
        spent: float,
    ):
        super().__init__(message)
        self.analyst = analyst
        self.scope = scope
        self.requested = requested
        self.budget = budget
        self.spent = spent


class ServiceAccountant(ABC):
    """Per-analyst and global epsilon ledgers with all-or-nothing charges.

    Subclasses supply the composition rule through :meth:`composed_epsilon`;
    the ledger machinery (charging, refusal, thread-safety) lives here.  The
    global ledger composes *basically* across analysts — the private data
    answers all of them, so their losses add — while each analyst's own
    ledger composes by the subclass rule.
    """

    def __init__(
        self,
        per_analyst_epsilon: float | None = None,
        global_epsilon: float | None = None,
        max_queries_per_analyst: int | None = None,
    ):
        if per_analyst_epsilon is not None and per_analyst_epsilon <= 0:
            raise ValueError("per_analyst_epsilon must be positive when set")
        if global_epsilon is not None and global_epsilon <= 0:
            raise ValueError("global_epsilon must be positive when set")
        if max_queries_per_analyst is not None and max_queries_per_analyst <= 0:
            raise ValueError("max_queries_per_analyst must be positive when set")
        self.per_analyst_epsilon = per_analyst_epsilon
        self.global_epsilon = global_epsilon
        self.max_queries_per_analyst = max_queries_per_analyst
        # analyst -> {epsilon_per_query: count}; counts-by-epsilon is all any
        # supported composition rule needs, and it stays O(#distinct eps).
        self._spends: dict[str, dict[float, int]] = defaultdict(dict)
        self._lock = threading.Lock()

    @abstractmethod
    def composed_epsilon(self, spends: dict[float, int]) -> float:
        """Total epsilon of ``{epsilon: count}`` under this rule."""

    def analyst_queries(self, analyst: str) -> int:
        """Queries charged to ``analyst`` so far."""
        with self._lock:
            return sum(self._spends[analyst].values())

    def analyst_epsilon(self, analyst: str) -> float:
        """``analyst``'s composed epsilon so far."""
        with self._lock:
            return self.composed_epsilon(self._spends[analyst])

    def global_spent(self) -> float:
        """Composed epsilon across all analysts (basic across sessions)."""
        with self._lock:
            return sum(self.composed_epsilon(s) for s in self._spends.values())

    def remaining_epsilon(self, analyst: str) -> float | None:
        """Unspent per-analyst epsilon, or ``None`` for an unlimited ledger."""
        if self.per_analyst_epsilon is None:
            return None
        return self.per_analyst_epsilon - self.analyst_epsilon(analyst)

    def charge(self, analyst: str, count: int, epsilon_per_query: float) -> None:
        """Atomically charge ``count`` queries at ``epsilon_per_query`` each.

        All-or-nothing: if any budget (query count, per-analyst epsilon,
        global epsilon) would be exceeded, raises :class:`BudgetExhausted`
        and records nothing.  ``epsilon_per_query`` may be 0 for non-DP
        mechanisms, in which case only the query-count budget can refuse.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if epsilon_per_query < 0:
            raise ValueError("epsilon_per_query must be non-negative")
        if count == 0:
            return
        with self._lock:
            spends = self._spends[analyst]
            queries = sum(spends.values())
            if (
                self.max_queries_per_analyst is not None
                and queries + count > self.max_queries_per_analyst
            ):
                raise BudgetExhausted(
                    f"analyst {analyst!r}: {count} more queries would exceed the "
                    f"query budget of {self.max_queries_per_analyst} "
                    f"({queries} already answered)",
                    analyst=analyst,
                    scope="queries",
                    requested=count,
                    budget=self.max_queries_per_analyst,
                    spent=queries,
                )
            candidate = dict(spends)
            candidate[epsilon_per_query] = candidate.get(epsilon_per_query, 0) + count
            before = self.composed_epsilon(spends)
            after = self.composed_epsilon(candidate)
            if (
                self.per_analyst_epsilon is not None
                and after > self.per_analyst_epsilon + 1e-12
            ):
                raise BudgetExhausted(
                    f"analyst {analyst!r}: charging {count} x eps="
                    f"{epsilon_per_query} would total {after:.4f} > "
                    f"budget {self.per_analyst_epsilon}",
                    analyst=analyst,
                    scope="analyst",
                    requested=after - before,
                    budget=self.per_analyst_epsilon,
                    spent=before,
                )
            if self.global_epsilon is not None:
                others = sum(
                    self.composed_epsilon(s)
                    for name, s in self._spends.items()
                    if name != analyst
                )
                if others + after > self.global_epsilon + 1e-12:
                    raise BudgetExhausted(
                        f"global budget: charging analyst {analyst!r} {count} x "
                        f"eps={epsilon_per_query} would total "
                        f"{others + after:.4f} > budget {self.global_epsilon}",
                        analyst=analyst,
                        scope="global",
                        requested=after - before,
                        budget=self.global_epsilon,
                        spent=others + before,
                    )
            self._spends[analyst] = candidate

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(global_spent={self.global_spent():.4f}, "
            f"per_analyst_budget={self.per_analyst_epsilon}, "
            f"global_budget={self.global_epsilon})"
        )


class BasicAccountant(ServiceAccountant):
    """Basic composition: epsilons add, the worst-case-safe ledger."""

    def composed_epsilon(self, spends: dict[float, int]) -> float:
        return float(sum(eps * count for eps, count in spends.items()))


class AdvancedAccountant(ServiceAccountant):
    """Advanced composition: each homogeneous epsilon group pays the
    ``sqrt(2 k ln(1/delta')) * eps + k eps (e^eps - 1)`` bound of
    :func:`repro.dp.composition.advanced_composition`, and groups with
    distinct epsilons add (basic across groups).  Each group carries the
    configured ``delta_prime``; the resulting delta is reported, not
    budgeted — the reproduction's budgets are epsilon-denominated.
    """

    def __init__(
        self,
        per_analyst_epsilon: float | None = None,
        global_epsilon: float | None = None,
        max_queries_per_analyst: int | None = None,
        delta_prime: float = 1e-6,
    ):
        super().__init__(per_analyst_epsilon, global_epsilon, max_queries_per_analyst)
        if not 0 < delta_prime < 1:
            raise ValueError("delta_prime must lie in (0, 1)")
        self.delta_prime = float(delta_prime)

    def composed_epsilon(self, spends: dict[float, int]) -> float:
        total = 0.0
        for eps, count in spends.items():
            if eps == 0.0 or count == 0:
                continue
            # Advanced composition only helps for k > 1; a single spend is
            # exactly eps, and the bound would be looser.
            if count == 1:
                total += eps
            else:
                advanced, _delta = advanced_composition(eps, count, self.delta_prime)
                total += min(advanced, eps * count)
        return float(total)
