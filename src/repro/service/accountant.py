"""Privacy accounting for the query service (re-export shim).

The service accountants moved to :mod:`repro.privacy.accounting` in PR 4:
:class:`~repro.privacy.accounting.ServiceAccountant` is now a multi-analyst
extension of the same :class:`~repro.privacy.accounting.PrivacyAccountant`
that ``repro.dp`` exposes — shared :class:`PrivacySpend`, shared
basic/advanced composition math, shared all-or-nothing reserve/rollback.
This module remains so that ``from repro.service.accountant import
BudgetExhausted`` (and the accountant classes) keeps working, but importing
it emits a :class:`DeprecationWarning` — import from
:mod:`repro.privacy.accounting` instead.
"""

import warnings

warnings.warn(
    "repro.service.accountant is deprecated; import the accountants from "
    "repro.privacy.accounting instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.privacy.accounting import (  # noqa: E402
    AdvancedAccountant,
    BasicAccountant,
    BudgetExhausted,
    ServiceAccountant,
)

__all__ = [
    "AdvancedAccountant",
    "BasicAccountant",
    "BudgetExhausted",
    "ServiceAccountant",
]
