"""The in-process statistical-query server.

:class:`QueryServer` is the deployment-shaped front end the paper's story
needs: analysts open named sessions and ask subset-count queries (one at a
time or as packed :class:`~repro.queries.workload.Workload` batches); the
server routes them through a configured answering mechanism, charges a
pluggable privacy accountant *before* computing anything, serves repeated
queries from a per-analyst answer cache for free, appends every release to
the audit log, and lets the online reconstruction auditor trip a
per-analyst circuit breaker.

The request path is the fixed stage sequence of
:class:`repro.service.pipeline.ServePipeline` (each stage can refuse
without side effects from the later ones)::

    session.ask(q) ──► Admission ──► Compliance ──► CacheLookup
                       ──► BudgetReserve ──► Execute ──► CachePut
                       ──► AuditAppend ──► audit dispatch (inline/background)

``QueryServer`` itself is a thin driver over that stage list: it owns the
cross-request state (accountant, audit log, analyst registry, synthetic
fallback) and delegates serving to its pipeline.  The ``execution``
argument picks where the ``Execute`` stage runs mechanism calls
(inline / thread / process; see :mod:`repro.service.pipeline`), and
``audit_dispatch`` picks whether reconstruction-audit passes run on the
serving thread or on background workers
(:mod:`repro.service.audit_worker`).  Both are bit-identical to the
defaults by construction and by test.

When a :class:`~repro.compliance.gate.ComplianceGate` is configured, one
step precedes all of the above — at session *registration* (not per
query), the analyst's mechanism spec must hold a valid compliance
certificate on the gate, and the synthetic-fallback release must hold one
before it activates; refusals raise the typed
:class:`~repro.compliance.gate.ComplianceDenied` and leave no budget,
cache, or answer footprint.

Concurrency model: every analyst owns an answerer instance (same private
data, its own ``derive_rng(seed, "service", analyst)`` noise stream) and an
answer cache, and requests serialize per analyst.  Cross-analyst state (the
accountant, the audit log, the auditor) carries its own locks.  The result
is that a fixed server seed gives every analyst a bit-identical answer
stream regardless of how concurrent sessions interleave — determinism is
per session, which is the only kind an interactive service can promise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.compliance.gate import ComplianceDenied, ComplianceGate
from repro.privacy.accounting import BasicAccountant, ServiceAccountant
from repro.privacy.kernels import MechanismSpec
from repro.queries.mechanism import (
    BoundedNoiseAnswerer,
    ExactAnswerer,
    GaussianAnswerer,
    LaplaceAnswerer,
    QueryAnswerer,
    RoundingAnswerer,
    SubsamplingAnswerer,
)
from repro.queries.query import SubsetQuery, _validate_binary
from repro.queries.workload import Workload
from repro.service.audit import AuditLog, ReconstructionAuditor
from repro.service.audit_worker import AuditDispatch, resolve_audit_dispatch
from repro.service.cache import AnalystCacheView, AnswerCache
from repro.service.pipeline import (
    ExecutionBackend,
    ServePipeline,
    resolve_execution_backend,
)
from repro.synth.binary import BinaryRelease, synthesize_binary
from repro.telemetry import NullTelemetry, Telemetry, resolve_telemetry
from repro.utils.rng import RngSeed, derive_rng

#: Mechanism spec -> factory(data, rng, **params).  "subsample" is the
#: subsample-and-aggregate style answerer; "exact" is the blatantly
#: non-private baseline the reconstruction experiments attack.
MECHANISM_FACTORIES: dict[str, Callable[..., QueryAnswerer]] = {
    "exact": lambda data, rng, **p: ExactAnswerer(data),
    "laplace": lambda data, rng, **p: LaplaceAnswerer(
        data, epsilon_per_query=p.get("epsilon_per_query", 0.5), rng=rng
    ),
    "gaussian": lambda data, rng, **p: GaussianAnswerer(
        data,
        epsilon_per_query=p.get("epsilon_per_query", 0.5),
        delta_per_query=p.get("delta_per_query", 1e-6),
        rng=rng,
    ),
    "subsample": lambda data, rng, **p: SubsamplingAnswerer(
        data, rate=p.get("rate", 0.5), rng=rng
    ),
    "bounded": lambda data, rng, **p: BoundedNoiseAnswerer(
        data,
        alpha=p.get("alpha", 1.0),
        shape=p.get("shape", "uniform"),
        rng=rng,
    ),
    "rounding": lambda data, rng, **p: RoundingAnswerer(data, step=p.get("step", 2)),
}


def make_answerer(
    mechanism: str | Callable[..., QueryAnswerer],
    data: np.ndarray,
    rng: RngSeed = None,
    **params,
) -> QueryAnswerer:
    """Build an answerer from a spec string or a ``(data, rng)`` callable."""
    if callable(mechanism):
        return mechanism(data, rng, **params)
    try:
        factory = MECHANISM_FACTORIES[mechanism]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {mechanism!r}; known: {sorted(MECHANISM_FACTORIES)}"
        ) from None
    return factory(data, rng, **params)


def per_query_epsilon(answerer: QueryAnswerer) -> float:
    """The epsilon one answer costs, read off the answerer's mechanism spec.

    Non-DP mechanisms (exact, rounding, subsampling, bounded noise) declare
    a zero spend — no finite epsilon describes them, so the accountant can
    only bound them by query count (``max_queries_per_analyst``).  Answerers
    without a spec (third-party duck types) fall back to their
    ``epsilon_per_query`` attribute, else 0.
    """
    spec = getattr(answerer, "spec", None)
    if spec is not None:
        return float(spec.spend.epsilon)
    return float(getattr(answerer, "epsilon_per_query", 0.0))


@dataclass(frozen=True)
class SyntheticFallback:
    """Configuration of the server's synthetic-fallback mode.

    When enabled, the first analyst to exhaust their interactive budget
    triggers one MWEM release of the private vector
    (:func:`repro.synth.binary.synthesize_binary`), billed to the
    ``account`` pseudo-analyst at ``epsilon``.  From then on, budget-refused
    queries are answered *exactly on the synthetic vector* — deterministic
    post-processing of the one pre-paid release, at zero further epsilon —
    instead of failing with :class:`~repro.privacy.accounting.
    BudgetExhausted`.  The release's :class:`~repro.privacy.kernels.
    MechanismSpec` is recorded in the audit log
    (:meth:`~repro.service.audit.AuditLog.note_release`) and every fallback
    answer is logged with ``source="synthetic"``.

    Attributes:
        epsilon: one-time budget of the synthetic release.
        rounds: MWEM rounds for the fit.
        num_queries: size of the random fitting workload (default ``4 n``).
        density: per-position inclusion probability of the fitting workload.
        account: pseudo-analyst the release's charge is booked under.
    """

    epsilon: float = 1.0
    rounds: int = 10
    num_queries: int | None = None
    density: float = 0.5
    account: str = "synthetic-release"

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if self.num_queries is not None and self.num_queries <= 0:
            raise ValueError(
                f"num_queries must be positive when set, got {self.num_queries}"
            )
        if not 0.0 < self.density < 1.0:
            raise ValueError(f"density must lie in (0, 1), got {self.density}")


class _FallbackHolder:
    """Shared once-only slot for the synthetic-fallback release.

    Lives outside :class:`QueryServer` so a sharded front end can hand the
    *same* holder to every shard: whichever shard first needs the fallback
    synthesizes (and pays for) it exactly once, and every other shard serves
    from the same release.
    """

    __slots__ = ("lock", "release")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.release: BinaryRelease | None = None


@dataclass
class _AnalystState:
    """Per-analyst serving state: answerer, spec, cache, serialization lock.

    The stored :class:`MechanismSpec` is the *auditable identity* of this
    analyst's mechanism: the epsilon the accountant charges per fresh query
    is ``spec.spend.epsilon``, the same object a DP verifier would test.
    """

    answerer: QueryAnswerer
    cache: AnswerCache | AnalystCacheView
    lock: threading.Lock
    epsilon_per_query: float
    spec: MechanismSpec | None = None


class AnalystSession:
    """One analyst's handle on the server; thin, cheap, reusable.

    The session resolves its :class:`_AnalystState` once at construction,
    so per-request serving never touches the server's analyst registry (and
    its lock) again — the hot path is registry-free.
    """

    def __init__(self, server: "QueryServer", analyst: str):
        self._server = server
        self.analyst = analyst
        self._state = server._state(analyst)

    def ask(self, query: SubsetQuery) -> float:
        """Answer one query (cache-first, budget-charged, logged)."""
        return self._server._serve(self._state, self.analyst, query)

    def ask_workload(self, workload: Workload | Sequence[SubsetQuery]) -> np.ndarray:
        """Answer a whole workload in one batched pass."""
        return self._server._serve_workload(self._state, self.analyst, workload)

    @property
    def epsilon_spent(self) -> float:
        """This analyst's composed epsilon so far."""
        return self._server.accountant.analyst_epsilon(self.analyst)

    @property
    def queries_charged(self) -> int:
        """Fresh (non-cached) queries charged to this analyst."""
        return self._server.accountant.analyst_queries(self.analyst)

    @property
    def spec(self) -> MechanismSpec | None:
        """The :class:`MechanismSpec` this analyst's answers come from."""
        return self._server.mechanism_spec(self.analyst)

    @property
    def cache(self) -> AnswerCache | AnalystCacheView:
        """This analyst's answer cache (hit statistics live here)."""
        return self._state.cache


class QueryServer:
    """Multi-analyst statistical-query service over one private dataset.

    Args:
        data: the private binary dataset, validated once here.
        mechanism: a spec from :data:`MECHANISM_FACTORIES` or a callable
            ``(data, rng, **params) -> QueryAnswerer``.
        mechanism_params: forwarded to the mechanism factory.
        accountant: the privacy ledger; defaults to an unlimited
            :class:`~repro.privacy.accounting.BasicAccountant`.
        auditor: an optional :class:`ReconstructionAuditor`; when set, every
            served request may trigger a replay pass and a tripped analyst
            is refused with ``CircuitBreakerTripped``.
        cache_entries: per-analyst cache capacity (``None`` = unbounded).
        seed: master seed; analyst noise streams derive from it by name.
        synthetic_fallback: ``True`` or a :class:`SyntheticFallback` config
            to answer budget-exhausted analysts from one pre-paid synthetic
            release instead of refusing them.
        compliance: an optional :class:`~repro.compliance.gate.
            ComplianceGate`.  When set, registering an analyst's mechanism
            spec and activating the synthetic-fallback release each require
            a valid approval on the gate; refusals raise the typed
            :class:`~repro.compliance.gate.ComplianceDenied` with zero
            budget/cache/answer footprint, and both approvals and denials
            are noted in the audit log.  The check runs at registration
            and activation only — never on the per-query hot path.
        execution: where the Execute stage runs mechanism calls — an
            :class:`~repro.service.pipeline.ExecutionBackend` instance or
            one of ``"inline"``/``"thread"``/``"process"``; ``None``
            (default) consults the ``REPRO_EXEC_BACKEND`` environment
            variable, falling back to inline.  Bit-identical across
            backends for a fixed seed.
        audit_dispatch: how reconstruction-audit passes run — an
            :class:`~repro.service.audit_worker.AuditDispatch` instance,
            ``"inline"`` (default: passes run on the serving thread, the
            pre-refactor behavior), or ``"background"`` (a
            :class:`~repro.service.audit_worker.AuditWorkerPool` tails
            the audit log off the hot path).  Ignored without an auditor.
        telemetry: observability — a :class:`~repro.telemetry.Telemetry`
            instance (isolated registry), ``True``/``False``, or ``None``
            (default) to consult ``REPRO_TELEMETRY``.  When enabled, the
            pipeline records per-stage latency histograms, per-analyst
            request counts, and admission rejects, and shared components
            (accountant, gate, audit workers) bind their own gauges.
            Answers are bit-identical with telemetry on or off.
        shard_index: the ``shard`` label this server's metrics carry (a
            sharded front end numbers its shards; standalone servers are
            shard 0).
    """

    def __init__(
        self,
        data: np.ndarray,
        mechanism: str | Callable[..., QueryAnswerer] = "laplace",
        mechanism_params: dict | None = None,
        accountant: ServiceAccountant | None = None,
        auditor: ReconstructionAuditor | None = None,
        cache_entries: int | None = None,
        seed: int = 0,
        synthetic_fallback: SyntheticFallback | bool | None = None,
        compliance: ComplianceGate | None = None,
        execution: str | ExecutionBackend | None = None,
        audit_dispatch: str | AuditDispatch | None = None,
        telemetry: Telemetry | NullTelemetry | bool | None = None,
        shard_index: int = 0,
    ):
        array = np.asarray(data)
        self._data = _validate_binary(array, array.size)
        self.mechanism = mechanism
        self.mechanism_params = dict(mechanism_params or {})
        self.accountant = accountant if accountant is not None else BasicAccountant()
        self.auditor = auditor
        self.audit_log = AuditLog()
        self.cache_entries = cache_entries
        self.seed = seed
        if synthetic_fallback is True:
            synthetic_fallback = SyntheticFallback()
        elif synthetic_fallback is False:
            synthetic_fallback = None
        self.synthetic_fallback: SyntheticFallback | None = synthetic_fallback
        self.compliance = compliance
        self._fallback_holder = _FallbackHolder()
        # Optional analyst -> cache override; a sharded front end points this
        # at views onto one shared striped per-shard cache.
        self._cache_factory: Callable[[str], AnswerCache | AnalystCacheView] | None = None
        self._states: dict[str, _AnalystState] = {}
        self._states_lock = threading.Lock()
        self.telemetry = resolve_telemetry(telemetry)
        self.shard_index = int(shard_index)
        self.execution = resolve_execution_backend(execution)
        self.audit_dispatch = resolve_audit_dispatch(audit_dispatch, self.auditor)
        if self.telemetry.enabled:
            # Shared components (the sharded accountant, the gate, a
            # background audit pool) bind once — binds are idempotent, so
            # every shard of a front end calling in is harmless.
            for component in (self.accountant, self.compliance, self.audit_dispatch):
                bind = getattr(component, "bind_telemetry", None)
                if bind is not None:
                    bind(self.telemetry)
        self._pipeline = ServePipeline(
            self, self.execution.bind(self), self.audit_dispatch
        )

    @property
    def n(self) -> int:
        """Size of the private dataset."""
        return int(self._data.size)

    @property
    def analysts(self) -> tuple[str, ...]:
        """Analysts with open sessions, in creation order."""
        with self._states_lock:
            return tuple(self._states)

    def session(self, analyst: str) -> AnalystSession:
        """Open (or re-enter) the named analyst's session."""
        self._state(analyst)
        return AnalystSession(self, analyst)

    def mechanism_spec(self, analyst: str) -> MechanismSpec | None:
        """The named analyst's :class:`MechanismSpec` (None for duck-typed
        answerers that declare no spec)."""
        return self._state(analyst).spec

    @property
    def fallback_release(self) -> BinaryRelease | None:
        """The synthetic release, if it has been synthesized yet."""
        holder = self._fallback_holder
        with holder.lock:
            return holder.release

    def _fallback(self) -> BinaryRelease:
        """The pre-paid synthetic release, synthesized once on first need.

        The one-time charge is booked under the configured pseudo-analyst
        *before* sampling (raising :class:`BudgetExhausted` if even that is
        refused), the noise stream derives from the server seed — so the
        release, and every answer computed on it, is bit-deterministic for
        a fixed seed — and the release's spec goes into the audit log.
        """
        config = self.synthetic_fallback
        assert config is not None
        holder = self._fallback_holder
        with holder.lock:
            if holder.release is None:
                self.accountant.charge(config.account, 1, config.epsilon)
                try:
                    release = synthesize_binary(
                        self._data,
                        config.epsilon,
                        config.rounds,
                        num_queries=config.num_queries,
                        density=config.density,
                        rng=derive_rng(self.seed, "service", config.account),
                    )
                    if self.compliance is not None:
                        # Activation requires a pre-registered approval of
                        # these exact release bits (synthesis is seed-
                        # deterministic, so an operator certifies the same
                        # vector out of band).  A refusal rolls the charge
                        # back: zero budget footprint, nothing activated.
                        certificate = self.compliance.require(
                            release,
                            subject="synthetic-fallback",
                            analyst=config.account,
                        )
                        self.audit_log.note_certificate(
                            config.account, certificate
                        )
                except ComplianceDenied as denied:
                    self.accountant.refund(config.account, 1, config.epsilon)
                    self.audit_log.note_denial(
                        config.account, denied.subject, denied.reason, str(denied)
                    )
                    raise
                except BaseException:
                    self.accountant.refund(config.account, 1, config.epsilon)
                    raise
                self.audit_log.note_release(config.account, release.spec)
                holder.release = release
            return holder.release

    def _state(self, analyst: str) -> _AnalystState:
        with self._states_lock:
            state = self._states.get(analyst)
            if state is None:
                answerer = make_answerer(
                    self.mechanism,
                    self._data,
                    rng=derive_rng(self.seed, "service", analyst),
                    **self.mechanism_params,
                )
                spec = getattr(answerer, "spec", None)
                if self.compliance is not None:
                    # The gate runs once, at registration: an approved spec
                    # fingerprint admits the analyst, anything else refuses
                    # before any state, budget, cache, or answer exists.
                    try:
                        certificate = self.compliance.require(
                            spec, subject="mechanism-spec", analyst=analyst
                        )
                    except ComplianceDenied as denied:
                        self.audit_log.note_denial(
                            analyst, denied.subject, denied.reason, str(denied)
                        )
                        raise
                    self.audit_log.note_certificate(analyst, certificate)
                if self._cache_factory is not None:
                    cache = self._cache_factory(analyst)
                else:
                    cache = AnswerCache(max_entries=self.cache_entries)
                state = _AnalystState(
                    answerer=answerer,
                    cache=cache,
                    lock=threading.Lock(),
                    epsilon_per_query=per_query_epsilon(answerer),
                    spec=spec,
                )
                self._states[analyst] = state
                self._pipeline.register_analyst(analyst, cache)
            return state

    def ask(self, analyst: str, query: SubsetQuery) -> float:
        """Answer one query for ``analyst``; the single-query hot path."""
        return self._serve(self._state(analyst), analyst, query)

    def _serve(self, state: _AnalystState, analyst: str, query: SubsetQuery) -> float:
        """:meth:`ask` with the analyst state already in hand (sessions
        resolve it once, so repeated asks never touch the registry lock)."""
        return self._pipeline.serve_single(state, analyst, query)

    def ask_workload(
        self, analyst: str, workload: Workload | Sequence[SubsetQuery]
    ) -> np.ndarray:
        """Answer a packed workload for ``analyst`` in one batched pass.

        Cache hits (and within-workload duplicates) are free; the remaining
        unique queries are charged all-or-nothing — if the accountant
        refuses, *nothing* is answered, cached, or logged — then answered
        with one vectorized mechanism call.
        """
        return self._serve_workload(self._state(analyst), analyst, workload)

    def _serve_workload(
        self,
        state: _AnalystState,
        analyst: str,
        workload: Workload | Sequence[SubsetQuery],
    ) -> np.ndarray:
        """:meth:`ask_workload` with the analyst state already in hand."""
        return self._pipeline.serve_workload(state, analyst, workload)

    @property
    def pipeline(self) -> ServePipeline:
        """The staged serve pipeline this server drives requests through."""
        return self._pipeline

    def close(self) -> None:
        """Drain and release serving resources.

        Flushes and stops background audit workers (so every signalled
        pass has published its verdict) and closes the execution backend.
        Shared process/thread pools persist across servers by design and
        are not torn down here.
        """
        self.audit_dispatch.flush()
        self.audit_dispatch.close()
        self.execution.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        mechanism = self.mechanism if isinstance(self.mechanism, str) else "custom"
        return (
            f"QueryServer(n={self.n}, mechanism={mechanism!r}, "
            f"analysts={len(self.analysts)}, served={len(self.audit_log)})"
        )
